//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`Value`], the [`json!`] macro, [`from_str`], and `Value::to_string`.
//! Self-contained (values are built through the [`IntoValue`] conversion
//! trait rather than serde's data model), strict enough for the result
//! files the experiment runners emit, and round-trip tested.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, which covers every value the
    /// experiment tables emit).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with deterministically ordered (sorted) keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The elements if the value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The map if the value is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field access; `Value::Null` when absent or not an object
    /// (mirrors upstream's `Index` forgiveness).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }
}

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Conversion into [`Value`], the stand-in for serialization through
/// serde's data model. The [`json!`] macro evaluates every interpolated
/// expression through a reference, like upstream.
pub trait IntoValue {
    /// Converts `self` into a JSON value.
    fn into_value(self) -> Value;
}

impl IntoValue for Value {
    fn into_value(self) -> Value {
        self
    }
}

impl IntoValue for String {
    fn into_value(self) -> Value {
        Value::String(self)
    }
}

impl IntoValue for &str {
    fn into_value(self) -> Value {
        Value::String(self.to_string())
    }
}

impl IntoValue for bool {
    fn into_value(self) -> Value {
        Value::Bool(self)
    }
}

macro_rules! impl_into_value_num {
    ($($t:ty),*) => {$(
        impl IntoValue for $t {
            fn into_value(self) -> Value {
                Value::Number(self as f64)
            }
        }
    )*};
}

impl_into_value_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: IntoValue> IntoValue for Vec<T> {
    fn into_value(self) -> Value {
        Value::Array(self.into_iter().map(IntoValue::into_value).collect())
    }
}

impl<T: IntoValue> IntoValue for Option<T> {
    fn into_value(self) -> Value {
        match self {
            Some(v) => v.into_value(),
            None => Value::Null,
        }
    }
}

impl<T: IntoValue + Clone> IntoValue for &T {
    fn into_value(self) -> Value {
        self.clone().into_value()
    }
}

impl<T: IntoValue + Clone> IntoValue for &[T] {
    fn into_value(self) -> Value {
        Value::Array(self.iter().cloned().map(IntoValue::into_value).collect())
    }
}

/// Fresh array buffer for [`json!`] (behind a fn call so expansions don't
/// trip `clippy::vec_init_then_push` at every use site).
#[doc(hidden)]
pub fn __json_array_buf() -> Vec<Value> {
    Vec::new()
}

/// Builds a [`Value`] from JSON-looking syntax, like upstream's macro.
///
/// ```
/// let v = serde_json::json!({"name": "casa", "lanes": 10, "ok": true,
///                            "tags": ["a", "b"], "nested": {"x": 1.5}});
/// assert_eq!(v["lanes"], 10u64);
/// assert_eq!(v["tags"][1], "b");
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut items: Vec<$crate::Value> = $crate::__json_array_buf();
        $crate::json_array_entries!(items ($($tt)*));
        $crate::Value::Array(items)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = ::std::collections::BTreeMap::new();
        $crate::json_object_entries!(map ($($tt)*));
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::IntoValue::into_value(&$other)
    };
}

/// TT-muncher behind [`json!`] object syntax (exported for macro
/// hygiene only; not part of the public API).
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_entries {
    ($map:ident ()) => {};
    ($map:ident ($key:tt : null $(, $($rest:tt)*)?)) => {
        $map.insert(($key).to_string(), $crate::Value::Null);
        $( $crate::json_object_entries!($map ($($rest)*)); )?
    };
    ($map:ident ($key:tt : { $($inner:tt)* } $(, $($rest:tt)*)?)) => {
        $map.insert(($key).to_string(), $crate::json!({ $($inner)* }));
        $( $crate::json_object_entries!($map ($($rest)*)); )?
    };
    ($map:ident ($key:tt : [ $($inner:tt)* ] $(, $($rest:tt)*)?)) => {
        $map.insert(($key).to_string(), $crate::json!([ $($inner)* ]));
        $( $crate::json_object_entries!($map ($($rest)*)); )?
    };
    ($map:ident ($key:tt : $value:expr $(, $($rest:tt)*)?)) => {
        $map.insert(($key).to_string(), $crate::json!($value));
        $( $crate::json_object_entries!($map ($($rest)*)); )?
    };
}

/// TT-muncher behind [`json!`] array syntax (exported for macro hygiene
/// only; not part of the public API).
#[macro_export]
#[doc(hidden)]
macro_rules! json_array_entries {
    ($vec:ident ()) => {};
    ($vec:ident (null $(, $($rest:tt)*)?)) => {
        $vec.push($crate::Value::Null);
        $( $crate::json_array_entries!($vec ($($rest)*)); )?
    };
    ($vec:ident ({ $($inner:tt)* } $(, $($rest:tt)*)?)) => {
        $vec.push($crate::json!({ $($inner)* }));
        $( $crate::json_array_entries!($vec ($($rest)*)); )?
    };
    ($vec:ident ([ $($inner:tt)* ] $(, $($rest:tt)*)?)) => {
        $vec.push($crate::json!([ $($inner)* ]));
        $( $crate::json_array_entries!($vec ($($rest)*)); )?
    };
    ($vec:ident ($value:expr $(, $($rest:tt)*)?)) => {
        $vec.push($crate::json!($value));
        $( $crate::json_array_entries!($vec ($($rest)*)); )?
    };
}

/// Errors from [`from_str`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, Error> {
        Err(Error {
            message: message.to_string(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => {
                if self.eat("null") {
                    Ok(Value::Null)
                } else {
                    self.err("invalid literal")
                }
            }
            Some(b't') => {
                if self.eat("true") {
                    Ok(Value::Bool(true))
                } else {
                    self.err("invalid literal")
                }
            }
            Some(b'f') => {
                if self.eat("false") {
                    Ok(Value::Bool(false))
                } else {
                    self.err("invalid literal")
                }
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    if self.peek() != Some(b'"') {
                        return self.err("expected object key");
                    }
                    let key = self.string()?;
                    self.skip_ws();
                    if self.peek() != Some(b':') {
                        return self.err("expected ':'");
                    }
                    self.pos += 1;
                    map.insert(key, self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => self.err("unexpected character"),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error {
                        message: "invalid UTF-8".into(),
                        offset: self.pos,
                    })?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Number(n)),
            Err(_) => self.err("invalid number"),
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`Error`] with a byte offset on malformed input (including
/// trailing garbage).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

/// Serializes any [`IntoValue`] to its compact JSON text.
pub fn to_string<T: IntoValue>(value: T) -> Result<String, Error> {
    Ok(value.into_value().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_objects() {
        let rows = vec![vec!["a".to_string(), "b,c".to_string()]];
        let title = "fig".to_string();
        let v = json!({"title": title, "rows": rows, "n": 3, "ok": true, "none": null});
        assert_eq!(v["title"], "fig");
        assert_eq!(v["rows"][0][1], "b,c");
        assert_eq!(v["n"], 3u64);
        assert_eq!(v["ok"], true);
        assert_eq!(v["none"], Value::Null);
        // Interpolation borrows: `title` and `rows` must still be usable.
        assert_eq!(title.len(), 3);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn display_round_trips_through_from_str() {
        let v = json!({
            "s": "quote \" backslash \\ newline \n tab \t",
            "nums": [0, -4, 2.5, 1e6],
            "nested": {"deep": [true, false, null]}
        });
        let text = v.to_string();
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nulL").is_err());
        assert!(from_str("{} trailing").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn missing_keys_index_to_null() {
        let v = json!({"a": 1});
        assert_eq!(v["nope"], Value::Null);
        assert_eq!(v["nope"][3], Value::Null);
    }

    #[test]
    fn unicode_and_escapes_parse() {
        let v = from_str(r#"{"k": "café ☕"}"#).unwrap();
        assert_eq!(v["k"], "café ☕");
    }
}
