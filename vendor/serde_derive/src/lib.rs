//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` companions to
//! the vendored `serde` marker traits (which are blanket-implemented, so
//! the derives have nothing to emit). This keeps the workspace's existing
//! `#[derive(Serialize, Deserialize)]` annotations compiling offline.

use proc_macro::TokenStream;

/// Emits nothing: the vendored `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Emits nothing: the vendored `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
