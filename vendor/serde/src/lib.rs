//! Offline stand-in for `serde`: the workspace only ever writes
//! `#[derive(Serialize, Deserialize)]` on plain data structs and never
//! drives those impls through a serializer (JSON output goes through the
//! self-contained vendored `serde_json` value type). The traits are
//! therefore markers, blanket-implemented for every type, and the derive
//! macros expand to nothing.
//!
//! If a future PR needs real serialization, replace this crate with the
//! genuine `serde` once the build environment has registry access.

#![forbid(unsafe_code)]

/// Marker for serializable types (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker for owned-deserializable types (blanket-implemented).
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
