//! Offline stand-in for the `memmap2` crate: read-only file mappings.
//!
//! On unix the mapping is a real `mmap(PROT_READ, MAP_PRIVATE)` obtained by
//! linking the platform C library's `mmap`/`munmap` symbols directly (the
//! same technique the `casa-serve` binary uses for `signal`), so mapped
//! pages are demand-faulted and shared across processes through the page
//! cache — the property the zero-copy index loader is built on. On other
//! platforms [`Mmap::map`] degrades to reading the file into an anonymous
//! heap buffer: same API and semantics, no page sharing.
//!
//! This crate is the workspace's one home for the `unsafe` that zero-copy
//! loading needs: the FFI mapping calls and the alignment-checked
//! byte-slice reinterpretation helpers in [`cast`]. Everything above it
//! (casa-image, casa-index, casa-core) stays safe Rust.

#![warn(missing_docs)]

use std::fs::File;
use std::io;
use std::ops::Deref;

/// A read-only memory map of an entire file.
///
/// Dereferences to `&[u8]`. Dropping the map unmaps it; the usual pattern
/// is to hold the map in an `Arc` and hand out views that keep the `Arc`
/// alive for as long as any borrowed slice is reachable.
#[derive(Debug)]
pub struct Mmap {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    /// An empty file: no mapping exists (mmap rejects zero lengths).
    Empty,
    #[cfg(unix)]
    Mapped {
        ptr: *mut core::ffi::c_void,
        len: usize,
    },
    #[cfg(not(unix))]
    Heap(Vec<u8>),
}

// The mapping is immutable for its whole lifetime (PROT_READ, and the
// file descriptor is not retained), so sharing it across threads is safe.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    ///
    /// # Errors
    ///
    /// Propagates metadata / mapping / read failures as [`io::Error`].
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(Mmap {
                inner: Inner::Empty,
            });
        }
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map",
            ));
        }
        Mmap::map_len(file, len as usize)
    }

    #[cfg(unix)]
    fn map_len(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            inner: Inner::Mapped { ptr, len },
        })
    }

    #[cfg(not(unix))]
    fn map_len(file: &File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        let mut f = file.try_clone()?;
        f.read_to_end(&mut buf)?;
        Ok(Mmap {
            inner: Inner::Heap(buf),
        })
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Empty => &[],
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u8, *len)
            },
            #[cfg(not(unix))]
            Inner::Heap(buf) => buf,
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        if let Inner::Mapped { ptr, len } = self.inner {
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

/// Alignment-checked zero-copy reinterpretation of byte slices.
///
/// Each helper returns `None` when the slice is misaligned for the target
/// type or its length is not a whole number of elements — the caller
/// (the image loader) turns that into a typed error instead of UB.
pub mod cast {
    /// Views `bytes` as little-endian `u64` words without copying.
    pub fn u64s(bytes: &[u8]) -> Option<&[u64]> {
        view(bytes)
    }

    /// Views `bytes` as little-endian `u32` words without copying.
    pub fn u32s(bytes: &[u8]) -> Option<&[u32]> {
        view(bytes)
    }

    fn view<T: Copy>(bytes: &[u8]) -> Option<&[T]> {
        let size = std::mem::size_of::<T>();
        if !bytes.len().is_multiple_of(size) {
            return None;
        }
        let ptr = bytes.as_ptr();
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        // Length and alignment were just checked; the source slice is
        // borrowed for the returned lifetime, and every bit pattern is a
        // valid u32/u64 (the only instantiations, via the public fns).
        Some(unsafe { std::slice::from_raw_parts(ptr as *const T, bytes.len() / size) })
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn casts_round_trip_and_reject_misalignment() {
            let words: Vec<u64> = vec![0x0102_0304_0506_0708, u64::MAX, 0];
            let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            // The Vec<u8> allocation may not be 8-aligned; go through an
            // aligned buffer to make the positive case deterministic.
            let aligned: Vec<u64> = bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let raw = unsafe { std::slice::from_raw_parts(aligned.as_ptr() as *const u8, 8 * 3) };
            assert_eq!(super::u64s(raw).unwrap(), &words[..]);
            assert_eq!(super::u32s(raw).unwrap().len(), 6);
            // Odd length: not a whole number of elements.
            assert!(super::u64s(&raw[..9]).is_none());
            // Offset by one byte: misaligned.
            assert!(super::u64s(&raw[1..9]).is_none());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_a_file_read_only() {
        let path = std::env::temp_dir().join(format!("casa_mmap_{}.bin", std::process::id()));
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        File::create(&path).unwrap().write_all(&payload).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.len(), payload.len());
        assert_eq!(&map[..], &payload[..]);
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = std::env::temp_dir().join(format!("casa_mmap_empty_{}.bin", std::process::id()));
        File::create(&path).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn page_sized_mapping_is_8_aligned() {
        let path = std::env::temp_dir().join(format!("casa_mmap_al_{}.bin", std::process::id()));
        File::create(&path)
            .unwrap()
            .write_all(&[7u8; 4096])
            .unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        // mmap returns page-aligned addresses, so typed views at aligned
        // offsets always succeed — the loader depends on this.
        assert!(cast::u64s(&map[..]).is_some());
        std::fs::remove_file(&path).ok();
    }
}
