//! Offline stand-in for the subset of the `proptest` API this workspace's
//! property tests use: the [`proptest!`] macro, `prop_assert*`,
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! [`strategy::Just`], range and tuple strategies, `collection::vec`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name), and failing cases are
//! **not shrunk** — the panic message carries the case number instead.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;

    /// A generator of test values (upstream's `Strategy`, minus
    /// shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing `f` and draws
        /// from the result.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::Rng as _;
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::Rng as _;
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng as _;

    /// Yields `Vec`s whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(
            !size.is_empty(),
            "vec strategy needs a non-empty size range"
        );
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Subset of upstream's `Config`: just the case count.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 32 }
        }
    }
}

#[doc(hidden)]
pub use rand as __rand;

/// Everything the property tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Forwarded to `assert!`, with the failing case reported by the harness
/// seed in the panic location (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Forwarded to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Forwarded to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares deterministic property tests (upstream-compatible syntax).
///
/// Each `fn name(pat in strategy, ...) { body }` becomes a `#[test]`
/// (the attribute is written explicitly inside the block, as in the
/// upstream style) looping over `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut seed: u64 = 0xCA5A_5EED;
                for b in stringify!($name).bytes() {
                    seed = seed.wrapping_mul(131).wrapping_add(u64::from(b));
                }
                for case in 0..config.cases {
                    let mut rng =
                        <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                            seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..9)) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
        }

        #[test]
        fn vec_and_maps(xs in prop::collection::vec(0u8..4, 3..7)) {
            prop_assert!((3..7).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 4));
        }

        #[test]
        fn flat_map_chains(pair in (2usize..20).prop_flat_map(|n| (Just(n), prop::collection::vec(0u64..100, 1..2).prop_map(move |v| v.len() + n)))) {
            let (n, m) = pair;
            prop_assert_eq!(m, n + 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy as _;
        use rand::rngs::StdRng;
        use rand::SeedableRng as _;
        let strat = crate::collection::vec(0u32..1000, 5..10);
        let a: Vec<u32> = strat.generate(&mut StdRng::seed_from_u64(3));
        let b: Vec<u32> = strat.generate(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
