//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods `gen_range` / `gen_bool`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation instead. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for the
//! synthetic-genome and property-test workloads here, but its streams are
//! **not** byte-compatible with upstream `StdRng` (ChaCha12). All tests in
//! this repo derive their expectations at runtime, so only determinism per
//! seed matters, which this provides.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] like upstream rand.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching upstream behaviour.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        // 53 random bits -> uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types `gen_range` can sample uniformly. Mirrors upstream's trait shape
/// (one blanket `SampleRange` impl over this) so integer-literal ranges
/// infer the same way they do with the real crate.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform<G: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut G) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $w:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<G: RngCore>(lo: $t, hi: $t, inclusive: bool, rng: &mut G) -> $t {
                let lo_w = lo as $w;
                let hi_w = hi as $w;
                let span = (hi_w - lo_w) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo_w + v as $w) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128,
                  i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128);

impl SampleUniform for f64 {
    fn sample_uniform<G: RngCore>(lo: f64, hi: f64, inclusive: bool, rng: &mut G) -> f64 {
        let _ = inclusive; // measure-zero difference for floats
        assert!(lo < hi, "cannot sample empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Ranges a value can be sampled from (subset of upstream's trait).
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self`.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Named generators (subset: `StdRng`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, the stand-in for upstream's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed, as xoshiro's authors
            // recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let run_a: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let run_c: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(run_a, run_c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u8..=13);
            assert!((10..=13).contains(&v));
            let w = rng.gen_range(5usize..8);
            assert!((5..8).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
