//! Offline stand-in for the subset of the `criterion` 0.5 API the bench
//! crate uses: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `Throughput`, `BenchmarkId`, the
//! `criterion_group!` / `criterion_main!` macros, and `black_box`.
//!
//! It is a real (if simple) harness: each benchmark is warmed up, then
//! timed over `sample_size` samples, and the median / min / max are
//! printed. Every finished group appends machine-readable records to
//! `target/criterion-offline/<group>.json` so experiment drivers can
//! consume the numbers.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::hint;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like upstream.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level bench context.
#[derive(Debug)]
pub struct Criterion {
    /// `cargo bench -- --test` (upstream-compatible): run every benchmark
    /// body exactly once to prove it still works, skip the timed samples,
    /// and leave any previously recorded JSON untouched.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
            records: Vec::new(),
            finished: false,
            test_mode,
        }
    }

    /// Registers a stand-alone benchmark (runs in an anonymous group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        {
            let mut group = self.benchmark_group("ungrouped");
            group.bench_function(id.to_string(), f);
            group.finish();
        }
        self
    }
}

/// Throughput annotation (recorded, used for elements/sec reporting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterised benchmark id, rendered as `name/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Accepted by `bench_function`: plain strings or [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// The rendered benchmark label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.to_string()
    }
}

/// One measured benchmark, as written to the group JSON.
#[derive(Clone, Debug)]
struct Record {
    label: String,
    median_ns: u128,
    min_ns: u128,
    max_ns: u128,
    samples: usize,
    throughput: Option<Throughput>,
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    records: Vec<Record>,
    finished: bool,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Soft time bound accepted for compatibility (the offline harness
    /// sizes runs by `sample_size` alone).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times `f`'s `Bencher::iter` closure and records the result.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = id.into_label();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        self.record(label, bencher);
        self
    }

    /// Like `bench_function`, passing `input` through to the closure.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let label = id.into_label();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut bencher, input);
        self.record(label, bencher);
        self
    }

    fn record(&mut self, label: String, bencher: Bencher) {
        if self.test_mode {
            eprintln!("Testing {}/{label}: ok", self.name);
            return;
        }
        let mut samples = bencher.samples;
        if samples.is_empty() {
            eprintln!(
                "{}/{label}: no measurement (Bencher::iter never called)",
                self.name
            );
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let record = Record {
            label: label.clone(),
            median_ns: median,
            min_ns: samples[0],
            max_ns: *samples.last().expect("non-empty"),
            samples: samples.len(),
            throughput: self.throughput,
        };
        let per_elem = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if n > 0 => {
                format!(" ({:.1} ns/elem)", median as f64 / n as f64)
            }
            _ => String::new(),
        };
        eprintln!(
            "bench {}/{label}: median {} [min {}, max {}] over {} samples{per_elem}",
            self.name,
            fmt_ns(record.median_ns),
            fmt_ns(record.min_ns),
            fmt_ns(record.max_ns),
            record.samples,
        );
        self.records.push(record);
    }

    /// Writes the group's records to `target/criterion-offline/` and ends
    /// the group.
    pub fn finish(&mut self) {
        self.finished = true;
        if self.test_mode {
            return; // never clobber recorded numbers from a smoke run
        }
        let dir = PathBuf::from("target").join("criterion-offline");
        if fs::create_dir_all(&dir).is_err() {
            return;
        }
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let tp = match r.throughput {
                Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
                Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
                None => String::new(),
            };
            out.push_str(&format!(
                "  {{\"label\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}{tp}}}",
                r.label.replace('"', "'"),
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
            ));
        }
        out.push_str("\n]\n");
        let _ = fs::write(dir.join(format!("{}.json", self.name)), out);
    }
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.finish();
        }
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<u128>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine` once per sample after one warm-up call. In
    /// `--test` mode the routine runs exactly once, untimed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        black_box(routine()); // warm-up, also primes caches/allocations
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos().max(1));
        }
    }
}

/// Declares a bench group function, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, like upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_records_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..k).product::<u64>())
        });
        assert_eq!(group.records.len(), 2);
        assert_eq!(group.records[1].label, "scaled/4");
        assert!(group.records.iter().all(|r| r.median_ns >= 1));
        assert_eq!(group.records[0].samples, 3);
        group.finished = true; // skip writing into target/ from unit tests
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 19).to_string(), "f/19");
    }
}
