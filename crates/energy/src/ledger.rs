//! Event-based energy accounting.
//!
//! Simulators record *what happened* (array activations, DRAM bytes,
//! controller cycles); the ledger turns events into joules using the
//! Table 3 circuit models, exactly like the paper's methodology ("we have
//! evaluated the power by measuring the number of per cycle activated SRAM
//! and CAM arrays, and the number of DRAM accesses in our simulator").

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::circuits::MacroSpec;

/// One component's accumulated activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ComponentActivity {
    /// Number of accesses (array activations) recorded.
    pub accesses: u64,
    /// Total dynamic energy in picojoules.
    pub energy_pj: f64,
    /// Leakage power of the component's instantiated macros, in watts
    /// (set once via [`EnergyLedger::set_leakage`]).
    pub leakage_w: f64,
}

/// Accumulates per-component access counts and dynamic energy.
///
/// Components are keyed by a static name (e.g. `"tag_array"`). Mergeable,
/// so per-partition or per-thread ledgers can be combined.
///
/// ```
/// use casa_energy::{EnergyLedger, circuits::SRAM_256X24};
///
/// let mut ledger = EnergyLedger::new();
/// ledger.record("mini_index", &SRAM_256X24, 3);
/// assert_eq!(ledger.activity("mini_index").accesses, 3);
/// assert!((ledger.total_dynamic_pj() - 3.0 * 2.33).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    components: BTreeMap<String, ComponentActivity>,
}

impl EnergyLedger {
    /// Creates an empty ledger.
    pub fn new() -> EnergyLedger {
        EnergyLedger::default()
    }

    /// Records `count` activations of arrays built from `spec` under the
    /// given component name.
    pub fn record(&mut self, component: &str, spec: &MacroSpec, count: u64) {
        self.record_energy(component, count, count as f64 * spec.energy_pj);
    }

    /// Records raw activity with explicit energy (for controllers and other
    /// non-Table-3 components).
    pub fn record_energy(&mut self, component: &str, count: u64, energy_pj: f64) {
        let entry = self.components.entry(component.to_string()).or_default();
        entry.accesses += count;
        entry.energy_pj += energy_pj;
    }

    /// Sets (overwrites) a component's leakage power in watts. Typically
    /// `macros × MacroSpec::leakage_watts()`.
    pub fn set_leakage(&mut self, component: &str, watts: f64) {
        self.components
            .entry(component.to_string())
            .or_default()
            .leakage_w = watts;
    }

    /// Activity recorded for `component` (zeros if never recorded).
    pub fn activity(&self, component: &str) -> ComponentActivity {
        self.components.get(component).copied().unwrap_or_default()
    }

    /// Iterates over `(component, activity)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ComponentActivity)> {
        self.components.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total dynamic energy over all components, picojoules.
    pub fn total_dynamic_pj(&self) -> f64 {
        self.components.values().map(|c| c.energy_pj).sum()
    }

    /// Total dynamic energy over all components, joules.
    pub fn total_dynamic_j(&self) -> f64 {
        self.total_dynamic_pj() * 1e-12
    }

    /// Total leakage power over all components, watts.
    pub fn total_leakage_w(&self) -> f64 {
        self.components.values().map(|c| c.leakage_w).sum()
    }

    /// Total energy (dynamic + leakage) over an interval of `seconds`,
    /// joules.
    pub fn total_energy_j(&self, seconds: f64) -> f64 {
        self.total_dynamic_j() + self.total_leakage_w() * seconds
    }

    /// Merges another ledger into this one (adds activity, keeps the max
    /// leakage per component — leakage is a property of the instantiated
    /// hardware, not of the workload).
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (name, act) in &other.components {
            let entry = self.components.entry(name.clone()).or_default();
            entry.accesses += act.accesses;
            entry.energy_pj += act.energy_pj;
            entry.leakage_w = entry.leakage_w.max(act.leakage_w);
        }
    }

    /// Clears all recorded activity (keeps nothing).
    pub fn clear(&mut self) {
        self.components.clear();
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>14} {:>16} {:>12}",
            "component", "accesses", "dynamic (pJ)", "leak (W)"
        )?;
        for (name, act) in self.iter() {
            writeln!(
                f,
                "{:<24} {:>14} {:>16.1} {:>12.4}",
                name, act.accesses, act.energy_pj, act.leakage_w
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::{BCAM_256X72, SRAM_256X60};

    #[test]
    fn record_accumulates() {
        let mut l = EnergyLedger::new();
        l.record("tag", &BCAM_256X72, 2);
        l.record("tag", &BCAM_256X72, 3);
        let act = l.activity("tag");
        assert_eq!(act.accesses, 5);
        assert!((act.energy_pj - 5.0 * 17.6).abs() < 1e-9);
    }

    #[test]
    fn totals_span_components() {
        let mut l = EnergyLedger::new();
        l.record("a", &SRAM_256X60, 1);
        l.record("b", &BCAM_256X72, 1);
        assert!((l.total_dynamic_pj() - (4.89 + 17.6)).abs() < 1e-9);
        l.set_leakage("a", 0.5);
        l.set_leakage("b", 0.25);
        assert!((l.total_leakage_w() - 0.75).abs() < 1e-12);
        let e = l.total_energy_j(2.0);
        assert!((e - (22.49e-12 + 1.5)).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_activity_keeps_hardware_leakage() {
        let mut a = EnergyLedger::new();
        a.record("x", &SRAM_256X60, 10);
        a.set_leakage("x", 0.1);
        let mut b = EnergyLedger::new();
        b.record("x", &SRAM_256X60, 5);
        b.set_leakage("x", 0.1);
        b.record("y", &BCAM_256X72, 1);
        a.merge(&b);
        assert_eq!(a.activity("x").accesses, 15);
        assert!((a.activity("x").leakage_w - 0.1).abs() < 1e-12);
        assert_eq!(a.activity("y").accesses, 1);
    }

    #[test]
    fn unknown_component_is_zero() {
        let l = EnergyLedger::new();
        assert_eq!(l.activity("nope"), ComponentActivity::default());
    }

    #[test]
    fn display_lists_components() {
        let mut l = EnergyLedger::new();
        l.record("tag_array", &BCAM_256X72, 7);
        let text = l.to_string();
        assert!(text.contains("tag_array"));
        assert!(text.contains('7'));
    }
}
