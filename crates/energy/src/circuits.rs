//! 28 nm circuit models — the paper's Table 3.
//!
//! The CASA paper evaluates its design by feeding a cycle-level simulator
//! with per-macro delay/area/energy/leakage numbers obtained from the TSMC
//! 28 nm memory compiler (SRAM) and a silicon-verified CAM design (Xue et
//! al., JSSC 2019). We embed those published constants verbatim and derive
//! the few macro shapes Table 3 does not list (e.g. the 256×80 computing
//! CAM of Fig. 11) by linear bit scaling.

use serde::{Deserialize, Serialize};

/// Memory macro technology family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MacroKind {
    /// 6-transistor SRAM bit cells.
    Sram6T,
    /// 10-transistor NOR-type binary CAM bit cells (paper Fig. 4b).
    Bcam10T,
}

/// One memory macro's circuit model (a row of the paper's Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MacroSpec {
    /// Human-readable name, e.g. `"6T SRAM 256x24"`.
    pub name: &'static str,
    /// Technology family.
    pub kind: MacroKind,
    /// Number of rows (words).
    pub rows: u32,
    /// Word width in bits.
    pub bits: u32,
    /// Access (or search) delay in picoseconds.
    pub delay_ps: f64,
    /// Macro area in µm².
    pub area_um2: f64,
    /// Dynamic energy per access (full-array search for CAM) in pJ.
    pub energy_pj: f64,
    /// Leakage current in µA.
    pub leakage_ua: f64,
}

/// Nominal supply voltage used to convert leakage current to power.
pub const VDD_VOLTS: f64 = 0.9;

/// Controller clock frequency: the paper's synthesized controllers close
/// timing at 2 GHz.
pub const CLOCK_HZ: f64 = 2.0e9;

/// Table 3, row 1: 6T SRAM, 256 × 24 bits (mini index table banks).
pub const SRAM_256X24: MacroSpec = MacroSpec {
    name: "6T SRAM 256x24",
    kind: MacroKind::Sram6T,
    rows: 256,
    bits: 24,
    delay_ps: 424.0,
    area_um2: 2535.0,
    energy_pj: 2.33,
    leakage_ua: 6.29,
};

/// Table 3, row 2: 6T SRAM, 256 × 60 bits (data array banks).
pub const SRAM_256X60: MacroSpec = MacroSpec {
    name: "6T SRAM 256x60",
    kind: MacroKind::Sram6T,
    rows: 256,
    bits: 60,
    delay_ps: 444.0,
    area_um2: 5563.0,
    energy_pj: 4.89,
    leakage_ua: 14.18,
};

/// Table 3, row 3: 6T SRAM, 256 × 256 bits (GenAx seed & position tables).
pub const SRAM_256X256: MacroSpec = MacroSpec {
    name: "6T SRAM 256x256",
    kind: MacroKind::Sram6T,
    rows: 256,
    bits: 256,
    delay_ps: 548.0,
    area_um2: 22046.0,
    energy_pj: 20.92,
    leakage_ua: 38.198,
};

/// Table 3, row 4: 10T BCAM, 256 × 72 bits (pre-seeding tag array).
pub const BCAM_256X72: MacroSpec = MacroSpec {
    name: "10T BCAM 256x72",
    kind: MacroKind::Bcam10T,
    rows: 256,
    bits: 72,
    delay_ps: 495.0,
    area_um2: 18056.0,
    energy_pj: 17.60,
    leakage_ua: 18.69,
};

/// The 256 × 80 bit computing CAM of Fig. 11 (40 bases per entry), derived
/// from [`BCAM_256X72`] by bit scaling.
pub const BCAM_256X80: MacroSpec = BCAM_256X72.scaled_bits("10T BCAM 256x80", 80);

impl MacroSpec {
    /// Derives a macro with a different word width by scaling area, energy
    /// and leakage linearly in bits (delay held — wordline/sense timing
    /// dominates).
    pub const fn scaled_bits(self, name: &'static str, bits: u32) -> MacroSpec {
        let ratio = bits as f64 / self.bits as f64;
        MacroSpec {
            name,
            bits,
            area_um2: self.area_um2 * ratio,
            energy_pj: self.energy_pj * ratio,
            leakage_ua: self.leakage_ua * ratio,
            ..self
        }
    }

    /// Storage capacity of one macro in bits.
    pub fn capacity_bits(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.bits)
    }

    /// Storage capacity of one macro in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bits() / 8
    }

    /// Leakage power of one macro in watts.
    pub fn leakage_watts(&self) -> f64 {
        self.leakage_ua * 1e-6 * VDD_VOLTS
    }

    /// Dynamic energy per access in joules.
    pub fn energy_joules(&self) -> f64 {
        self.energy_pj * 1e-12
    }

    /// Number of macros needed to hold `bytes` of storage.
    pub fn macros_for_bytes(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.capacity_bytes())
    }

    /// Total area in mm² of enough macros to hold `bytes`.
    pub fn area_mm2_for_bytes(&self, bytes: u64) -> f64 {
        self.macros_for_bytes(bytes) as f64 * self.area_um2 / 1e6
    }
}

/// All Table 3 rows, for printing the table experiment.
pub const TABLE3_ROWS: [MacroSpec; 4] = [SRAM_256X24, SRAM_256X60, SRAM_256X256, BCAM_256X72];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_constants_match_paper() {
        assert_eq!(SRAM_256X24.delay_ps, 424.0);
        assert_eq!(SRAM_256X60.energy_pj, 4.89);
        assert_eq!(SRAM_256X256.area_um2, 22046.0);
        assert_eq!(BCAM_256X72.leakage_ua, 18.69);
    }

    #[test]
    fn capacities() {
        assert_eq!(SRAM_256X24.capacity_bits(), 256 * 24);
        assert_eq!(BCAM_256X72.capacity_bytes(), 2304);
    }

    #[test]
    fn scaling_is_linear_in_bits() {
        let b80 = BCAM_256X80;
        assert_eq!(b80.bits, 80);
        assert!((b80.energy_pj - 17.60 * 80.0 / 72.0).abs() < 1e-9);
        assert!((b80.area_um2 - 18056.0 * 80.0 / 72.0).abs() < 1e-6);
        assert_eq!(b80.delay_ps, BCAM_256X72.delay_ps);
    }

    #[test]
    fn filter_table_area_reproduces_table4() {
        // Paper Table 4: the 45 MB pre-seeding filter table occupies
        // 188.411 mm². Rebuilding it from Table 3 macros:
        //   mini index: 6 MB of 256x24 SRAM
        //   tag array:  9 MB of 256x72 BCAM
        //   data array: 30 MB of 256x60 SRAM
        let mb = 1u64 << 20;
        let area = SRAM_256X24.area_mm2_for_bytes(6 * mb)
            + BCAM_256X72.area_mm2_for_bytes(9 * mb)
            + SRAM_256X60.area_mm2_for_bytes(30 * mb);
        assert!(
            (area - 188.411).abs() / 188.411 < 0.03,
            "modelled filter area {area:.3} mm² should land within 3% of Table 4"
        );
    }

    #[test]
    fn computing_cam_area_reproduces_table4() {
        // Paper Table 4: ten 1 MB computing CAMs = 90.329 mm².
        let area = BCAM_256X80.area_mm2_for_bytes(10 << 20);
        assert!(
            (area - 90.329).abs() / 90.329 < 0.10,
            "modelled computing-CAM area {area:.3} mm² should land within 10% of Table 4"
        );
    }

    #[test]
    fn macros_for_bytes_rounds_up() {
        assert_eq!(SRAM_256X24.macros_for_bytes(1), 1);
        assert_eq!(SRAM_256X24.macros_for_bytes(768), 1);
        assert_eq!(SRAM_256X24.macros_for_bytes(769), 2);
    }

    #[test]
    fn leakage_power_is_microscale() {
        let w = BCAM_256X72.leakage_watts();
        assert!(w > 1e-6 && w < 1e-3);
    }
}
