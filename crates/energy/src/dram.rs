//! DDR4 + controller-PHY power and bandwidth model.
//!
//! The paper evaluates DRAM with DRAMpower (Micron DDR4 sheets) and
//! Ramulator; all it consumes downstream are aggregate figures: channel
//! bandwidth, transfer energy and background power. We model exactly those
//! aggregates:
//!
//! * active energy per bit moved (calibrated so CASA's 25 GB/s read stream
//!   costs ≈ 3.6 W, the paper's Table 4 "DDR4 (total)" row);
//! * background power proportional to installed capacity (so ASIC-ERT's
//!   dedicated 64 GB index DRAM costs > 15 W at its 68 GB/s, §2.2);
//! * a PHY term (Table 4 lists 1.798 W for CASA's two channels).

use serde::{Deserialize, Serialize};

/// DDR4 transfer energy, pJ per bit (command + IO + core access).
pub const DDR4_PJ_PER_BIT: f64 = 18.0;

/// Background (refresh + standby) power per installed gigabyte, watts.
pub const DDR4_BACKGROUND_W_PER_GB: f64 = 0.08;

/// Controller-PHY power per channel, watts (scaled from the managed-DRAM
/// PHY the paper cites).
pub const PHY_W_PER_CHANNEL: f64 = 0.899;

/// Peak bandwidth of one DDR4-2400 channel, bytes/second (Fig. 11 shows
/// 19.2 GB/s per channel).
pub const DDR4_CHANNEL_BW: f64 = 19.2e9;

/// A DRAM subsystem attached to an accelerator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DramSystem {
    /// Number of DDR4 channels.
    pub channels: u32,
    /// Installed capacity in gigabytes.
    pub capacity_gb: f64,
    /// Fraction of peak bandwidth that is realistically achievable
    /// (ASIC-ERT sustains only ~50 % on its random tree-root fetches;
    /// CASA's sequential read streaming sustains ~85 %).
    pub utilization: f64,
    /// Energy multiplier for access-pattern overhead: 1.0 for sequential
    /// streaming, > 1 for random small fetches where row activations are
    /// amortized over few useful bits.
    pub random_access_overhead: f64,
}

impl DramSystem {
    /// CASA's DRAM: two channels for streaming reads, no index storage
    /// (paper Fig. 11: "two DDR4 channels, delivering an average bandwidth
    /// of 25 GB/s").
    pub fn casa() -> DramSystem {
        DramSystem {
            channels: 2,
            capacity_gb: 2.0,
            utilization: 0.85,
            random_access_overhead: 1.0,
        }
    }

    /// ASIC-ERT's DRAM: eight channels backing a 64 GB dedicated index
    /// store (paper §2.2: 62.1 GB index; "only about 50 % DDR4 bandwidth
    /// on average is utilized", which lands the usable bandwidth at the
    /// 68 GB/s the paper reports ERT consuming).
    pub fn ert() -> DramSystem {
        DramSystem {
            channels: 8,
            capacity_gb: 64.0,
            utilization: 0.44,
            random_access_overhead: 1.7,
        }
    }

    /// GenAx's DRAM: like CASA it only streams reads (its index is
    /// on-chip SRAM).
    pub fn genax() -> DramSystem {
        DramSystem {
            channels: 2,
            capacity_gb: 2.0,
            utilization: 0.85,
            random_access_overhead: 1.0,
        }
    }

    /// Peak aggregate bandwidth in bytes/second.
    pub fn peak_bandwidth(&self) -> f64 {
        f64::from(self.channels) * DDR4_CHANNEL_BW
    }

    /// Achievable aggregate bandwidth in bytes/second.
    pub fn usable_bandwidth(&self) -> f64 {
        self.peak_bandwidth() * self.utilization
    }

    /// Time in seconds to move `bytes` at the usable bandwidth.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.usable_bandwidth()
    }

    /// Energy in joules to move `bytes` (includes the access-pattern
    /// overhead multiplier).
    pub fn transfer_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * DDR4_PJ_PER_BIT * 1e-12 * self.random_access_overhead
    }

    /// Background power of the installed devices, watts.
    pub fn background_power_w(&self) -> f64 {
        self.capacity_gb * DDR4_BACKGROUND_W_PER_GB
    }

    /// PHY power, watts.
    pub fn phy_power_w(&self) -> f64 {
        f64::from(self.channels) * PHY_W_PER_CHANNEL
    }

    /// Average DRAM power (without PHY) while moving `bytes` over
    /// `seconds`, watts.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not positive.
    pub fn average_power_w(&self, bytes: u64, seconds: f64) -> f64 {
        assert!(seconds > 0.0, "elapsed time must be positive");
        self.background_power_w() + self.transfer_energy_j(bytes) / seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn casa_dram_power_matches_table4() {
        // Paper Table 4: DDR4 (total) 3.604 W while streaming reads at
        // 25 GB/s.
        let dram = DramSystem::casa();
        let seconds = 1.0;
        let bytes = (25.0e9) as u64;
        let w = dram.average_power_w(bytes, seconds);
        assert!(
            (w - 3.604).abs() < 0.35,
            "CASA DRAM power {w:.3} W should be near Table 4's 3.604 W"
        );
        assert!(
            (dram.phy_power_w() - 1.798).abs() < 0.01,
            "PHY near Table 4"
        );
    }

    #[test]
    fn ert_dram_power_exceeds_15w() {
        // Paper §2.2: "the power consumption of DDR4 is higher than 15 W"
        // for ERT's 64 GB index at its sustained bandwidth.
        let dram = DramSystem::ert();
        let bw = dram.usable_bandwidth(); // ~38 GB/s sustained
        let w = dram.average_power_w(bw as u64, 1.0) + dram.phy_power_w();
        assert!(w > 9.0, "ERT DRAM power {w:.1} W must dwarf CASA's");
        // And it must be several times CASA's.
        let casa = DramSystem::casa();
        let casa_w = casa.average_power_w(25_000_000_000, 1.0) + casa.phy_power_w();
        assert!(w > 2.0 * casa_w);
    }

    #[test]
    fn bandwidth_arithmetic() {
        let d = DramSystem::casa();
        assert!((d.peak_bandwidth() - 38.4e9).abs() < 1.0);
        assert!(d.usable_bandwidth() < d.peak_bandwidth());
        let t = d.transfer_seconds(d.usable_bandwidth() as u64);
        assert!((t - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transfer_energy_scales_linearly() {
        let d = DramSystem::casa();
        let e1 = d.transfer_energy_j(1_000_000);
        let e2 = d.transfer_energy_j(2_000_000);
        assert!((e2 - 2.0 * e1).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_time_rejected() {
        DramSystem::casa().average_power_w(100, 0.0);
    }
}
