//! Power, area and efficiency report aggregation (the paper's Table 4 and
//! Fig. 13 quantities).

use serde::{Deserialize, Serialize};

use crate::dram::DramSystem;
use crate::ledger::EnergyLedger;

/// A finished run's power/energy summary for one accelerator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Accelerator name, e.g. `"CASA"`.
    pub name: String,
    /// Wall-clock seconds of the modelled run.
    pub seconds: f64,
    /// Reads processed.
    pub reads: u64,
    /// On-chip dynamic power, watts.
    pub onchip_dynamic_w: f64,
    /// On-chip leakage power, watts.
    pub onchip_leakage_w: f64,
    /// DRAM power (background + transfer), watts.
    pub dram_w: f64,
    /// Controller PHY power, watts.
    pub phy_w: f64,
    /// Per-component dynamic breakdown `(name, watts)`.
    pub components: Vec<(String, f64)>,
}

impl PowerReport {
    /// Builds a report from a ledger, the DRAM system, the bytes it moved,
    /// and the run duration.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not positive.
    pub fn from_run(
        name: &str,
        ledger: &EnergyLedger,
        dram: &DramSystem,
        dram_bytes: u64,
        seconds: f64,
        reads: u64,
    ) -> PowerReport {
        assert!(seconds > 0.0, "run duration must be positive");
        let components = ledger
            .iter()
            .map(|(n, act)| (n.to_string(), act.energy_pj * 1e-12 / seconds))
            .collect();
        PowerReport {
            name: name.to_string(),
            seconds,
            reads,
            onchip_dynamic_w: ledger.total_dynamic_j() / seconds,
            onchip_leakage_w: ledger.total_leakage_w(),
            dram_w: dram.average_power_w(dram_bytes, seconds),
            phy_w: dram.phy_power_w(),
            components,
        }
    }

    /// Total on-chip power, watts.
    pub fn onchip_w(&self) -> f64 {
        self.onchip_dynamic_w + self.onchip_leakage_w
    }

    /// Total power including DRAM and PHY, watts (the paper's Fig. 13a
    /// stacks on-chip vs "DRAM and PHY").
    pub fn total_w(&self) -> f64 {
        self.onchip_w() + self.dram_w + self.phy_w
    }

    /// Total energy of the run, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.total_w() * self.seconds
    }

    /// Energy efficiency in reads per millijoule (Fig. 13b's metric).
    pub fn reads_per_mj(&self) -> f64 {
        self.reads as f64 / (self.total_energy_j() * 1e3)
    }

    /// Throughput in reads per second.
    pub fn reads_per_second(&self) -> f64 {
        self.reads as f64 / self.seconds
    }
}

/// One row of an area breakdown (the paper's Table 4).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AreaRow {
    /// Component name.
    pub component: String,
    /// Area in mm² (None for off-chip rows like DDR4).
    pub area_mm2: Option<f64>,
    /// Average power in watts.
    pub power_w: f64,
}

/// A Table-4-style breakdown: components with area and power.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Rows in display order.
    pub rows: Vec<AreaRow>,
}

impl AreaReport {
    /// Adds a row.
    pub fn push(&mut self, component: &str, area_mm2: Option<f64>, power_w: f64) {
        self.rows.push(AreaRow {
            component: component.to_string(),
            area_mm2,
            power_w,
        });
    }

    /// Total on-chip area in mm² (rows with an area only).
    pub fn total_area_mm2(&self) -> f64 {
        self.rows.iter().filter_map(|r| r.area_mm2).sum()
    }

    /// Total power in watts.
    pub fn total_power_w(&self) -> f64 {
        self.rows.iter().map(|r| r.power_w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::BCAM_256X72;

    fn ledger() -> EnergyLedger {
        let mut l = EnergyLedger::new();
        l.record("cam", &BCAM_256X72, 1_000_000);
        l.set_leakage("cam", 0.2);
        l
    }

    #[test]
    fn power_report_arithmetic() {
        let l = ledger();
        let dram = DramSystem::casa();
        let rep = PowerReport::from_run("CASA", &l, &dram, 1_000_000_000, 0.5, 2_000_000);
        // dynamic: 1e6 * 17.6 pJ = 17.6 µJ over 0.5 s = 35.2 µW
        assert!((rep.onchip_dynamic_w - 35.2e-6).abs() < 1e-9);
        assert!((rep.onchip_leakage_w - 0.2).abs() < 1e-12);
        assert!(rep.dram_w > 0.0 && rep.phy_w > 0.0);
        assert!(rep.total_w() > rep.onchip_w());
        assert!((rep.reads_per_second() - 4_000_000.0).abs() < 1e-6);
        assert!(rep.reads_per_mj() > 0.0);
        assert_eq!(rep.components.len(), 1);
    }

    #[test]
    fn efficiency_inverts_with_power() {
        let l = ledger();
        let dram = DramSystem::casa();
        let fast = PowerReport::from_run("A", &l, &dram, 0, 0.5, 1_000_000);
        let slow = PowerReport::from_run("B", &l, &dram, 0, 5.0, 1_000_000);
        assert!(fast.reads_per_mj() > slow.reads_per_mj());
    }

    #[test]
    fn area_report_totals() {
        let mut rep = AreaReport::default();
        rep.push("filter", Some(188.411), 7.166);
        rep.push("cams", Some(90.329), 6.949);
        rep.push("ddr4", None, 3.604);
        assert!((rep.total_area_mm2() - 278.74).abs() < 0.01);
        assert!((rep.total_power_w() - 17.719).abs() < 0.001);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_duration() {
        PowerReport::from_run("X", &ledger(), &DramSystem::casa(), 0, 0.0, 1);
    }
}
