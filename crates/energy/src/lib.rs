//! Energy, power and area models for the CASA reproduction.
//!
//! The paper's methodology (§6) feeds a cycle-level simulator with 28 nm
//! circuit constants (Table 3), DRAMpower-derived DDR4 figures, and
//! synthesized controller numbers. This crate holds those models:
//!
//! * [`circuits`] — Table 3 memory-macro specs and derived shapes;
//! * [`dram`] — DDR4 + PHY bandwidth/power model;
//! * [`ledger`] — event-based energy accounting shared by all simulators;
//! * [`report`] — Table 4 / Fig. 13 style power, area and efficiency
//!   aggregation.
//!
//! # Example
//!
//! ```
//! use casa_energy::{EnergyLedger, PowerReport, circuits::BCAM_256X72, dram::DramSystem};
//!
//! let mut ledger = EnergyLedger::new();
//! ledger.record("computing_cam", &BCAM_256X72, 1_000);
//! let report = PowerReport::from_run("CASA", &ledger, &DramSystem::casa(), 10_000, 0.001, 500);
//! assert!(report.total_w() > 0.0);
//! assert!(report.reads_per_mj() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuits;
pub mod dram;
pub mod ledger;
pub mod report;

pub use circuits::{MacroKind, MacroSpec, CLOCK_HZ, VDD_VOLTS};
pub use dram::DramSystem;
pub use ledger::{ComponentActivity, EnergyLedger};
pub use report::{AreaReport, AreaRow, PowerReport};
