//! Bit-identity and accounting contracts of the profiling layer: the
//! profiled + batched-filter session path must produce byte-identical
//! SMEMs and SAM records to the unprofiled per-pivot seed path across
//! every backend, kernel, and worker count — and the per-stage spans it
//! records must be disjoint (their sum bounded by the run's wall time).

use std::time::Instant;

use casa_core::{BackendKind, CasaConfig, FaultPlan, KernelBackend, SeedingSession, Stage};
use casa_genome::sam::{Cigar, CigarOp, SamFormatter, SamRecord};
use casa_genome::{Base, PackedSeq};
use casa_index::Smem;
use proptest::prelude::*;

fn packed(codes: &[u8]) -> PackedSeq {
    codes.iter().map(|&c| Base::from_code(c & 3)).collect()
}

/// Builds a read batch mixing reference substrings (guaranteed hits),
/// point-mutated substrings, and fully random sequences.
fn reads_from(reference: &PackedSeq, specs: &[(usize, usize, u8, u8)]) -> Vec<PackedSeq> {
    specs
        .iter()
        .map(|&(offset, len, kind, mutation)| {
            let len = len.clamp(8, 48).min(reference.len());
            let start = offset % (reference.len() - len + 1);
            let mut read = reference.subseq(start, len);
            match kind % 3 {
                0 => {}
                1 => {
                    // Point mutation somewhere in the read.
                    let at = usize::from(mutation) % len;
                    let old = read.base(at);
                    let new = Base::from_code((old.code() + 1) & 3);
                    read = (0..len)
                        .map(|i| if i == at { new } else { read.base(i) })
                        .collect();
                }
                _ => {
                    // Pseudo-random sequence decorrelated from the
                    // reference.
                    read = (0..len)
                        .map(|i| Base::from_code(((i as u8).wrapping_mul(37) ^ mutation) & 3))
                        .collect();
                }
            }
            read
        })
        .collect()
}

/// Renders per-read SMEM lists as SAM records (best SMEM as soft-clipped
/// match, no SMEM as unmapped) — the emission shape of the CLI.
fn sam_bytes(reads: &[PackedSeq], smems: &[Vec<Smem>]) -> Vec<u8> {
    let records: Vec<SamRecord> = reads
        .iter()
        .zip(smems)
        .enumerate()
        .map(|(i, (read, list))| {
            let qname = format!("r{i}");
            match list
                .iter()
                .max_by_key(|s| (s.len(), std::cmp::Reverse(s.read_start)))
            {
                Some(smem) => {
                    let mut ops = Vec::new();
                    if smem.read_start > 0 {
                        ops.push(CigarOp::SoftClip(smem.read_start as u32));
                    }
                    ops.push(CigarOp::AlnMatch(smem.len() as u32));
                    if smem.read_end < read.len() {
                        ops.push(CigarOp::SoftClip((read.len() - smem.read_end) as u32));
                    }
                    SamRecord {
                        qname,
                        flag: 0,
                        rname: "ref".to_string(),
                        pos: u64::from(smem.hits[0]) + 1,
                        mapq: 60,
                        cigar: Cigar(ops),
                        seq: read.clone(),
                    }
                }
                None => SamRecord::unmapped(&qname, read.clone()),
            }
        })
        .collect();
    let mut out = Vec::new();
    SamFormatter::new()
        .write_all(&mut out, &records)
        .expect("Vec sink cannot fail");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The profiled + batched path is byte-identical to the unprofiled
    /// per-pivot seed path — SMEMs and SAM — for every backend, every
    /// supported kernel, and worker counts 1, 2, and 8.
    #[test]
    fn profiled_path_is_bit_identical_across_backends_kernels_workers(
        ref_codes in prop::collection::vec(0u8..4, 200..900),
        specs in prop::collection::vec(
            (0usize..10_000, 8usize..48, 0u8..3, 0u8..=255),
            1..10,
        ),
    ) {
        let reference = packed(&ref_codes);
        let reads = reads_from(&reference, &specs);
        let config = CasaConfig::small((reference.len() / 3).max(64));

        // Reference: the unprofiled seed path (per-pivot filter lookups)
        // on the CAM backend, pinned explicitly so a CI `CASA_BACKEND`
        // pin cannot change what the stats assertion below compares.
        let seed_session = SeedingSession::with_backend(
            &reference,
            config,
            1,
            FaultPlan::default(),
            BackendKind::Cam,
        )
        .expect("small config is valid");
        seed_session.set_batched_filter(false);
        let seed_run = seed_session.seed_reads(&reads);
        let seed_sam = sam_bytes(&reads, &seed_run.smems);

        for backend in BackendKind::ALL {
            for workers in [1usize, 2, 8] {
                let session = SeedingSession::with_backend(
                    &reference,
                    config,
                    workers,
                    FaultPlan::default(),
                    backend,
                )
                .expect("small config is valid");
                session.set_profiling(true);
                let kernels: Vec<Option<KernelBackend>> = if backend == BackendKind::Cam {
                    KernelBackend::supported().map(Some).collect()
                } else {
                    vec![None]
                };
                for kernel in kernels {
                    if let Some(k) = kernel {
                        session.set_kernel_backend(k);
                    }
                    let run = session.seed_reads(&reads);
                    prop_assert_eq!(
                        &run.smems, &seed_run.smems,
                        "{} workers={} kernel={:?}: SMEMs diverged from seed path",
                        backend, workers, kernel
                    );
                    prop_assert_eq!(
                        &sam_bytes(&reads, &run.smems), &seed_sam,
                        "{} workers={} kernel={:?}: SAM bytes diverged",
                        backend, workers, kernel
                    );
                    if backend == BackendKind::Cam {
                        // Same engine model: every stat except the profile
                        // must match the seed path exactly.
                        let mut stats = run.stats;
                        stats.profile = Default::default();
                        prop_assert_eq!(
                            stats, seed_run.stats,
                            "workers={} kernel={:?}: stats diverged",
                            workers, kernel
                        );
                        prop_assert!(
                            !run.stats.profile.is_empty(),
                            "profiling enabled but no spans recorded"
                        );
                    }
                }
            }
        }
    }
}

/// Stage spans are disjoint: on one worker their sum never exceeds the
/// wall time of the `seed_reads` call that recorded them (no
/// double-counted span), and the engine-side stages all fire. With N
/// workers the spans accumulate across concurrent threads, so the bound
/// relaxes to N x wall — checked separately below.
#[test]
fn stage_times_sum_to_at_most_wall_time() {
    let reference: PackedSeq = (0..4096u32)
        .map(|i| Base::from_code((i.wrapping_mul(2654435761) >> 13) as u8 & 3))
        .collect();
    // Half exact reference substrings, half with a point mutation so the
    // pivot loop (not just exact-match preprocessing) runs.
    let reads: Vec<PackedSeq> = (0..32usize)
        .map(|i| {
            let sub = reference.subseq((i * 97) % 3000, 40);
            if i % 2 == 0 {
                return sub;
            }
            let at = 11 + (i % 17);
            (0..sub.len())
                .map(|j| {
                    let b = sub.base(j);
                    if j == at {
                        Base::from_code((b.code() + 1) & 3)
                    } else {
                        b
                    }
                })
                .collect()
        })
        .collect();
    // CAM backend pinned explicitly: the engine-stage assertions below
    // only hold for the CAM engine, whatever CI pinned via CASA_BACKEND.
    let session = SeedingSession::with_backend(
        &reference,
        CasaConfig::small(1024),
        1,
        FaultPlan::default(),
        BackendKind::Cam,
    )
    .expect("small config is valid");
    session.set_profiling(true);
    // Warm-up, then the measured pass.
    session.seed_reads(&reads);
    let start = Instant::now();
    let run = session.seed_reads(&reads);
    let wall = start.elapsed().as_nanos() as u64;
    let profile = run.stats.profile;
    assert!(!profile.is_empty());
    assert!(
        profile.total_nanos() <= wall,
        "stage spans sum to {} ns but the run took only {} ns — a span \
         was double-counted",
        profile.total_nanos(),
        wall
    );
    // The engine/session stages all fired; the harness-side stages
    // (read packing, emission) are outside seed_reads and stay zero.
    for stage in [
        Stage::KmerCodes,
        Stage::FilterLookup,
        Stage::PivotAnalysis,
        Stage::CamSearch,
        Stage::ContainMerge,
        Stage::TranslateMerge,
    ] {
        assert!(profile.calls(stage) > 0, "no spans recorded for {stage}");
    }
    for stage in [Stage::ReadPack, Stage::Emit] {
        assert_eq!(
            profile.nanos(stage),
            0,
            "{stage} is a harness-side stage and must not be charged \
             inside seed_reads"
        );
    }
    // Disabling profiling returns the profile to all-zero, so equality
    // comparisons against unprofiled runs keep working.
    session.set_profiling(false);
    assert!(session.seed_reads(&reads).stats.profile.is_empty());

    // Parallel case: per-thread spans accumulate, so the bound is
    // workers x wall.
    let workers = 4;
    let parallel = SeedingSession::with_backend(
        &reference,
        CasaConfig::small(1024),
        workers,
        FaultPlan::default(),
        BackendKind::Cam,
    )
    .expect("small config is valid");
    parallel.set_profiling(true);
    parallel.seed_reads(&reads);
    let start = Instant::now();
    let run = parallel.seed_reads(&reads);
    let wall = start.elapsed().as_nanos() as u64;
    assert!(
        run.stats.profile.total_nanos() <= wall * workers as u64,
        "parallel stage spans sum to {} ns over {} workers but the run \
         took only {} ns",
        run.stats.profile.total_nanos(),
        workers,
        wall
    );
}
