//! Activity and cycle statistics of a CASA run — the raw material of the
//! throughput (Fig. 12), power (Fig. 13), and pivot-filtering (Fig. 15)
//! experiments.

use casa_cam::CamStats;
use casa_filter::FilterStats;
use serde::{Deserialize, Serialize};

use crate::profile::StageProfile;

/// Everything the simulator counts while seeding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SeedingStats {
    /// Reads processed (read × partition passes count once per pass).
    pub read_passes: u64,
    /// Reads settled by the exact-match pre-processing (§4.3).
    pub exact_match_reads: u64,
    /// Pivots examined in total (every read position is initially a
    /// pivot).
    pub pivots_total: u64,
    /// Pivots discarded because their k-mer missed the filter table.
    pub pivots_filtered_table: u64,
    /// Pivots discarded by the CRkM non-extendability analysis.
    pub pivots_filtered_crkm: u64,
    /// Pivots discarded by the alignment (shifted-AND) analysis.
    pub pivots_filtered_align: u64,
    /// Pivots that triggered a full RMEM computation in the CAM.
    pub rmem_searches: u64,
    /// RMEMs discarded by the final overlap check.
    pub rmems_contained: u64,
    /// SMEMs reported.
    pub smems_reported: u64,
    /// Pre-seeding filter activity.
    pub filter: FilterStats,
    /// Computing-CAM activity.
    pub cam: CamStats,
    /// Filter operations (lookups + data reads) issued to the
    /// pre-seeding stage; the timing model divides by the bank width.
    pub filter_ops: u64,
    /// Cycles spent in the SMEM computing stage (per lane-stream; the
    /// accelerator runs `lanes` of these in parallel).
    pub computing_cycles: u64,
    /// Bytes streamed from DRAM (reads in, seeds out).
    pub dram_bytes: u64,
    /// Tile attempts that failed (injected fault or genuine panic) and
    /// were retried by the session scheduler.
    pub tile_retries: u64,
    /// Tile attempts abandoned because they exceeded the supervisor's
    /// watchdog deadline — stalls *detected* by deadline, counted apart
    /// from panic retries.
    pub deadline_stalls: u64,
    /// Partitions quarantined to the FM-index golden model after retry
    /// exhaustion.
    pub partitions_quarantined: u64,
    /// Read passes seeded by the golden model instead of a quarantined
    /// partition's engine.
    pub fallback_reads: u64,
    /// Read passes verified against the golden model by the sampled
    /// cross-check.
    pub crosscheck_reads: u64,
    /// Cross-checked read passes whose engine output mismatched the golden
    /// model (silent corruption caught).
    pub crosscheck_mismatches: u64,
    /// Per-stage wall-clock accounting (see [`crate::profile`]). All-zero
    /// unless profiling was enabled on the session/engine, so runs compared
    /// for bit-identity (which keep profiling off) still compare equal.
    pub profile: StageProfile,
}

impl SeedingStats {
    /// Adds another snapshot into this one.
    pub fn merge(&mut self, other: &SeedingStats) {
        self.read_passes += other.read_passes;
        self.exact_match_reads += other.exact_match_reads;
        self.pivots_total += other.pivots_total;
        self.pivots_filtered_table += other.pivots_filtered_table;
        self.pivots_filtered_crkm += other.pivots_filtered_crkm;
        self.pivots_filtered_align += other.pivots_filtered_align;
        self.rmem_searches += other.rmem_searches;
        self.rmems_contained += other.rmems_contained;
        self.smems_reported += other.smems_reported;
        self.filter.merge(&other.filter);
        self.cam.merge(&other.cam);
        self.filter_ops += other.filter_ops;
        self.computing_cycles += other.computing_cycles;
        self.dram_bytes += other.dram_bytes;
        self.tile_retries += other.tile_retries;
        self.deadline_stalls += other.deadline_stalls;
        self.partitions_quarantined += other.partitions_quarantined;
        self.fallback_reads += other.fallback_reads;
        self.crosscheck_reads += other.crosscheck_reads;
        self.crosscheck_mismatches += other.crosscheck_mismatches;
        self.profile.merge(&other.profile);
    }

    /// Fraction of pivots that never reached RMEM computation.
    pub fn pivot_filter_rate(&self) -> f64 {
        if self.pivots_total == 0 {
            return 0.0;
        }
        1.0 - self.rmem_searches as f64 / self.pivots_total as f64
    }

    /// Average RMEM computations per read pass (the y-axis of Fig. 15).
    pub fn rmems_per_read(&self) -> f64 {
        if self.read_passes == 0 {
            return 0.0;
        }
        self.rmem_searches as f64 / self.read_passes as f64
    }

    /// A copy with the recovery counters (retries, quarantines, fallbacks,
    /// cross-checks) zeroed — the engine-activity stats alone. Lets tests
    /// compare a fault-injected run's *work* against a fault-free baseline
    /// without the recovery bookkeeping getting in the way.
    pub fn without_recovery(&self) -> SeedingStats {
        SeedingStats {
            tile_retries: 0,
            deadline_stalls: 0,
            partitions_quarantined: 0,
            fallback_reads: 0,
            crosscheck_reads: 0,
            crosscheck_mismatches: 0,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_everything() {
        let mut a = SeedingStats {
            read_passes: 1,
            pivots_total: 10,
            rmem_searches: 2,
            computing_cycles: 100,
            ..SeedingStats::default()
        };
        let b = SeedingStats {
            read_passes: 3,
            pivots_total: 30,
            rmem_searches: 2,
            computing_cycles: 50,
            ..SeedingStats::default()
        };
        a.merge(&b);
        assert_eq!(a.read_passes, 4);
        assert_eq!(a.pivots_total, 40);
        assert_eq!(a.computing_cycles, 150);
        assert!((a.pivot_filter_rate() - 0.9).abs() < 1e-12);
        assert!((a.rmems_per_read() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_recovery_counters_and_without_recovery_zeroes_them() {
        let mut a = SeedingStats {
            tile_retries: 2,
            deadline_stalls: 4,
            fallback_reads: 5,
            crosscheck_reads: 7,
            ..SeedingStats::default()
        };
        let b = SeedingStats {
            tile_retries: 1,
            deadline_stalls: 2,
            partitions_quarantined: 1,
            crosscheck_mismatches: 3,
            ..SeedingStats::default()
        };
        a.merge(&b);
        assert_eq!(a.tile_retries, 3);
        assert_eq!(a.deadline_stalls, 6);
        assert_eq!(a.partitions_quarantined, 1);
        assert_eq!(a.fallback_reads, 5);
        assert_eq!(a.crosscheck_reads, 7);
        assert_eq!(a.crosscheck_mismatches, 3);
        assert_eq!(a.without_recovery(), SeedingStats::default());
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let s = SeedingStats::default();
        assert_eq!(s.pivot_filter_rate(), 0.0);
        assert_eq!(s.rmems_per_read(), 0.0);
    }
}
