//! Building and loading zero-copy index images for whole seeding
//! sessions.
//!
//! [`casa_index::image`] defines the artifact format (page-aligned,
//! versioned, checksummed sections) without knowing what the sections
//! mean. This module supplies the semantics: [`build_index_image`]
//! constructs every reference-side array exactly as a fresh
//! [`SeedingSession`](crate::SeedingSession) would — per-partition
//! pre-seeding filter tables, CAM entry bitplanes, golden suffix
//! arrays — and packs them plus the 2-bit reference text and the
//! serialized [`CasaConfig`] into one image. [`LoadedIndex::open`] mmaps
//! an image and re-derives the session inputs with **no table rebuild**:
//! the CAM planes, filter tables and suffix arrays are borrowed straight
//! from the mapping (see `casa_genome::shared`), so cold start is
//! dominated by page faults, not index construction.
//!
//! The bit-identity contract: a session built from a mapped image
//! produces byte-identical SMEMs, stats and SAM to one built from the
//! reference, for every backend and kernel (asserted in
//! `tests/index_image.rs`). The CAM backend is the zero-copy path; the
//! FM/ERT software baselines rebuild their private structures from the
//! image's reference text (their indexes are not imaged), which still
//! spares the caller reference distribution and config drift.
//!
//! The config rides in the image as a canonical JSON blob. The vendored
//! `serde_json` keeps object keys sorted, so equal configs serialize to
//! equal bytes and the image fingerprint (config + reference hash) is
//! deterministic.

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use casa_cam::Bcam;
use casa_filter::PreSeedingFilter;
use casa_genome::{PackedSeq, Partition};
use casa_index::image::{ImageBuilder, ImageError, IndexImage, SectionKind};
use casa_index::SuffixArray;
use serde_json::{json, Value};

use crate::backend::{build_backend, BackendKind, SeedingBackend};
use crate::engine::PartitionEngine;
use crate::{CasaConfig, Error};

/// Typed failure modes of building or loading an index image.
#[derive(Debug)]
pub enum IndexImageError {
    /// The artifact layer rejected the file (I/O, checksum, truncation…).
    Image(ImageError),
    /// The embedded config blob is malformed or fails validation.
    Config(String),
    /// The image's sections disagree with each other or with the
    /// embedded config (named invariant).
    Mismatch(&'static str),
}

impl fmt::Display for IndexImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexImageError::Image(e) => write!(f, "{e}"),
            IndexImageError::Config(what) => write!(f, "index image config invalid: {what}"),
            IndexImageError::Mismatch(what) => write!(f, "index image inconsistent: {what}"),
        }
    }
}

impl std::error::Error for IndexImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexImageError::Image(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ImageError> for IndexImageError {
    fn from(e: ImageError) -> Self {
        IndexImageError::Image(e)
    }
}

impl From<IndexImageError> for Error {
    fn from(e: IndexImageError) -> Self {
        Error::Image {
            what: e.to_string(),
        }
    }
}

/// What [`build_index_image`] produced.
#[derive(Debug, Clone)]
pub struct ImageBuildReport {
    /// Content fingerprint (config + reference hash) stamped into the
    /// image header.
    pub fingerprint: u64,
    /// Number of reference partitions imaged.
    pub partitions: usize,
    /// Final artifact size in bytes.
    pub bytes: u64,
    /// Wall-clock spent building and writing (the cost the mmap load
    /// path amortizes away).
    pub elapsed: Duration,
}

/// Builds every reference-side array for `reference` under `config` and
/// writes them as one index image at `path` (atomically).
///
/// The arrays are constructed with the same code paths a fresh session
/// uses (`PreSeedingFilter::build`, `Bcam::new`, `SuffixArray::build`),
/// so a session loaded from the image is bit-identical to one built
/// directly.
pub fn build_index_image(
    reference: &PackedSeq,
    config: CasaConfig,
    path: &Path,
) -> Result<ImageBuildReport, IndexImageError> {
    let start = Instant::now();
    let config = config
        .validated()
        .map_err(|e| IndexImageError::Config(e.to_string()))?;
    let partitions: Vec<Partition> = config.partitioning.split(reference);
    if partitions.is_empty() {
        return Err(IndexImageError::Mismatch("reference is empty"));
    }
    let mut builder = ImageBuilder::new(config_to_json(&config).as_bytes());
    builder.add_bytes(
        SectionKind::RefText,
        0,
        &reference.to_packed_bytes(),
        reference.len() as u64,
    );
    for p in &partitions {
        let pi = p.index as u32;
        let filter = PreSeedingFilter::build(&p.seq, config.filter);
        let cam = Bcam::new(&p.seq, config.filter.stride);
        let sa = SuffixArray::build(&p.seq);
        builder.add_u64s(SectionKind::CamPlanes, pi, cam.planes());
        builder.add_u32s(SectionKind::FilterMini, pi, filter.mini_index());
        builder.add_u32s(SectionKind::FilterTag, pi, filter.tag());
        builder.add_u64s(SectionKind::FilterData, pi, &filter.data_words());
        builder.add_u32s(SectionKind::Sa, pi, sa.sa());
    }
    let fingerprint = builder.write_file(path)?;
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    Ok(ImageBuildReport {
        fingerprint,
        partitions: partitions.len(),
        bytes,
        elapsed: start.elapsed(),
    })
}

/// An opened index image with its config and reference decoded, ready to
/// hand to [`SeedingSession::from_image`](crate::SeedingSession::from_image).
///
/// Decoding copies only the config (a few hundred bytes) and the 2-bit
/// reference text (`n/4` bytes, one memcpy-speed pass); every large
/// array — CAM planes, filter tables, suffix arrays — stays borrowed
/// from the mapping.
#[derive(Debug)]
pub struct LoadedIndex {
    image: IndexImage,
    config: CasaConfig,
    reference: PackedSeq,
    elapsed: Duration,
}

impl LoadedIndex {
    /// Opens, fully verifies and decodes the image at `path` (every
    /// payload checksum is checked before any view is handed out).
    pub fn open<P: AsRef<Path>>(path: P) -> Result<LoadedIndex, IndexImageError> {
        LoadedIndex::open_with(path, casa_index::image::VerifyMode::Full)
    }

    /// Opens with metadata-only verification: header and meta checksums,
    /// section bounds and alignment are still checked (a fast open can
    /// never read out of bounds), but the payload word checksums — a
    /// full sequential read of the file — are skipped. This is the
    /// O(ms) cold-start path for locally built, trusted artifacts
    /// (`casa-serve --index-image` startup); `index inspect`, CLI runs,
    /// and `/admin/reload` keep full verification.
    pub fn open_fast<P: AsRef<Path>>(path: P) -> Result<LoadedIndex, IndexImageError> {
        LoadedIndex::open_with(path, casa_index::image::VerifyMode::Meta)
    }

    fn open_with<P: AsRef<Path>>(
        path: P,
        verify: casa_index::image::VerifyMode,
    ) -> Result<LoadedIndex, IndexImageError> {
        let start = Instant::now();
        let image = IndexImage::open_with(path.as_ref(), verify)?;
        let text = std::str::from_utf8(image.config_bytes())
            .map_err(|_| IndexImageError::Config("config blob is not UTF-8".into()))?;
        let config = config_from_json(text).map_err(IndexImageError::Config)?;
        let section = image
            .find(SectionKind::RefText, 0)
            .ok_or(IndexImageError::Mismatch("missing reference text section"))?;
        let len = section.elem_count as usize;
        let reference = PackedSeq::from_packed_bytes(image.section_bytes(section), len).ok_or(
            IndexImageError::Mismatch("reference text section malformed"),
        )?;
        let expected = config.partitioning.part_count(reference.len());
        if image.partitions() != expected {
            return Err(IndexImageError::Mismatch(
                "partition sections disagree with the embedded config",
            ));
        }
        Ok(LoadedIndex {
            image,
            config,
            reference,
            elapsed: start.elapsed(),
        })
    }

    /// The embedded (validated) config.
    pub fn config(&self) -> &CasaConfig {
        &self.config
    }

    /// The decoded reference sequence.
    pub fn reference(&self) -> &PackedSeq {
        &self.reference
    }

    /// The image's content fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.image.fingerprint()
    }

    /// The underlying verified artifact.
    pub fn image(&self) -> &IndexImage {
        &self.image
    }

    /// Path the image was opened from.
    pub fn path(&self) -> &Path {
        self.image.path()
    }

    /// Wall-clock spent opening, verifying and decoding.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Builds one partition's seeding backend from the image.
    ///
    /// The CAM backend borrows its planes and filter tables from the
    /// mapping (zero-copy); the FM/ERT software baselines rebuild from
    /// the partition sequence, keeping the bit-identity contract.
    pub(crate) fn backend_for_partition(
        &self,
        kind: BackendKind,
        p: &Partition,
        config: CasaConfig,
    ) -> Result<Box<dyn SeedingBackend>, Error> {
        if kind != BackendKind::Cam {
            return build_backend(kind, &p.seq, config).map_err(Error::Config);
        }
        let pi = p.index as u32;
        let mini = self
            .image
            .u32_view(SectionKind::FilterMini, pi)
            .ok_or_else(|| missing("filter mini-index", p.index))?;
        let tag = self
            .image
            .u32_view(SectionKind::FilterTag, pi)
            .ok_or_else(|| missing("filter tag array", p.index))?;
        let data = self
            .image
            .u64_view(SectionKind::FilterData, pi)
            .ok_or_else(|| missing("filter data array", p.index))?;
        let planes = self
            .image
            .u64_view(SectionKind::CamPlanes, pi)
            .ok_or_else(|| missing("CAM planes", p.index))?;
        let filter =
            PreSeedingFilter::from_shared_parts(config.filter, mini, tag, data, p.seq.len())
                .map_err(|what| Error::Image {
                    what: format!("partition {}: {what}", p.index),
                })?;
        let cam =
            Bcam::from_shared_planes(&p.seq, config.filter.stride, planes).map_err(|what| {
                Error::Image {
                    what: format!("partition {}: {what}", p.index),
                }
            })?;
        let engine = PartitionEngine::from_parts(filter, cam, config).map_err(Error::Config)?;
        Ok(Box::new(engine))
    }

    /// The partition's golden suffix array, borrowed from the mapping if
    /// the image carries it (shape-checked against the partition).
    pub(crate) fn suffix_array_for_partition(&self, p: &Partition) -> Option<SuffixArray> {
        let view = self.image.u32_view(SectionKind::Sa, p.index as u32)?;
        if view.as_slice().len() != p.seq.len() {
            return None;
        }
        Some(SuffixArray::from_shared(p.seq.clone(), view))
    }
}

fn missing(what: &'static str, partition: usize) -> Error {
    Error::Image {
        what: format!("partition {partition}: image has no {what} section"),
    }
}

/// Serializes a config as canonical (sorted-key, compact) JSON.
pub fn config_to_json(config: &CasaConfig) -> String {
    json!({
        "filter": {
            "k": config.filter.k,
            "m": config.filter.m,
            "stride": config.filter.stride,
            "groups": config.filter.groups,
        },
        "min_smem_len": config.min_smem_len,
        "lanes": config.lanes,
        "fifo_depth": config.fifo_depth,
        "filter_banks": config.filter_banks,
        "exact_match_preprocessing": config.exact_match_preprocessing,
        "use_filter_table": config.use_filter_table,
        "use_pivot_analysis": config.use_pivot_analysis,
        "partitioning": {
            "part_len": config.partitioning.part_len,
            "overlap": config.partitioning.overlap,
        },
    })
    .to_string()
}

/// Parses and validates a config from its canonical JSON form.
pub fn config_from_json(text: &str) -> Result<CasaConfig, String> {
    let root = serde_json::from_str(text).map_err(|e| format!("bad JSON: {e}"))?;
    let config = CasaConfig {
        filter: casa_filter::FilterConfig {
            k: usize_field(&root, "filter", "k")?,
            m: usize_field(&root, "filter", "m")?,
            stride: usize_field(&root, "filter", "stride")?,
            groups: usize_field(&root, "filter", "groups")?,
        },
        min_smem_len: usize_field(&root, "", "min_smem_len")?,
        lanes: usize_field(&root, "", "lanes")?,
        fifo_depth: usize_field(&root, "", "fifo_depth")?,
        filter_banks: usize_field(&root, "", "filter_banks")?,
        exact_match_preprocessing: bool_field(&root, "exact_match_preprocessing")?,
        use_filter_table: bool_field(&root, "use_filter_table")?,
        use_pivot_analysis: bool_field(&root, "use_pivot_analysis")?,
        partitioning: casa_genome::PartitionScheme {
            part_len: usize_field(&root, "partitioning", "part_len")?,
            overlap: usize_field(&root, "partitioning", "overlap")?,
        },
    };
    // Struct-literal construction skips the panicking constructors on
    // purpose: corrupt input must surface as an Err, never a panic.
    config.validated().map_err(|e| e.to_string())
}

fn usize_field(root: &Value, group: &str, key: &str) -> Result<usize, String> {
    let holder = if group.is_empty() {
        root
    } else {
        root.get(group)
            .ok_or_else(|| format!("missing object \"{group}\""))?
    };
    holder
        .get(key)
        .and_then(Value::as_u64)
        .map(|v| v as usize)
        .ok_or_else(|| format!("missing or non-integer field \"{key}\""))
}

fn bool_field(root: &Value, key: &str) -> Result<bool, String> {
    match root.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-boolean field \"{key}\"")),
    }
}

/// Returns the path with the conventional index-image extension applied
/// if `path` has none (`ref.fa` → `ref.fa.casaimg`).
pub fn default_image_path(path: &Path) -> PathBuf {
    if path.extension().is_some_and(|e| e == "casaimg") {
        path.to_path_buf()
    } else {
        let mut s = path.as_os_str().to_os_string();
        s.push(".casaimg");
        PathBuf::from(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_genome::synth::{generate_reference, ReferenceProfile};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("casa_core_image_{}_{}", std::process::id(), name))
    }

    #[test]
    fn config_json_roundtrips() {
        for config in [
            CasaConfig::small(500),
            CasaConfig::paper(1 << 20, 101),
            CasaConfig::small(64),
        ] {
            let text = config_to_json(&config);
            let back = config_from_json(&text).unwrap();
            assert_eq!(back, config);
            // Canonical form: serializing again yields the same bytes.
            assert_eq!(config_to_json(&back), text);
        }
    }

    #[test]
    fn config_json_rejects_invalid_values_without_panicking() {
        // Structurally valid JSON, semantically invalid config
        // (overlap >= part_len) must be a typed Err.
        let mut config = CasaConfig::small(500);
        config.partitioning.overlap = config.partitioning.part_len + 7;
        let text = config_to_json(&config);
        assert!(config_from_json(&text).is_err());
        assert!(config_from_json("{\"lanes\": 2}").is_err());
        assert!(config_from_json("not json").is_err());
    }

    #[test]
    fn build_then_open_roundtrips_reference_and_config() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 3_000, 11);
        let config = CasaConfig::small(1_000);
        let path = tmp("roundtrip.casaimg");
        let report = build_index_image(&reference, config, &path).unwrap();
        assert!(report.partitions >= 3);
        assert!(report.bytes > 0);

        let loaded = LoadedIndex::open(&path).unwrap();
        assert_eq!(loaded.fingerprint(), report.fingerprint);
        assert_eq!(loaded.config(), &config);
        assert_eq!(loaded.reference().to_string(), reference.to_string());
        assert_eq!(loaded.image().partitions(), report.partitions);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_tracks_reference_and_config_content() {
        let a = generate_reference(&ReferenceProfile::human_like(), 2_000, 1);
        let b = generate_reference(&ReferenceProfile::human_like(), 2_000, 2);
        let config = CasaConfig::small(900);
        let pa = tmp("fp_a.casaimg");
        let pb = tmp("fp_b.casaimg");
        let pc = tmp("fp_c.casaimg");
        let ra = build_index_image(&a, config, &pa).unwrap();
        let rb = build_index_image(&b, config, &pb).unwrap();
        let rc = build_index_image(&a, CasaConfig::small(800), &pc).unwrap();
        assert_ne!(ra.fingerprint, rb.fingerprint, "reference must matter");
        assert_ne!(ra.fingerprint, rc.fingerprint, "config must matter");
        // Same inputs: same fingerprint (determinism).
        let ra2 = build_index_image(&a, config, &pa).unwrap();
        assert_eq!(ra.fingerprint, ra2.fingerprint);
        for p in [pa, pb, pc] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn session_from_image_is_bit_identical_and_zero_copy() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 4_000, 21);
        let config = CasaConfig::small(1_500);
        let path = tmp("session.casaimg");
        build_index_image(&reference, config, &path).unwrap();
        let loaded = LoadedIndex::open(&path).unwrap();

        // The CAM backend really borrows from the mapping.
        let parts = config.partitioning.split(&reference);
        let backend = loaded
            .backend_for_partition(BackendKind::Cam, &parts[0], config)
            .unwrap();
        assert!(backend.storage_shared(), "CAM backend must be zero-copy");

        let reads: Vec<PackedSeq> = (0..8).map(|i| reference.subseq(i * 400, 80)).collect();
        let fresh = crate::SeedingSession::with_backend(
            &reference,
            config,
            2,
            crate::FaultPlan::default(),
            BackendKind::Cam,
        )
        .unwrap();
        let mapped = crate::SeedingSession::from_image(
            &loaded,
            2,
            crate::FaultPlan::default(),
            BackendKind::Cam,
        )
        .unwrap();
        assert_eq!(
            fresh.seed_reads(&reads).smems,
            mapped.seed_reads(&reads).smems
        );

        // Software baselines rebuild from the imaged reference but stay on
        // the same bit-identity contract.
        let fm = crate::SeedingSession::from_image(
            &loaded,
            1,
            crate::FaultPlan::default(),
            BackendKind::Fm,
        )
        .unwrap();
        assert_eq!(fresh.seed_reads(&reads).smems, fm.seed_reads(&reads).smems);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn default_image_path_appends_extension_once() {
        assert_eq!(
            default_image_path(Path::new("ref.fa")),
            PathBuf::from("ref.fa.casaimg")
        );
        assert_eq!(
            default_image_path(Path::new("ref.casaimg")),
            PathBuf::from("ref.casaimg")
        );
    }
}
