//! The full CASA accelerator: partition streaming, result merging, and the
//! timing model that turns activity counts into seconds.

use casa_energy::circuits::CLOCK_HZ;
use casa_energy::DramSystem;
use casa_genome::{PackedSeq, Partition};
use casa_index::smem::merge_partition_smems;
use casa_index::Smem;

use crate::engine::PartitionEngine;
use crate::error::Error;
use crate::session::SeedingSession;
use crate::stats::SeedingStats;
use crate::CasaConfig;

/// The CASA accelerator bound to a reference genome.
///
/// The reference is split into overlapping partitions
/// (`config.partitioning`); each partition is loaded into the on-chip
/// memories in turn and the whole read batch streams through it, exactly
/// like the hardware replays read batches against the 768 parts of GRCh38.
///
/// Since the API redesign this type is a thin wrapper over a
/// [`SeedingSession`]: the per-partition engines are built once at
/// construction and reused by every [`seed_reads`](Self::seed_reads) call,
/// which also spreads the partition passes across worker threads. The
/// original one-pass implementation survives as
/// [`seed_reads_serial`](Self::seed_reads_serial), the executable
/// specification the session is tested against.
///
/// ```
/// use casa_core::{CasaAccelerator, CasaConfig};
/// use casa_genome::synth::{generate_reference, ReferenceProfile};
///
/// let reference = generate_reference(&ReferenceProfile::human_like(), 4_000, 1);
/// let casa = CasaAccelerator::new(&reference, CasaConfig::small(1_000))?;
/// let read = reference.subseq(2_500, 40);
/// let run = casa.seed_reads(std::slice::from_ref(&read));
/// assert_eq!(run.smems[0].len(), 1);
/// assert!(run.smems[0][0].hits.contains(&2_500));
/// # Ok::<(), casa_core::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct CasaAccelerator {
    session: SeedingSession,
    partitions: Vec<Partition>,
}

/// Result of seeding a read batch.
#[derive(Clone, Debug)]
pub struct CasaRun {
    /// Per-read SMEMs in global reference coordinates, merged across
    /// partitions.
    pub smems: Vec<Vec<Smem>>,
    /// Accumulated activity.
    pub stats: SeedingStats,
    /// The configuration the run used.
    pub config: CasaConfig,
}

impl CasaAccelerator {
    /// Splits `reference` into partitions per the configuration and builds
    /// the per-partition engines, using one worker per available CPU.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for an inconsistent configuration or
    /// [`Error::EmptyReference`] for an empty reference.
    pub fn new(reference: &PackedSeq, config: CasaConfig) -> Result<CasaAccelerator, Error> {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        CasaAccelerator::with_workers(reference, config, workers)
    }

    /// Like [`new`](Self::new) with an explicit worker count.
    ///
    /// # Errors
    ///
    /// As [`new`](Self::new), plus [`Error::ZeroWorkers`] if
    /// `workers == 0`.
    pub fn with_workers(
        reference: &PackedSeq,
        config: CasaConfig,
        workers: usize,
    ) -> Result<CasaAccelerator, Error> {
        Ok(CasaAccelerator {
            session: SeedingSession::new(reference, config, workers)?,
            partitions: config.partitioning.split(reference),
        })
    }

    /// Like [`with_workers`](Self::with_workers) with an explicit
    /// [`FaultPlan`](crate::FaultPlan): hardware faults are injected into
    /// the freshly built engines and scheduler faults armed for every
    /// batch. See [`SeedingSession::with_fault_plan`].
    ///
    /// # Errors
    ///
    /// As [`with_workers`](Self::with_workers), plus [`Error::Config`]
    /// for a plan rate outside `[0, 1]`.
    pub fn with_fault_plan(
        reference: &PackedSeq,
        config: CasaConfig,
        workers: usize,
        plan: crate::FaultPlan,
    ) -> Result<CasaAccelerator, Error> {
        Ok(CasaAccelerator {
            session: SeedingSession::with_fault_plan(reference, config, workers, plan)?,
            partitions: config.partitioning.split(reference),
        })
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &CasaConfig {
        self.session.config()
    }

    /// Number of reference partitions (passes per read batch).
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The session carrying the prebuilt partition engines.
    pub fn session(&self) -> &SeedingSession {
        &self.session
    }

    /// Seeds a read batch against every partition and merges the results,
    /// reusing the prebuilt engines across worker threads. Bit-identical
    /// to [`seed_reads_serial`](Self::seed_reads_serial).
    pub fn seed_reads(&self, reads: &[PackedSeq]) -> CasaRun {
        self.session.seed_reads(reads)
    }

    /// The original single-threaded implementation, which rebuilds every
    /// partition engine on each call: the executable specification of
    /// [`seed_reads`](Self::seed_reads) and the baseline its benches
    /// compare against.
    pub fn seed_reads_serial(&self, reads: &[PackedSeq]) -> CasaRun {
        let config = *self.session.config();
        let mut stats = SeedingStats::default();
        let mut per_read_parts: Vec<Vec<Vec<Smem>>> = vec![Vec::new(); reads.len()];
        for part in &self.partitions {
            let mut engine =
                PartitionEngine::new(&part.seq, config).expect("config validated at construction");
            for (ri, read) in reads.iter().enumerate() {
                let mut smems = engine.seed_read(read, &mut stats);
                for smem in &mut smems {
                    for hit in &mut smem.hits {
                        *hit += part.start as u32;
                    }
                }
                per_read_parts[ri].push(smems);
            }
        }
        // Read batch streams in once (2-bit packed + header).
        for read in reads {
            stats.dram_bytes += read.len().div_ceil(4) as u64 + 8;
        }
        let smems = per_read_parts
            .into_iter()
            .map(merge_partition_smems)
            .collect();
        CasaRun {
            smems,
            stats,
            config,
        }
    }
}

/// Both-orientation seeding results (paper §4.1: reads are sent to the
/// pre-seeding filter "together with the reverse strands").
#[derive(Clone, Debug)]
pub struct StrandedRun {
    /// Results of seeding the reads as given.
    pub forward: CasaRun,
    /// Results of seeding the reverse complements.
    pub reverse: CasaRun,
}

impl StrandedRun {
    /// For each read, the orientation with the longest SMEM:
    /// `(reverse?, smems)` — the natural input to per-strand alignment.
    pub fn best_per_read(&self) -> Vec<(bool, &[Smem])> {
        self.forward
            .smems
            .iter()
            .zip(&self.reverse.smems)
            .map(|(f, r)| {
                let fl = f.iter().map(Smem::len).max().unwrap_or(0);
                let rl = r.iter().map(Smem::len).max().unwrap_or(0);
                if rl > fl {
                    (true, r.as_slice())
                } else {
                    (false, f.as_slice())
                }
            })
            .collect()
    }

    /// Combined stats over both orientations.
    pub fn stats(&self) -> SeedingStats {
        let mut s = self.forward.stats;
        s.merge(&self.reverse.stats);
        s
    }
}

impl CasaRun {
    /// Total reads represented by the run (read passes divided by
    /// partition passes).
    pub fn reads(&self, partition_count: usize) -> u64 {
        if partition_count == 0 {
            0
        } else {
            self.stats.read_passes / partition_count as u64
        }
    }

    /// Modelled wall-clock seconds of the run.
    ///
    /// The pipeline overlaps read fetch, pre-seeding and SMEM computing
    /// (paper Fig. 9); throughput is set by the slowest stage:
    ///
    /// * pre-seeding: multi-banked filter lookups;
    /// * computing: CAM searches + pivot checks, spread over
    ///   `config.lanes` computing CAMs;
    /// * DRAM: streaming the read batch once per partition at the usable
    ///   bandwidth.
    pub fn seconds(&self, dram: &DramSystem) -> f64 {
        let pre = self.stats.filter_ops as f64 / self.config.filter_banks as f64 / CLOCK_HZ;
        let compute = self.stats.computing_cycles as f64 / self.config.lanes as f64 / CLOCK_HZ;
        let dram_s = dram.transfer_seconds(self.stats.dram_bytes);
        pre.max(compute).max(dram_s)
    }

    /// Seeding throughput in reads per second.
    pub fn throughput_reads_per_s(&self, partition_count: usize, dram: &DramSystem) -> f64 {
        let secs = self.seconds(dram);
        if secs == 0.0 {
            return 0.0;
        }
        self.reads(partition_count) as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_genome::synth::{generate_reference, ReferenceProfile};
    use casa_genome::{ReadSimConfig, ReadSimulator};
    use casa_index::smem::smems_unidirectional;
    use casa_index::SuffixArray;

    /// Cross-partition merging must reproduce the whole-genome golden SMEM
    /// set, including matches straddling partition cuts.
    #[test]
    fn multi_partition_equals_whole_genome_golden() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 5_000, 42);
        let mut config = CasaConfig::small(800);
        config.partitioning = casa_genome::PartitionScheme::new(800, 60);
        let casa = CasaAccelerator::new(&reference, config).expect("valid config");
        assert!(casa.partition_count() > 4);
        let sa = SuffixArray::build(&reference);
        let sim = ReadSimulator::new(
            ReadSimConfig {
                read_len: 44,
                ..ReadSimConfig::default()
            },
            12,
        );
        let reads: Vec<PackedSeq> = sim
            .simulate(&reference, 40)
            .into_iter()
            .map(|r| r.seq)
            .collect();
        let run = casa.seed_reads(&reads);
        for (i, read) in reads.iter().enumerate() {
            let golden = smems_unidirectional(&sa, read, config.min_smem_len);
            assert_eq!(run.smems[i], golden, "read {i}");
        }
    }

    #[test]
    fn read_straddling_partition_boundary_is_found() {
        let reference = generate_reference(&ReferenceProfile::uniform(), 2_000, 9);
        let mut config = CasaConfig::small(500);
        config.partitioning = casa_genome::PartitionScheme::new(500, 60);
        let casa = CasaAccelerator::new(&reference, config).expect("valid config");
        // read centered on the cut at 500
        let read = reference.subseq(480, 40);
        let run = casa.seed_reads(std::slice::from_ref(&read));
        assert_eq!(run.smems[0].len(), 1);
        assert_eq!(run.smems[0][0].len(), 40);
        assert!(run.smems[0][0].hits.contains(&480));
    }

    #[test]
    fn both_strands_finds_reverse_reads() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 3_000, 21);
        let casa =
            CasaAccelerator::new(&reference, CasaConfig::small(1_500)).expect("valid config");
        let fwd_read = reference.subseq(200, 40);
        let rev_read = reference.subseq(900, 40).reverse_complement();
        let run = casa
            .session()
            .seed_reads_both_strands(&[fwd_read, rev_read]);
        let best = run.best_per_read();
        assert!(!best[0].0, "forward read classified forward");
        assert!(best[1].0, "reverse read classified reverse");
        assert!(best[1].1[0].hits.contains(&900));
        assert_eq!(run.stats().read_passes, run.forward.stats.read_passes * 2);
    }

    #[test]
    fn timing_model_is_positive_and_monotone() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 3_000, 4);
        let config = CasaConfig::small(1_000);
        let casa = CasaAccelerator::new(&reference, config).expect("valid config");
        let sim = ReadSimulator::new(
            ReadSimConfig {
                read_len: 40,
                ..ReadSimConfig::default()
            },
            3,
        );
        let reads: Vec<PackedSeq> = sim
            .simulate(&reference, 20)
            .into_iter()
            .map(|r| r.seq)
            .collect();
        let small = casa.seed_reads(&reads[..5]);
        let big = casa.seed_reads(&reads);
        let dram = DramSystem::casa();
        assert!(small.seconds(&dram) > 0.0);
        assert!(big.seconds(&dram) > small.seconds(&dram));
        assert_eq!(big.reads(casa.partition_count()), 20);
        assert!(big.throughput_reads_per_s(casa.partition_count(), &dram) > 0.0);
    }
}
