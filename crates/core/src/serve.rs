//! Protocol-independent serving primitives: admission control, fair
//! multi-tenant scheduling, and server metrics.
//!
//! The `casa-serve` daemon (in the `casa` facade crate) is a thin
//! HTTP/1.1 shell around three pieces that live here so they can be unit
//! tested without sockets:
//!
//! * [`FairQueue`] — per-tenant bounded request queues with admission
//!   control. A request is rejected *at submit time* (typed
//!   [`OverloadReason`], never a panic and never unbounded memory) when
//!   its tenant's queue is full, when the global in-flight payload budget
//!   is exhausted, or when the server is draining. Workers pop admitted
//!   requests round-robin across tenants, so one heavy client cannot
//!   starve the others: with `k` active tenants each is served every
//!   `k`-th slot no matter how deep the heavy tenant's queue is.
//! * [`LatencyHistogram`] — fixed-bucket request latency accounting,
//!   rendered in Prometheus histogram text format.
//! * [`ServeMetrics`] — the server's counter registry: admission
//!   outcomes, latency, accumulated [`SeedingStats`] (recovery counters
//!   and the PR 7 per-stage profile), rendered as a Prometheus text
//!   exposition for the `/metrics` endpoint.
//!
//! Draining is cooperative and two-phase, mirroring the streaming
//! runtime's cancellation contract: [`FairQueue::begin_drain`] makes
//! every later submit fail with [`OverloadReason::ShuttingDown`] while
//! already-admitted requests keep flowing to workers;
//! [`FairQueue::pop`] returns `None` once the queue is empty and
//! draining, which is each worker's signal to exit.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

use crate::profile::Stage;
use crate::stats::SeedingStats;

/// Structural limits enforced by a [`FairQueue`]'s admission control.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeLimits {
    /// Requests one tenant may have queued (not yet popped by a worker).
    pub queue_depth: usize,
    /// Total request payload bytes admitted but not yet completed,
    /// across all tenants — the server's memory budget for request data.
    pub max_inflight_bytes: usize,
    /// Payload bytes a single request may carry.
    pub max_request_bytes: usize,
}

impl Default for ServeLimits {
    fn default() -> ServeLimits {
        ServeLimits {
            queue_depth: 8,
            max_inflight_bytes: 64 << 20,
            max_request_bytes: 8 << 20,
        }
    }
}

impl ServeLimits {
    /// Checks the structural bounds.
    ///
    /// # Errors
    ///
    /// [`crate::ConfigError::BadStreamConfig`] naming the violated bound
    /// (the serve limits reuse the streaming config's error taxonomy).
    pub fn validated(self) -> Result<ServeLimits, crate::ConfigError> {
        if self.queue_depth == 0 {
            return Err(crate::ConfigError::BadStreamConfig {
                reason: "queue_depth must be positive",
            });
        }
        if self.max_request_bytes == 0 {
            return Err(crate::ConfigError::BadStreamConfig {
                reason: "max_request_bytes must be positive",
            });
        }
        if self.max_inflight_bytes < self.max_request_bytes {
            return Err(crate::ConfigError::BadStreamConfig {
                reason: "max_inflight_bytes must be >= max_request_bytes",
            });
        }
        Ok(self)
    }
}

/// Why admission control rejected a request. The server maps these onto
/// typed overload responses (HTTP 503/413) that clients can retry on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadReason {
    /// The tenant's queue already holds [`ServeLimits::queue_depth`]
    /// requests.
    QueueFull,
    /// Admitting the request would push the in-flight payload bytes past
    /// [`ServeLimits::max_inflight_bytes`].
    InflightBytes,
    /// The request's payload alone exceeds
    /// [`ServeLimits::max_request_bytes`] — never admissible, so clients
    /// should not retry it unchanged.
    RequestTooLarge,
    /// The server is draining and accepts no new work.
    ShuttingDown,
}

impl OverloadReason {
    /// Every reason, in rendering order.
    pub const ALL: [OverloadReason; 4] = [
        OverloadReason::QueueFull,
        OverloadReason::InflightBytes,
        OverloadReason::RequestTooLarge,
        OverloadReason::ShuttingDown,
    ];

    /// Stable snake_case label used in metrics and response bodies.
    pub fn as_str(self) -> &'static str {
        match self {
            OverloadReason::QueueFull => "queue_full",
            OverloadReason::InflightBytes => "inflight_bytes",
            OverloadReason::RequestTooLarge => "request_too_large",
            OverloadReason::ShuttingDown => "shutting_down",
        }
    }

    /// Whether retrying the same request later can succeed (`false` only
    /// for [`OverloadReason::RequestTooLarge`]).
    pub fn retriable(self) -> bool {
        !matches!(self, OverloadReason::RequestTooLarge)
    }

    fn index(self) -> usize {
        match self {
            OverloadReason::QueueFull => 0,
            OverloadReason::InflightBytes => 1,
            OverloadReason::RequestTooLarge => 2,
            OverloadReason::ShuttingDown => 3,
        }
    }
}

impl std::fmt::Display for OverloadReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One admitted request, as handed to a worker by [`FairQueue::pop`].
#[derive(Debug)]
pub struct Admitted<T> {
    /// The submitting tenant.
    pub tenant: String,
    /// Payload bytes charged against the in-flight budget; the worker
    /// must hand them back via [`FairQueue::complete`] when done.
    pub bytes: usize,
    /// The request itself.
    pub item: T,
}

/// Queue bookkeeping behind the [`FairQueue`] mutex.
#[derive(Debug)]
struct QueueState<T> {
    /// Per-tenant FIFO of `(payload bytes, request)`. Tenants with empty
    /// queues are removed, so the map's keys are exactly the tenants with
    /// waiting work.
    queues: BTreeMap<String, VecDeque<(usize, T)>>,
    /// The tenant served last; the next pop starts strictly after it (in
    /// key order, wrapping), which is what makes the rotation fair.
    cursor: Option<String>,
    /// Requests queued and not yet popped.
    queued: usize,
    /// Payload bytes admitted (queued or running) and not yet completed.
    inflight_bytes: usize,
    /// Whether [`FairQueue::begin_drain`] was called.
    draining: bool,
}

/// A bounded, multi-tenant, round-robin request queue — the server's
/// admission-control and fairness core. See the module docs.
#[derive(Debug)]
pub struct FairQueue<T> {
    limits: ServeLimits,
    state: Mutex<QueueState<T>>,
    cond: Condvar,
}

impl<T> FairQueue<T> {
    /// An empty queue enforcing `limits`.
    pub fn new(limits: ServeLimits) -> FairQueue<T> {
        FairQueue {
            limits,
            state: Mutex::new(QueueState {
                queues: BTreeMap::new(),
                cursor: None,
                queued: 0,
                inflight_bytes: 0,
                draining: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// The limits this queue enforces.
    pub fn limits(&self) -> &ServeLimits {
        &self.limits
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Submits a request for `tenant` carrying `bytes` of payload.
    ///
    /// # Errors
    ///
    /// A typed [`OverloadReason`] when the request must be shed; the
    /// request is returned untouched inside the error so the caller can
    /// report it without cloning. Rejection is the *only* backpressure
    /// mechanism — submit never blocks, so the caller's thread is free to
    /// write the overload response immediately.
    pub fn submit(&self, tenant: &str, bytes: usize, item: T) -> Result<(), (OverloadReason, T)> {
        if bytes > self.limits.max_request_bytes {
            return Err((OverloadReason::RequestTooLarge, item));
        }
        let mut state = self.lock();
        if state.draining {
            return Err((OverloadReason::ShuttingDown, item));
        }
        if state.inflight_bytes.saturating_add(bytes) > self.limits.max_inflight_bytes {
            return Err((OverloadReason::InflightBytes, item));
        }
        let queue = state.queues.entry(tenant.to_string()).or_default();
        if queue.len() >= self.limits.queue_depth {
            // The freshly inserted empty queue (if any) is harmless: it
            // only happens when queue_depth == 0, which validated()
            // rejects.
            return Err((OverloadReason::QueueFull, item));
        }
        queue.push_back((bytes, item));
        state.queued += 1;
        state.inflight_bytes += bytes;
        drop(state);
        self.cond.notify_one();
        Ok(())
    }

    /// Picks the next tenant after the cursor (in key order, wrapping)
    /// and pops the head of its queue.
    fn pop_locked(state: &mut QueueState<T>) -> Option<Admitted<T>> {
        let tenant = {
            let after = state.cursor.as_deref().unwrap_or("");
            state
                .queues
                .range::<str, _>((std::ops::Bound::Excluded(after), std::ops::Bound::Unbounded))
                .next()
                .or_else(|| state.queues.iter().next())
                .map(|(k, _)| k.clone())?
        };
        let queue = state.queues.get_mut(&tenant).expect("tenant key exists");
        let (bytes, item) = queue.pop_front().expect("non-empty queues only");
        if queue.is_empty() {
            state.queues.remove(&tenant);
        }
        state.queued -= 1;
        state.cursor = Some(tenant.clone());
        Some(Admitted {
            tenant,
            bytes,
            item,
        })
    }

    /// Blocks until a request is available and pops it fairly, or returns
    /// `None` once the queue is draining *and* empty — the worker's exit
    /// signal.
    pub fn pop(&self) -> Option<Admitted<T>> {
        let mut state = self.lock();
        loop {
            if let Some(admitted) = Self::pop_locked(&mut state) {
                return Some(admitted);
            }
            if state.draining {
                return None;
            }
            state = self
                .cond
                .wait_timeout(state, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Non-blocking [`pop`](Self::pop): `None` when nothing is queued
    /// (regardless of drain state).
    pub fn try_pop(&self) -> Option<Admitted<T>> {
        Self::pop_locked(&mut self.lock())
    }

    /// Returns `bytes` of payload to the in-flight budget once a popped
    /// request has been fully processed (responded, cancelled, or
    /// failed).
    pub fn complete(&self, bytes: usize) {
        let mut state = self.lock();
        state.inflight_bytes = state.inflight_bytes.saturating_sub(bytes);
    }

    /// Switches to drain mode: every later [`submit`](Self::submit) fails
    /// with [`OverloadReason::ShuttingDown`]; queued requests still flow
    /// to workers; [`pop`](Self::pop) returns `None` once empty. Wakes
    /// every waiting worker.
    pub fn begin_drain(&self) {
        self.lock().draining = true;
        self.cond.notify_all();
    }

    /// Whether [`begin_drain`](Self::begin_drain) was called.
    pub fn draining(&self) -> bool {
        self.lock().draining
    }

    /// Requests queued and not yet handed to a worker.
    pub fn queued(&self) -> usize {
        self.lock().queued
    }

    /// Payload bytes admitted (queued or running) and not yet completed.
    pub fn inflight_bytes(&self) -> usize {
        self.lock().inflight_bytes
    }

    /// Current queue depth per tenant (only tenants with waiting work).
    pub fn depths(&self) -> Vec<(String, usize)> {
        self.lock()
            .queues
            .iter()
            .map(|(tenant, q)| (tenant.clone(), q.len()))
            .collect()
    }
}

/// Upper bucket bounds of the request-latency histogram, in microseconds
/// (a final implicit `+Inf` bucket catches the rest).
pub const LATENCY_BUCKETS_US: [u64; 12] = [
    250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000, 5_000_000,
];

/// A fixed-bucket latency histogram in Prometheus cumulative style.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    /// Per-bucket observation counts (non-cumulative; cumulated at render
    /// time). The last slot is the `+Inf` bucket.
    buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    /// Sum of all observations, in microseconds.
    sum_micros: AtomicU64,
    /// Number of observations.
    count: AtomicU64,
}

impl LatencyHistogram {
    /// Records one request latency.
    pub fn observe(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let slot = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Appends the histogram as Prometheus text under `name`.
    fn render(&self, out: &mut String, name: &str) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                bound as f64 / 1e6
            );
        }
        cumulative += self.buckets[LATENCY_BUCKETS_US.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(
            out,
            "{name}_sum {}",
            self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
        );
        let _ = writeln!(out, "{name}_count {}", self.count.load(Ordering::Relaxed));
    }
}

/// The server's counter registry, rendered by `/metrics`.
///
/// Counters are atomics (touched concurrently by connection and seeding
/// workers); the accumulated [`SeedingStats`] — recovery counters plus
/// the per-stage wall-clock profile — sits behind a mutex and is merged
/// once per completed request, off the per-tile hot path.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests admitted by the queue.
    accepted: AtomicU64,
    /// Requests completed with a success response.
    completed: AtomicU64,
    /// Requests cancelled before completion (client disconnect, request
    /// deadline, or drain-deadline cut-off).
    cancelled: AtomicU64,
    /// Success responses served in degraded mode (≥ 1 partition
    /// quarantined to the golden model).
    degraded: AtomicU64,
    /// Requests shed at admission, by [`OverloadReason::index`].
    rejected: [AtomicU64; 4],
    /// End-to-end request latency (admission to response write).
    latency: LatencyHistogram,
    /// Seeding activity accumulated across all completed requests.
    seeding: Mutex<SeedingStats>,
}

impl ServeMetrics {
    /// A zeroed registry.
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Counts an admitted request.
    pub fn record_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request shed at admission.
    pub fn record_rejected(&self, reason: OverloadReason) {
        self.rejected[reason.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a completed request: its latency, its seeding activity, and
    /// whether the response was served degraded.
    pub fn record_completed(&self, latency: Duration, stats: &SeedingStats, degraded: bool) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.observe(latency);
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
        self.seeding
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .merge(stats);
    }

    /// Counts a cancelled request.
    pub fn record_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests admitted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Requests cancelled so far.
    pub fn cancelled(&self) -> u64 {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Requests shed for `reason` so far.
    pub fn rejected(&self, reason: OverloadReason) -> u64 {
        self.rejected[reason.index()].load(Ordering::Relaxed)
    }

    /// Requests shed so far, across every reason.
    pub fn rejected_total(&self) -> u64 {
        self.rejected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// A snapshot of the accumulated seeding statistics.
    pub fn seeding_stats(&self) -> SeedingStats {
        *self.seeding.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Renders the Prometheus text exposition: admission counters, the
    /// latency histogram, the accumulated recovery counters and stage
    /// profile, plus caller-supplied point-in-time `gauges` (queue
    /// depths, in-flight bytes, quarantined partitions, live guard
    /// threads — state the registry itself cannot see).
    pub fn render_prometheus(&self, gauges: &[(&str, f64)]) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, value: u64| {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter("casa_requests_accepted_total", self.accepted());
        counter("casa_requests_completed_total", self.completed());
        counter("casa_requests_cancelled_total", self.cancelled());
        counter(
            "casa_responses_degraded_total",
            self.degraded.load(Ordering::Relaxed),
        );
        let _ = writeln!(out, "# TYPE casa_requests_rejected_total counter");
        for reason in OverloadReason::ALL {
            let _ = writeln!(
                out,
                "casa_requests_rejected_total{{reason=\"{reason}\"}} {}",
                self.rejected(reason)
            );
        }
        self.latency.render(&mut out, "casa_request_seconds");

        let stats = self.seeding_stats();
        let mut counter = |name: &str, value: u64| {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter("casa_read_passes_total", stats.read_passes);
        counter("casa_smems_reported_total", stats.smems_reported);
        counter("casa_tile_retries_total", stats.tile_retries);
        counter("casa_deadline_stalls_total", stats.deadline_stalls);
        counter(
            "casa_partitions_quarantined_total",
            stats.partitions_quarantined,
        );
        counter("casa_fallback_read_passes_total", stats.fallback_reads);
        counter("casa_crosscheck_reads_total", stats.crosscheck_reads);
        counter(
            "casa_crosscheck_mismatches_total",
            stats.crosscheck_mismatches,
        );
        let _ = writeln!(out, "# TYPE casa_stage_nanos_total counter");
        for stage in Stage::ALL {
            let _ = writeln!(
                out,
                "casa_stage_nanos_total{{stage=\"{stage}\"}} {}",
                stats.profile.nanos(stage)
            );
        }
        for (name, value) in gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn limits(depth: usize, inflight: usize, request: usize) -> ServeLimits {
        ServeLimits {
            queue_depth: depth,
            max_inflight_bytes: inflight,
            max_request_bytes: request,
        }
    }

    #[test]
    fn limits_validation_rejects_degenerate_bounds() {
        assert!(ServeLimits::default().validated().is_ok());
        for bad in [
            limits(0, 100, 10),
            limits(1, 100, 0),
            limits(1, 10, 100), // inflight < request
        ] {
            assert!(matches!(
                bad.validated(),
                Err(crate::ConfigError::BadStreamConfig { .. })
            ));
        }
    }

    #[test]
    fn admission_rejects_each_limit_with_its_reason() {
        let q: FairQueue<u32> = FairQueue::new(limits(2, 100, 40));
        // Oversized single request.
        assert_eq!(
            q.submit("a", 41, 0).unwrap_err().0,
            OverloadReason::RequestTooLarge
        );
        assert!(!OverloadReason::RequestTooLarge.retriable());
        // Per-tenant depth.
        q.submit("a", 10, 1).unwrap();
        q.submit("a", 10, 2).unwrap();
        assert_eq!(
            q.submit("a", 10, 3).unwrap_err().0,
            OverloadReason::QueueFull
        );
        // Another tenant is still admissible.
        q.submit("b", 10, 4).unwrap();
        // Global in-flight bytes (30 used, 40 more would exceed 100... use
        // a third tenant to dodge the depth limit).
        q.submit("c", 40, 5).unwrap();
        assert_eq!(
            q.submit("d", 40, 6).unwrap_err().0,
            OverloadReason::InflightBytes
        );
        assert_eq!(q.queued(), 4);
        assert_eq!(q.inflight_bytes(), 70);
        // Completion hands bytes back.
        let popped = q.pop().unwrap();
        q.complete(popped.bytes);
        assert_eq!(q.inflight_bytes(), 70 - popped.bytes);
    }

    #[test]
    fn pop_rotates_fairly_across_tenants() {
        let q: FairQueue<u32> = FairQueue::new(limits(8, 1 << 20, 1 << 10));
        // A heavy tenant floods its queue; two light tenants submit one
        // request each.
        for i in 0..6 {
            q.submit("heavy", 1, i).unwrap();
        }
        q.submit("light1", 1, 100).unwrap();
        q.submit("light2", 1, 200).unwrap();
        let order: Vec<String> = std::iter::from_fn(|| q.try_pop().map(|a| a.tenant))
            .take(4)
            .collect();
        // Round-robin: every tenant appears within the first k slots.
        assert!(order.contains(&"heavy".to_string()));
        assert!(order.contains(&"light1".to_string()));
        assert!(order.contains(&"light2".to_string()));
        // And the rotation keeps cycling back to the heavy tenant (the
        // first four slots served it twice: heavy, light1, light2, heavy).
        let rest: Vec<String> = std::iter::from_fn(|| q.try_pop().map(|a| a.tenant)).collect();
        assert_eq!(rest, vec!["heavy"; 4]);
        assert_eq!(q.queued(), 0);
    }

    #[test]
    fn fifo_order_is_preserved_within_a_tenant() {
        let q: FairQueue<u32> = FairQueue::new(limits(8, 1 << 20, 1 << 10));
        for i in 0..5 {
            q.submit("t", 1, i).unwrap();
        }
        let items: Vec<u32> = std::iter::from_fn(|| q.try_pop().map(|a| a.item)).collect();
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drain_rejects_new_work_but_flushes_queued_work() {
        let q: FairQueue<u32> = FairQueue::new(limits(8, 1 << 20, 1 << 10));
        q.submit("t", 1, 1).unwrap();
        q.begin_drain();
        assert!(q.draining());
        assert_eq!(
            q.submit("t", 1, 2).unwrap_err().0,
            OverloadReason::ShuttingDown
        );
        // The queued request still flows out, then pop signals exit.
        assert_eq!(q.pop().map(|a| a.item), Some(1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn blocking_pop_wakes_on_submit_and_on_drain() {
        let q: Arc<FairQueue<u32>> = Arc::new(FairQueue::new(limits(8, 1 << 20, 1 << 10)));
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let first = q.pop().map(|a| a.item);
                let second = q.pop().map(|a| a.item);
                (first, second)
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        q.submit("t", 1, 7).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        q.begin_drain();
        let (first, second) = worker.join().unwrap();
        assert_eq!(first, Some(7));
        assert_eq!(second, None);
    }

    #[test]
    fn depths_snapshot_lists_only_waiting_tenants() {
        let q: FairQueue<u32> = FairQueue::new(limits(8, 1 << 20, 1 << 10));
        q.submit("a", 1, 1).unwrap();
        q.submit("a", 1, 2).unwrap();
        q.submit("b", 1, 3).unwrap();
        assert_eq!(q.depths(), vec![("a".to_string(), 2), ("b".to_string(), 1)]);
        while q.try_pop().is_some() {}
        assert!(q.depths().is_empty());
    }

    #[test]
    fn histogram_buckets_cumulate_and_render() {
        let h = LatencyHistogram::default();
        h.observe(Duration::from_micros(100)); // first bucket (<= 250us)
        h.observe(Duration::from_micros(300)); // second bucket
        h.observe(Duration::from_secs(60)); // +Inf
        assert_eq!(h.count(), 3);
        let mut out = String::new();
        h.render(&mut out, "t");
        assert!(out.contains("t_bucket{le=\"0.00025\"} 1"));
        assert!(out.contains("t_bucket{le=\"0.0005\"} 2"));
        assert!(out.contains("t_bucket{le=\"+Inf\"} 3"));
        assert!(out.contains("t_count 3"));
    }

    #[test]
    fn metrics_render_prometheus_text() {
        let m = ServeMetrics::new();
        m.record_accepted();
        m.record_accepted();
        m.record_rejected(OverloadReason::QueueFull);
        m.record_cancelled();
        let stats = SeedingStats {
            read_passes: 12,
            smems_reported: 34,
            tile_retries: 2,
            deadline_stalls: 1,
            ..SeedingStats::default()
        };
        m.record_completed(Duration::from_millis(3), &stats, true);
        assert_eq!(m.accepted(), 2);
        assert_eq!(m.completed(), 1);
        assert_eq!(m.rejected_total(), 1);
        assert_eq!(m.cancelled(), 1);
        let text = m.render_prometheus(&[("casa_queue_depth", 4.0)]);
        assert!(text.contains("casa_requests_accepted_total 2"));
        assert!(text.contains("casa_requests_rejected_total{reason=\"queue_full\"} 1"));
        assert!(text.contains("casa_requests_rejected_total{reason=\"shutting_down\"} 0"));
        assert!(text.contains("casa_responses_degraded_total 1"));
        assert!(text.contains("casa_read_passes_total 12"));
        assert!(text.contains("casa_smems_reported_total 34"));
        assert!(text.contains("casa_tile_retries_total 2"));
        assert!(text.contains("casa_deadline_stalls_total 1"));
        assert!(text.contains("casa_stage_nanos_total{stage=\"filter_lookup\"} 0"));
        assert!(text.contains("casa_request_seconds_count 1"));
        assert!(text.contains("casa_queue_depth 4"));
        // Every exposed family is typed.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            let base = name
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            assert!(
                text.contains(&format!("# TYPE {base} "))
                    || text.contains(&format!("# TYPE {name} ")),
                "untyped metric {name}"
            );
        }
    }
}
