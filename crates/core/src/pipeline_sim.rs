//! Event-level simulation of CASA's three-stage pipeline (paper Fig. 9).
//!
//! The aggregate timing model in [`crate::CasaRun::seconds`] takes the max
//! of per-stage totals, which is exact only when the FIFO between
//! pre-seeding and SMEM computing never runs dry or full. This module
//! simulates the pipeline read by read — read fetch → pre-seeding filter
//! (multi-banked) → 512-entry FIFO → `lanes` SMEM-computing CAMs — and
//! reports total cycles plus FIFO occupancy statistics, validating the
//! aggregate model and exposing where the bottleneck sits.

use serde::{Deserialize, Serialize};

use crate::CasaConfig;

/// Per-read work observed by the pipeline: pre-seeding filter operations
/// and computing-stage cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadWork {
    /// Filter operations (lookups + data reads) for this read.
    pub filter_ops: u64,
    /// SMEM-computing cycles for this read.
    pub computing_cycles: u64,
}

/// Result of an event-level pipeline simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineSimResult {
    /// Total cycles until the last read drains.
    pub total_cycles: u64,
    /// Cycles during which the FIFO was full (pre-seeding stalled).
    pub fifo_full_cycles: u64,
    /// Cycles during which at least one lane idled on an empty FIFO after
    /// start-up.
    pub lane_starved_cycles: u64,
    /// Maximum FIFO occupancy observed.
    pub fifo_peak: usize,
    /// Reads simulated.
    pub reads: u64,
}

impl PipelineSimResult {
    /// Simulated wall-clock seconds at the given clock.
    pub fn seconds(&self, clock_hz: f64) -> f64 {
        self.total_cycles as f64 / clock_hz
    }

    /// Which stage bounded the run.
    pub fn bottleneck(&self) -> Bottleneck {
        if self.fifo_full_cycles > self.lane_starved_cycles {
            Bottleneck::Computing
        } else {
            Bottleneck::PreSeeding
        }
    }
}

/// The stage limiting pipeline throughput.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// The pre-seeding filter could not keep the FIFO non-empty.
    PreSeeding,
    /// The computing CAMs could not drain the FIFO.
    Computing,
}

/// Simulates the pipeline over a stream of per-read work descriptors.
///
/// Pre-seeding processes one read at a time at `filter_banks` operations
/// per cycle and pushes it into the FIFO; each of `config.lanes` computing
/// CAMs pops a read and services it for its `computing_cycles`. Per the
/// paper, the FIFO "allows read and write in parallel".
///
/// # Panics
///
/// Panics if `config.fifo_depth == 0`.
pub fn simulate(config: &CasaConfig, work: &[ReadWork]) -> PipelineSimResult {
    assert!(config.fifo_depth > 0, "FIFO must have capacity");
    let banks = config.filter_banks as u64;
    let mut result = PipelineSimResult {
        reads: work.len() as u64,
        ..PipelineSimResult::default()
    };
    if work.is_empty() {
        return result;
    }

    // Next index to pre-seed / to pop.
    let mut produced = 0usize;
    let mut consumed = 0usize;
    // Cycle at which the pre-seeder finishes the read it is working on.
    let mut pre_busy_until = 0u64;
    // Per-lane busy-until cycles.
    let mut lanes = vec![0u64; config.lanes];
    // FIFO holds (ready_cycle) of produced-but-unconsumed reads.
    let mut fifo: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
    let mut clock = 0u64;
    let mut last_event = 0u64;

    while consumed < work.len() {
        // Produce if there is room (stall the filter otherwise).
        if produced < work.len() && fifo.len() < config.fifo_depth && pre_busy_until <= clock {
            let ops = work[produced].filter_ops;
            let cycles = ops.div_ceil(banks).max(1);
            pre_busy_until = clock + cycles;
            fifo.push_back(pre_busy_until);
            result.fifo_peak = result.fifo_peak.max(fifo.len());
            produced += 1;
        } else if produced < work.len() && fifo.len() >= config.fifo_depth {
            result.fifo_full_cycles += 1;
        }

        // Dispatch ready reads to idle lanes.
        for lane in &mut lanes {
            if *lane <= clock {
                if let Some(&ready) = fifo.front() {
                    if ready <= clock {
                        fifo.pop_front();
                        let service = work[consumed].computing_cycles.max(1);
                        *lane = clock + service;
                        consumed += 1;
                        last_event = last_event.max(*lane);
                        continue;
                    }
                }
                if produced > config.lanes {
                    // Past start-up: an idle lane means starvation.
                    result.lane_starved_cycles += 1;
                }
            }
        }
        clock += 1;
        // Fast-forward across long quiet stretches.
        if fifo.is_empty() && produced < work.len() && pre_busy_until > clock {
            result.lane_starved_cycles += pre_busy_until - clock;
            clock = pre_busy_until;
        }
    }
    result.total_cycles = last_event.max(clock);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(lanes: usize, banks: usize, fifo: usize) -> CasaConfig {
        let mut c = CasaConfig::paper(10_000, 101);
        c.lanes = lanes;
        c.filter_banks = banks;
        c.fifo_depth = fifo;
        c
    }

    fn uniform(n: usize, filter_ops: u64, computing: u64) -> Vec<ReadWork> {
        vec![
            ReadWork {
                filter_ops,
                computing_cycles: computing,
            };
            n
        ]
    }

    #[test]
    fn empty_stream_is_zero() {
        let r = simulate(&config(4, 8, 16), &[]);
        assert_eq!(r, PipelineSimResult::default());
    }

    #[test]
    fn compute_bound_stream_is_fifo_full() {
        // Heavy computing, trivial filtering: the FIFO backs up.
        let cfg = config(2, 128, 8);
        let r = simulate(&cfg, &uniform(200, 8, 50));
        assert_eq!(r.bottleneck(), Bottleneck::Computing);
        // Steady state: 200 reads x 50 cycles over 2 lanes = 5000.
        let ideal = 200 * 50 / 2;
        assert!(
            (r.total_cycles as f64) < ideal as f64 * 1.2,
            "total {} should be near ideal {ideal}",
            r.total_cycles
        );
        assert!(r.total_cycles >= ideal as u64);
        assert!(r.fifo_peak >= 7);
    }

    #[test]
    fn filter_bound_stream_starves_lanes() {
        // Heavy filtering, trivial computing: lanes starve.
        let cfg = config(8, 4, 64);
        let r = simulate(&cfg, &uniform(100, 400, 1));
        assert_eq!(r.bottleneck(), Bottleneck::PreSeeding);
        // Steady state: 100 reads x 100 pre-cycles serialized.
        let ideal = 100 * (400 / 4);
        assert!(r.total_cycles >= ideal as u64);
        assert!((r.total_cycles as f64) < ideal as f64 * 1.2);
    }

    #[test]
    fn matches_aggregate_model_for_balanced_load() {
        // When stages are balanced, the event sim should land close to the
        // aggregate max(stage totals) model.
        let cfg = config(4, 16, 32);
        let work = uniform(300, 64, 16); // pre: 4 cyc/read; comp: 16/4 = 4
        let r = simulate(&cfg, &work);
        let aggregate_pre: u64 = 300 * (64 / 16);
        let aggregate_comp: u64 = 300 * 16 / 4;
        let aggregate = aggregate_pre.max(aggregate_comp);
        let ratio = r.total_cycles as f64 / aggregate as f64;
        assert!(
            (0.9..=1.5).contains(&ratio),
            "event sim {} vs aggregate {aggregate} (ratio {ratio:.2})",
            r.total_cycles
        );
    }

    #[test]
    fn deeper_fifo_never_hurts() {
        let work: Vec<ReadWork> = (0..150)
            .map(|i| ReadWork {
                filter_ops: if i % 7 == 0 { 600 } else { 30 },
                computing_cycles: if i % 5 == 0 { 80 } else { 4 },
            })
            .collect();
        let shallow = simulate(&config(4, 16, 2), &work);
        let deep = simulate(&config(4, 16, 256), &work);
        assert!(deep.total_cycles <= shallow.total_cycles);
    }

    #[test]
    fn single_lane_serializes() {
        let cfg = config(1, 128, 512);
        let r = simulate(&cfg, &uniform(50, 1, 10));
        assert!(r.total_cycles >= 500);
        assert_eq!(r.reads, 50);
    }
}
