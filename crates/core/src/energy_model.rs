//! Converts CASA activity counts into the paper's energy/power/area
//! quantities (Table 4, Fig. 13).
//!
//! The hardware model is fixed at the published design point (45 MB filter,
//! ten 1 MB computing CAMs, synthesized controllers) regardless of the
//! simulated workload scale: leakage and area are properties of the chip,
//! while dynamic power follows the simulated activity rate.

use casa_energy::circuits::{MacroSpec, BCAM_256X72, BCAM_256X80, SRAM_256X24, SRAM_256X60};
use casa_energy::{AreaReport, DramSystem, EnergyLedger, PowerReport};
use serde::{Deserialize, Serialize};

use crate::accelerator::CasaRun;
use crate::stats::SeedingStats;

/// Physical design point of the CASA chip (defaults = paper Fig. 11 /
/// Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CasaHardwareModel {
    /// Mini index table capacity in bytes (paper: 6 MB of 256×24 SRAM).
    pub mini_index_bytes: u64,
    /// Tag array capacity in bytes (paper: 9 MB of 256×72 BCAM).
    pub tag_bytes: u64,
    /// Data array capacity in bytes (paper: 30 MB of 256×60 SRAM).
    pub data_bytes: u64,
    /// Computing CAM capacity in bytes (paper: ten 1 MB CAMs).
    pub cam_bytes: u64,
    /// Pre-seeding controller power in watts (paper Table 4: 4.102 W) and
    /// area in mm² (13.764).
    pub pre_ctrl: (f64, f64),
    /// Computing controllers total power in watts (0.354) and area in mm²
    /// (4.049).
    pub comp_ctrl: (f64, f64),
}

impl Default for CasaHardwareModel {
    fn default() -> CasaHardwareModel {
        let mb = 1u64 << 20;
        CasaHardwareModel {
            mini_index_bytes: 6 * mb,
            tag_bytes: 9 * mb,
            data_bytes: 30 * mb,
            cam_bytes: 10 * mb,
            pre_ctrl: (4.102, 13.764),
            comp_ctrl: (0.354, 4.049),
        }
    }
}

impl CasaHardwareModel {
    /// Controller power (always-on while seeding), watts.
    pub fn controller_power_w(&self) -> f64 {
        self.pre_ctrl.0 + self.comp_ctrl.0
    }

    /// Total on-chip memory leakage, watts.
    pub fn memory_leakage_w(&self) -> f64 {
        leakage(&SRAM_256X24, self.mini_index_bytes)
            + leakage(&BCAM_256X72, self.tag_bytes)
            + leakage(&SRAM_256X60, self.data_bytes)
            + leakage(&BCAM_256X80, self.cam_bytes)
    }

    /// Table-4-style area breakdown.
    pub fn area_report(&self, dram_power_w: f64, phy_power_w: f64) -> AreaReport {
        let mut rep = AreaReport::default();
        rep.push(
            "Pre-seeding controller",
            Some(self.pre_ctrl.1),
            self.pre_ctrl.0,
        );
        rep.push(
            "Computing controllers (total)",
            Some(self.comp_ctrl.1),
            self.comp_ctrl.0,
        );
        let filter_area = SRAM_256X24.area_mm2_for_bytes(self.mini_index_bytes)
            + BCAM_256X72.area_mm2_for_bytes(self.tag_bytes)
            + SRAM_256X60.area_mm2_for_bytes(self.data_bytes);
        rep.push(
            "Pre-seeding filter table (45MB)",
            Some(filter_area),
            f64::NAN,
        );
        rep.push(
            "Computing CAMs (10MB)",
            Some(BCAM_256X80.area_mm2_for_bytes(self.cam_bytes)),
            f64::NAN,
        );
        rep.push("DDR4 (total)", None, dram_power_w);
        rep.push("DRAM controller PHY", None, phy_power_w);
        rep
    }
}

fn leakage(spec: &MacroSpec, bytes: u64) -> f64 {
    spec.macros_for_bytes(bytes) as f64 * spec.leakage_watts()
}

/// Builds the dynamic-energy ledger for a run's activity counts.
///
/// Energy attribution (paper §5 layout):
/// * mini index read → two 256×24 SRAM banks (48-bit entry);
/// * tag search → physical 72-bit rows activated (the §5 packing shares
///   sense amplifiers for *area*; small buckets still activate one
///   physical row per logical row, "at the expense of search energy"),
///   at the per-row share of a full-array search;
/// * data read → one 256×60 SRAM access;
/// * computing CAM → enabled rows at the per-row share of a 256×80 array
///   search.
pub fn dynamic_ledger(stats: &SeedingStats) -> EnergyLedger {
    let mut ledger = EnergyLedger::new();
    ledger.record_energy(
        "mini_index",
        stats.filter.mini_index_reads,
        stats.filter.mini_index_reads as f64 * 2.0 * SRAM_256X24.energy_pj,
    );
    ledger.record_energy(
        "tag_array",
        stats.filter.tag_searches,
        stats.filter.tag_physical_rows as f64 * BCAM_256X72.energy_pj / 256.0,
    );
    ledger.record_energy(
        "data_array",
        stats.filter.data_reads,
        stats.filter.data_reads as f64 * SRAM_256X60.energy_pj,
    );
    ledger.record_energy(
        "computing_cam",
        stats.cam.searches,
        stats.cam.rows_enabled as f64 * BCAM_256X80.energy_pj / 256.0,
    );
    ledger
}

/// Full power report for a CASA run on the given hardware/DRAM models.
pub fn power_report(
    run: &CasaRun,
    hw: &CasaHardwareModel,
    dram: &DramSystem,
    partition_count: usize,
) -> PowerReport {
    let seconds = run.seconds(dram);
    let mut ledger = dynamic_ledger(&run.stats);
    // Controllers burn constant power while the pipeline runs.
    ledger.record_energy(
        "controllers",
        run.stats.computing_cycles,
        hw.controller_power_w() * seconds * 1e12,
    );
    ledger.set_leakage("memories", hw.memory_leakage_w());
    PowerReport::from_run(
        "CASA",
        &ledger,
        dram,
        run.stats.dram_bytes,
        seconds,
        run.reads(partition_count),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CasaAccelerator, CasaConfig};
    use casa_genome::synth::{generate_reference, ReferenceProfile};
    use casa_genome::{PackedSeq, ReadSimConfig, ReadSimulator};

    #[test]
    fn hardware_model_reproduces_table4_areas() {
        let hw = CasaHardwareModel::default();
        let rep = hw.area_report(3.604, 1.798);
        // Paper total: 296.553 mm². Controllers are taken verbatim; the
        // memory areas are rebuilt from Table 3 macros, so allow 5 %.
        let total = rep.total_area_mm2();
        assert!(
            (total - 296.553).abs() / 296.553 < 0.05,
            "total area {total:.1} vs paper 296.553"
        );
    }

    #[test]
    fn leakage_is_sub_watt_scale() {
        let w = CasaHardwareModel::default().memory_leakage_w();
        assert!(w > 0.01 && w < 5.0, "leakage {w}");
    }

    #[test]
    fn run_report_end_to_end() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 3_000, 2);
        let casa =
            CasaAccelerator::new(&reference, CasaConfig::small(1_500)).expect("valid config");
        let sim = ReadSimulator::new(
            ReadSimConfig {
                read_len: 40,
                ..ReadSimConfig::default()
            },
            1,
        );
        let reads: Vec<PackedSeq> = sim
            .simulate(&reference, 30)
            .into_iter()
            .map(|r| r.seq)
            .collect();
        let run = casa.seed_reads(&reads);
        let rep = power_report(
            &run,
            &CasaHardwareModel::default(),
            &DramSystem::casa(),
            casa.partition_count(),
        );
        assert!(rep.total_w() > rep.onchip_dynamic_w);
        assert!(rep.reads_per_mj() > 0.0);
        assert_eq!(rep.reads, 30);
        // Controllers dominate a tiny workload's on-chip power.
        assert!(rep.onchip_w() >= CasaHardwareModel::default().controller_power_w() * 0.99);
    }

    #[test]
    fn dynamic_ledger_tracks_stats() {
        let mut stats = SeedingStats::default();
        stats.filter.mini_index_reads = 10;
        stats.filter.tag_rows_enabled = 1024;
        stats.filter.tag_physical_rows = 1024;
        stats.filter.data_reads = 4;
        stats.cam.rows_enabled = 512;
        stats.cam.searches = 2;
        let ledger = dynamic_ledger(&stats);
        assert!((ledger.activity("mini_index").energy_pj - 10.0 * 2.0 * 2.33).abs() < 1e-9);
        assert!((ledger.activity("tag_array").energy_pj - 1024.0 * 17.6 / 256.0).abs() < 1e-9);
        assert!((ledger.activity("data_array").energy_pj - 4.0 * 4.89).abs() < 1e-9);
        let cam80 = BCAM_256X80.energy_pj;
        assert!((ledger.activity("computing_cam").energy_pj - 512.0 * cam80 / 256.0).abs() < 1e-6);
    }
}
