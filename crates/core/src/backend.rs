//! Pluggable seeding backends behind one object-safe trait.
//!
//! The repo carries three complete seeding substrates — the bit-parallel
//! CAM simulator ([`PartitionEngine`]), the FM-index golden model
//! ([`casa_index::bifm`]), and the enumerated radix trees of
//! [`casa_index::ert`] (the index the ASIC-ERT baseline of
//! `casa-baselines::ert_model` costs out). [`SeedingBackend`] makes "which
//! seeder" a runtime choice instead of a fork of the call graph: a
//! [`SeedingSession`](crate::SeedingSession) drives one boxed backend per
//! reference partition and everything above it (scheduling, fault
//! recovery, merging, the CLI, the streaming runtime) is backend-agnostic.
//!
//! The dispatch shape follows the `casa_cam::kernel` fn-table design:
//! backends are named by a small enum ([`BackendKind`]), selected per
//! process via the [`CASA_BACKEND`](BACKEND_ENV) environment variable or
//! per session via an explicit constructor, and unknown names surface as a
//! typed error ([`UnknownBackendError`] →
//! [`ConfigError::UnknownSeedingBackend`](crate::ConfigError)) rather than
//! a panic.
//!
//! # Equivalence contract
//!
//! Every backend must produce the **identical SMEM set** for any
//! (partition, read) pair — bit-identical `read_start`/`read_end`/`hits`,
//! in the same order — because the session's golden cross-check, the
//! quarantine fallback, and the cross-partition merge all assume it. The
//! CAM path is proven equal to the golden unidirectional algorithm by the
//! `casa_equals_golden_*` tests; [`FmBackend`] runs the bidirectional
//! BWA-MEM2 algorithm (cross-checked equal in `casa-index`); and
//! [`ErtBackend`]'s per-pivot tree walk reproduces the suffix-array
//! longest match exactly (see the containment argument on
//! [`ErtBackend::seed_read_into`]). Only the *activity statistics* differ:
//! non-CAM backends have no filter banks or CAM arrays, so those counters
//! stay zero and CASA's cycle model does not apply to them.

use casa_genome::PackedSeq;
use casa_index::smem::smems_bidirectional;
use casa_index::{BiFmIndex, ErtIndex, Smem};

use crate::engine::PartitionEngine;
use crate::error::ConfigError;
use crate::stats::SeedingStats;
use crate::CasaConfig;

/// Environment variable that selects the seeding backend
/// (`cam` | `fm` | `ert`) for sessions that are not given one explicitly.
pub const BACKEND_ENV: &str = "CASA_BACKEND";

/// A selectable seeding substrate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The CASA accelerator model itself: pre-seeding filter + computing
    /// CAMs (the default, and the only backend with a hardware cost
    /// model).
    Cam,
    /// The FM-index golden model: BWA-MEM2's bidirectional SMEM algorithm
    /// on a [`BiFmIndex`] per partition.
    Fm,
    /// The enumerated-radix-tree model: per-pivot [`ErtIndex`] walks, the
    /// software twin of the ASIC-ERT baseline in `casa-baselines`.
    Ert,
}

/// Error returned when a seeding backend name cannot be honoured.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownBackendError {
    /// The offending backend name as given.
    pub value: String,
    /// Why it was rejected.
    pub reason: &'static str,
}

impl std::fmt::Display for UnknownBackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown seeding backend {:?}: {} (expected one of: cam, fm, ert)",
            self.value, self.reason
        )
    }
}

impl std::error::Error for UnknownBackendError {}

impl BackendKind {
    /// Every backend, in presentation order (`cam` first: the accelerator
    /// the repo is about).
    pub const ALL: [BackendKind; 3] = [BackendKind::Cam, BackendKind::Fm, BackendKind::Ert];

    /// The backend's canonical lowercase name (what
    /// [`CASA_BACKEND`](BACKEND_ENV) and `--backend` accept).
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Cam => "cam",
            BackendKind::Fm => "fm",
            BackendKind::Ert => "ert",
        }
    }

    /// Parses a backend name.
    ///
    /// # Errors
    ///
    /// Returns a typed [`UnknownBackendError`] for anything other than
    /// `cam`, `fm`, or `ert`.
    pub fn parse(s: &str) -> Result<BackendKind, UnknownBackendError> {
        match s {
            "cam" => Ok(BackendKind::Cam),
            "fm" => Ok(BackendKind::Fm),
            "ert" => Ok(BackendKind::Ert),
            _ => Err(UnknownBackendError {
                value: s.to_owned(),
                reason: "no such backend",
            }),
        }
    }

    /// The backend requested by the [`CASA_BACKEND`](BACKEND_ENV)
    /// environment variable, `None` when unset.
    ///
    /// # Errors
    ///
    /// Returns a typed [`UnknownBackendError`] when the variable is set to
    /// an unknown name or to a non-UTF-8 value — callers surface it as a
    /// [`ConfigError`], never a panic.
    pub fn from_env() -> Result<Option<BackendKind>, UnknownBackendError> {
        match std::env::var_os(BACKEND_ENV) {
            None => Ok(None),
            Some(value) => match value.to_str() {
                Some(s) => BackendKind::parse(s).map(Some),
                None => Err(UnknownBackendError {
                    value: value.to_string_lossy().into_owned(),
                    reason: "value is not valid UTF-8",
                }),
            },
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Rolling k-mer codes for a tile of reads, computed once by the session
/// and shared across every partition backend.
///
/// Each partition engine derives the same per-read code sequence (the
/// window size is `config.filter.k`, identical for all partitions), so
/// letting every (partition, tile) job re-derive it multiplies that work
/// by the partition count. The session computes each tile's codes once
/// with [`TileKmerCodes::compute`] and passes them to
/// [`SeedingBackend::seed_tile_with_codes_into`]; backends that do not
/// consume codes ignore them.
#[derive(Clone, Debug, Default)]
pub struct TileKmerCodes {
    /// Every read's rolling codes, concatenated in read order.
    codes: Vec<u64>,
    /// `offsets[i]..offsets[i + 1]` bounds read `i`'s codes in `codes`.
    /// A read shorter than `k` contributes an empty range.
    offsets: Vec<usize>,
}

impl TileKmerCodes {
    /// Computes every read's rolling window-`k` codes, in read order,
    /// exactly as [`PackedSeq::kmers`] yields them.
    pub fn compute(reads: &[PackedSeq], k: usize) -> TileKmerCodes {
        let mut codes = Vec::new();
        let mut offsets = Vec::with_capacity(reads.len() + 1);
        offsets.push(0);
        for read in reads {
            codes.extend(read.kmers(k).map(|(_, code)| code));
            offsets.push(codes.len());
        }
        TileKmerCodes { codes, offsets }
    }

    /// Read `i`'s rolling codes; empty for reads shorter than `k` and for
    /// indices beyond the computed tile (a defaulted instance holds no
    /// reads at all).
    pub fn read(&self, i: usize) -> &[u64] {
        match (self.offsets.get(i), self.offsets.get(i + 1)) {
            (Some(&lo), Some(&hi)) => &self.codes[lo..hi],
            _ => &[],
        }
    }
}

/// One seeding substrate bound to one reference partition.
///
/// Object-safe and `Send + Sync` so a session can hold
/// `Arc<Vec<Mutex<Box<dyn SeedingBackend>>>>` and drive it from scoped
/// worker threads. Implementations report partition-**local** hit
/// coordinates; the session translates and merges.
///
/// The CAM-specific hooks (`inject_faults`, `set_scalar_search`,
/// `set_kernel_backend`) default to no-ops so software backends do not
/// have to know about CAM fault models or word kernels.
pub trait SeedingBackend: Send + Sync {
    /// Which substrate this is.
    fn kind(&self) -> BackendKind;

    /// Seeds one read against this backend's partition, writing the SMEMs
    /// into the caller's scratch vector (cleared first). Hits are
    /// partition-local. Statistics are reported as per-read deltas onto
    /// `stats`, exactly like [`PartitionEngine::seed_read`].
    fn seed_read_into(&mut self, read: &PackedSeq, stats: &mut SeedingStats, out: &mut Vec<Smem>);

    /// Seeds a tile of reads, one output vector per read (the batched
    /// entry point the session's tile scheduler uses). The default
    /// implementation loops [`seed_read_into`](Self::seed_read_into);
    /// backends with a cheaper batched path may override it, but the
    /// output must stay bit-identical to the per-read loop.
    fn seed_tile_into(
        &mut self,
        reads: &[PackedSeq],
        stats: &mut SeedingStats,
        out: &mut Vec<Vec<Smem>>,
    ) {
        out.clear();
        for read in reads {
            let mut smems = Vec::new();
            self.seed_read_into(read, stats, &mut smems);
            out.push(smems);
        }
    }

    /// Like [`seed_read_into`](Self::seed_read_into), with the read's
    /// rolling k-mer codes (window `config.filter.k`, as produced by
    /// [`PackedSeq::kmers`]) already computed by the caller. Backends
    /// that derive per-pivot state from the codes (the CAM engine) skip
    /// recomputing them; the default ignores `codes` and defers to
    /// `seed_read_into`, so software backends need no change. Passing
    /// codes that are not exactly the read's own is a logic error.
    fn seed_read_with_codes_into(
        &mut self,
        read: &PackedSeq,
        codes: &[u64],
        stats: &mut SeedingStats,
        out: &mut Vec<Smem>,
    ) {
        let _ = codes;
        self.seed_read_into(read, stats, out);
    }

    /// Tile variant of
    /// [`seed_read_with_codes_into`](Self::seed_read_with_codes_into):
    /// seeds `reads[i]` with `codes.read(i)`. Output and stats must stay
    /// bit-identical to [`seed_tile_into`](Self::seed_tile_into) — the
    /// codes are a shared precomputation, never a semantic input.
    fn seed_tile_with_codes_into(
        &mut self,
        reads: &[PackedSeq],
        codes: &TileKmerCodes,
        stats: &mut SeedingStats,
        out: &mut Vec<Vec<Smem>>,
    ) {
        out.clear();
        for (i, read) in reads.iter().enumerate() {
            let mut smems = Vec::new();
            self.seed_read_with_codes_into(read, codes.read(i), stats, &mut smems);
            out.push(smems);
        }
    }

    /// Injects seeded hardware faults, returning the chosen sites. Only
    /// meaningful for the CAM backend; the default reports no sites (the
    /// software models have no CAM lines or filter tables to corrupt —
    /// scheduler faults like tile panics and stalls still apply, as they
    /// fire above the backend).
    fn inject_faults(
        &mut self,
        _cam: &casa_cam::CamFaultModel,
        _filter: &casa_filter::FilterFaultModel,
    ) -> (casa_cam::CamFaultReport, casa_filter::FilterFaultReport) {
        (
            casa_cam::CamFaultReport::default(),
            casa_filter::FilterFaultReport::default(),
        )
    }

    /// Routes CAM searches through the scalar oracle (`true`) or the
    /// bit-parallel kernel (`false`). No-op on software backends.
    fn set_scalar_search(&mut self, _scalar: bool) {}

    /// Pins the CAM word kernel. No-op on software backends.
    fn set_kernel_backend(&mut self, _backend: casa_cam::KernelBackend) {}

    /// The effective CAM word kernel; software backends report the
    /// process default (they never execute one).
    fn kernel_backend(&self) -> casa_cam::KernelBackend {
        casa_cam::kernel::default_backend()
    }

    /// Enables per-stage wall-clock profiling (see
    /// [`crate::profile`]). Software backends are not instrumented and
    /// default to a no-op: their stage spans simply stay zero, which the
    /// profile layer treats as "not measured", not as "free".
    fn set_profiling(&mut self, _enabled: bool) {}

    /// Switches between the batched pre-seeding lookup pass and the
    /// per-pivot seed path (CAM engine only; outputs are bit-identical
    /// either way). No-op on software backends, which have no filter
    /// table.
    fn set_batched_filter(&mut self, _batched: bool) {}

    /// Whether this backend's reference-side arrays are borrowed from a
    /// mapped index image (see [`crate::image`]) rather than owned heap
    /// allocations. Software backends always own their structures.
    fn storage_shared(&self) -> bool {
        false
    }
}

impl SeedingBackend for PartitionEngine {
    fn kind(&self) -> BackendKind {
        BackendKind::Cam
    }

    fn seed_read_into(&mut self, read: &PackedSeq, stats: &mut SeedingStats, out: &mut Vec<Smem>) {
        PartitionEngine::seed_read_into(self, read, stats, out);
    }

    fn seed_read_with_codes_into(
        &mut self,
        read: &PackedSeq,
        codes: &[u64],
        stats: &mut SeedingStats,
        out: &mut Vec<Smem>,
    ) {
        PartitionEngine::seed_read_with_codes_into(self, read, codes, stats, out);
    }

    fn set_profiling(&mut self, enabled: bool) {
        PartitionEngine::set_profiling(self, enabled);
    }

    fn set_batched_filter(&mut self, batched: bool) {
        PartitionEngine::set_batched_filter(self, batched);
    }

    fn inject_faults(
        &mut self,
        cam: &casa_cam::CamFaultModel,
        filter: &casa_filter::FilterFaultModel,
    ) -> (casa_cam::CamFaultReport, casa_filter::FilterFaultReport) {
        PartitionEngine::inject_faults(self, cam, filter)
    }

    fn set_scalar_search(&mut self, scalar: bool) {
        PartitionEngine::set_scalar_search(self, scalar);
    }

    fn set_kernel_backend(&mut self, backend: casa_cam::KernelBackend) {
        PartitionEngine::set_kernel_backend(self, backend);
    }

    fn kernel_backend(&self) -> casa_cam::KernelBackend {
        PartitionEngine::kernel_backend(self)
    }

    fn storage_shared(&self) -> bool {
        PartitionEngine::storage_shared(self)
    }
}

/// The FM-index backend: BWA-MEM2's bidirectional SMEM algorithm
/// (Li 2012, Algorithm 2) on a per-partition [`BiFmIndex`].
///
/// Output equals the golden unidirectional algorithm (cross-checked in
/// `casa-index::smem`), hence equals the CAM path. Activity statistics
/// cover read passes, per-pivot search counts, and seed-record DRAM
/// traffic; the CASA filter/CAM counters stay zero.
#[derive(Debug)]
pub struct FmBackend {
    bi: BiFmIndex,
    min_smem_len: usize,
}

impl FmBackend {
    /// Validates `config` and builds the bidirectional FM-index of
    /// `partition`.
    ///
    /// # Errors
    ///
    /// Returns the first violated configuration invariant (see
    /// [`CasaConfig::validated`]).
    pub fn new(partition: &PackedSeq, config: CasaConfig) -> Result<FmBackend, ConfigError> {
        let config = config.validated()?;
        Ok(FmBackend {
            bi: BiFmIndex::build(partition),
            min_smem_len: config.min_smem_len,
        })
    }
}

impl SeedingBackend for FmBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Fm
    }

    fn seed_read_into(&mut self, read: &PackedSeq, stats: &mut SeedingStats, out: &mut Vec<Smem>) {
        stats.read_passes += 1;
        stats.pivots_total += read.len() as u64;
        out.clear();
        let mut smems = smems_bidirectional(&self.bi, read, self.min_smem_len);
        // One backward/forward extension pass per emitted candidate pivot:
        // charge a search per SMEM plus one per uncovered pivot round, the
        // closest analogue of the CAM path's RMEM search count.
        stats.rmem_searches += smems.len().max(1) as u64;
        stats.smems_reported += smems.len() as u64;
        stats.dram_bytes += smems
            .iter()
            .map(|s| 8 + 4 * s.hits.len() as u64)
            .sum::<u64>();
        out.append(&mut smems);
    }
}

/// The ERT backend: GenAx-style unidirectional SMEM extraction where every
/// RMEM comes from an enumerated-radix-tree walk ([`ErtIndex::walk`])
/// instead of a CAM search — the software twin of the ASIC-ERT baseline
/// whose cost model lives in `casa-baselines::ert_model`.
#[derive(Clone, Debug)]
pub struct ErtBackend {
    ert: ErtIndex,
    min_smem_len: usize,
}

impl ErtBackend {
    /// Validates `config` and builds the radix trees of `partition` with
    /// the filter k-mer size (`config.filter.k`, 15–19 at paper scale).
    ///
    /// # Errors
    ///
    /// Returns the first violated configuration invariant (see
    /// [`CasaConfig::validated`]). Validation guarantees
    /// `2 <= k <= 32` and `min_smem_len >= k`, the precondition of the
    /// equivalence argument below.
    pub fn new(partition: &PackedSeq, config: CasaConfig) -> Result<ErtBackend, ConfigError> {
        let config = config.validated()?;
        Ok(ErtBackend {
            ert: ErtIndex::build(partition, config.filter.k),
            min_smem_len: config.min_smem_len,
        })
    }
}

impl SeedingBackend for ErtBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Ert
    }

    /// Unidirectional SMEM extraction over ERT walks.
    ///
    /// `walk` returns `None` exactly when the pivot's k-mer is absent,
    /// i.e. the RMEM there is shorter than `k <= min_smem_len`. Skipping
    /// those pivots' `max_end` updates cannot change the output: any RMEM
    /// a sub-`k` RMEM would have contained is strictly shorter than it,
    /// hence also below `min_smem_len`, and is dropped by the length
    /// filter either way. For pivots with a walk, `matched_len` and
    /// `positions` equal the suffix-array longest match (proven in
    /// `casa-index::ert`), so the emitted set is bit-identical to
    /// [`smems_unidirectional`](casa_index::smem::smems_unidirectional).
    fn seed_read_into(&mut self, read: &PackedSeq, stats: &mut SeedingStats, out: &mut Vec<Smem>) {
        stats.read_passes += 1;
        stats.pivots_total += read.len() as u64;
        out.clear();
        let mut max_end = 0usize;
        for pivot in 0..read.len() {
            match self.ert.walk(read, pivot) {
                None => {
                    // Absent k-mer: the RMEM here is < k <= min_smem_len.
                    // Costs one index-table probe, which the walk would
                    // have counted; treat it as a filtered pivot.
                    stats.pivots_filtered_table += 1;
                }
                Some(walk) => {
                    stats.rmem_searches += 1;
                    let end = pivot + walk.matched_len;
                    if end <= max_end {
                        stats.rmems_contained += 1;
                        continue;
                    }
                    max_end = end;
                    if walk.matched_len >= self.min_smem_len {
                        stats.dram_bytes += 8 + 4 * walk.positions.len() as u64;
                        out.push(Smem {
                            read_start: pivot,
                            read_end: end,
                            hits: walk.positions,
                        });
                    }
                }
            }
        }
        stats.smems_reported += out.len() as u64;
    }
}

/// Builds one boxed backend of the given kind for one partition.
///
/// # Errors
///
/// Returns the first violated configuration invariant (see
/// [`CasaConfig::validated`]); for the CAM backend this includes a typed
/// error for an invalid `CASA_KERNEL` request.
pub fn build_backend(
    kind: BackendKind,
    partition: &PackedSeq,
    config: CasaConfig,
) -> Result<Box<dyn SeedingBackend>, ConfigError> {
    Ok(match kind {
        BackendKind::Cam => Box::new(PartitionEngine::new(partition, config)?),
        BackendKind::Fm => Box::new(FmBackend::new(partition, config)?),
        BackendKind::Ert => Box::new(ErtBackend::new(partition, config)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_genome::synth::{generate_reference, ReferenceProfile};
    use casa_genome::{ReadSimConfig, ReadSimulator};
    use casa_index::smem::smems_unidirectional;
    use casa_index::SuffixArray;

    #[test]
    fn kind_round_trips_and_rejects_unknown() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.as_str()), Ok(kind));
            assert_eq!(kind.to_string(), kind.as_str());
        }
        let err = BackendKind::parse("gpu").unwrap_err();
        assert_eq!(err.value, "gpu");
        assert!(err.to_string().contains("cam, fm, ert"));
    }

    #[test]
    fn every_backend_equals_golden_on_simulated_reads() {
        let part = generate_reference(&ReferenceProfile::human_like(), 4_000, 77);
        let config = CasaConfig::small(part.len());
        let sa = SuffixArray::build(&part);
        let sim = ReadSimulator::new(
            ReadSimConfig {
                read_len: 48,
                ..ReadSimConfig::default()
            },
            21,
        );
        let reads = sim.simulate(&part, 40);
        for kind in BackendKind::ALL {
            let mut backend = build_backend(kind, &part, config).expect("valid config");
            assert_eq!(backend.kind(), kind);
            let mut stats = SeedingStats::default();
            let mut smems = Vec::new();
            for read in &reads {
                let golden = smems_unidirectional(&sa, &read.seq, config.min_smem_len);
                backend.seed_read_into(&read.seq, &mut stats, &mut smems);
                assert_eq!(smems, golden, "{kind} diverged on read {}", read.name);
            }
            assert_eq!(stats.read_passes, reads.len() as u64);
            assert!(stats.smems_reported > 0, "{kind} reported no SMEMs");
        }
    }

    #[test]
    fn tile_path_matches_per_read_path() {
        let part = generate_reference(&ReferenceProfile::human_like(), 2_500, 5);
        let config = CasaConfig::small(part.len());
        let reads: Vec<PackedSeq> = (0..8).map(|i| part.subseq(i * 100, 40)).collect();
        for kind in BackendKind::ALL {
            let mut a = build_backend(kind, &part, config).expect("valid config");
            let mut b = build_backend(kind, &part, config).expect("valid config");
            let mut sa = SeedingStats::default();
            let mut sb = SeedingStats::default();
            let mut tile_out = Vec::new();
            a.seed_tile_into(&reads, &mut sa, &mut tile_out);
            let per_read: Vec<Vec<Smem>> = reads
                .iter()
                .map(|r| {
                    let mut out = Vec::new();
                    b.seed_read_into(r, &mut sb, &mut out);
                    out
                })
                .collect();
            assert_eq!(tile_out, per_read, "{kind} tile path diverged");
            assert_eq!(sa, sb, "{kind} tile stats diverged");
        }
    }

    /// The session's shared-codes tile path must be bit-identical —
    /// output *and* stats — to the plain tile path on every backend,
    /// including for a read shorter than the filter k-mer (whose code
    /// range is empty).
    #[test]
    fn precomputed_codes_path_matches_plain_path() {
        let part = generate_reference(&ReferenceProfile::human_like(), 2_500, 5);
        let config = CasaConfig::small(part.len());
        let mut reads: Vec<PackedSeq> = (0..8).map(|i| part.subseq(i * 100, 40)).collect();
        reads.push(part.subseq(0, config.filter.k - 1));
        let codes = TileKmerCodes::compute(&reads, config.filter.k);
        for kind in BackendKind::ALL {
            let mut a = build_backend(kind, &part, config).expect("valid config");
            let mut b = build_backend(kind, &part, config).expect("valid config");
            let mut sa = SeedingStats::default();
            let mut sb = SeedingStats::default();
            let mut with_codes = Vec::new();
            let mut plain = Vec::new();
            a.seed_tile_with_codes_into(&reads, &codes, &mut sa, &mut with_codes);
            b.seed_tile_into(&reads, &mut sb, &mut plain);
            assert_eq!(with_codes, plain, "{kind} codes path diverged");
            assert_eq!(sa, sb, "{kind} codes-path stats diverged");
        }
        // Out-of-range reads and defaulted instances report no codes.
        assert_eq!(codes.read(reads.len()), &[] as &[u64]);
        assert_eq!(TileKmerCodes::default().read(0), &[] as &[u64]);
    }

    #[test]
    fn software_backends_ignore_cam_hooks() {
        let part = generate_reference(&ReferenceProfile::uniform(), 800, 2);
        let config = CasaConfig::small(part.len());
        for kind in [BackendKind::Fm, BackendKind::Ert] {
            let mut backend = build_backend(kind, &part, config).expect("valid config");
            backend.set_scalar_search(true);
            backend.set_kernel_backend(casa_cam::KernelBackend::Scalar);
            let plan = crate::FaultPlan {
                seed: 9,
                cam_stuck_rate: 0.5,
                cam_flip_rate: 0.1,
                filter_flip_rate: 0.1,
                ..crate::FaultPlan::default()
            };
            let (cam, filter) =
                backend.inject_faults(&plan.cam_faults_for(0), &plan.filter_faults_for(0));
            assert_eq!(cam, casa_cam::CamFaultReport::default());
            assert_eq!(filter, casa_filter::FilterFaultReport::default());
        }
    }

    #[test]
    fn invalid_config_is_rejected_by_every_backend() {
        let part = generate_reference(&ReferenceProfile::uniform(), 500, 1);
        let mut bad = CasaConfig::small(part.len());
        bad.lanes = 0;
        for kind in BackendKind::ALL {
            assert_eq!(
                build_backend(kind, &part, bad).map(|_| ()),
                Err(ConfigError::ZeroLanes),
                "{kind}"
            );
        }
    }
}
