//! Per-stage wall-clock accounting for the seeding pipeline.
//!
//! The session pipeline decomposes into eight stages (the taxonomy of
//! DESIGN.md §3c): read packing, rolling k-mer codes, filter lookups,
//! pivot analysis, CAM/RMEM search, SMEM containment/merge, global
//! translation + cross-partition merge, and SAM/seed emission. A
//! [`StageProfile`] is a plain bag of per-stage nanosecond/call counters
//! that rides inside [`SeedingStats`](crate::SeedingStats), so it merges
//! across worker threads, tiles, and batches exactly like every other
//! activity counter.
//!
//! Profiling is **always available** (no feature gate) and near-zero
//! overhead when disabled: every instrumentation site is guarded by a
//! plain `bool` and takes no timestamps unless a caller opted in via
//! [`SeedingSession::set_profiling`](crate::SeedingSession::set_profiling)
//! (or [`PartitionEngine::set_profiling`](crate::PartitionEngine::set_profiling)
//! directly). When enabled, stages are timed as disjoint spans — the sum
//! of all stage times can never exceed the wall time of the run that
//! produced them, which `tests/stage_profile.rs` asserts.
//!
//! Timings are wall-clock and therefore nondeterministic; they are *not*
//! part of the bit-identity contract. Runs compared for equality keep
//! profiling off (the default), under which the profile stays all-zero
//! and compares equal.

use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Number of pipeline stages in the taxonomy.
pub const STAGE_COUNT: usize = 8;

/// One stage of the seeding pipeline (DESIGN.md §3c).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// ASCII → 2-bit [`PackedSeq`](casa_genome::PackedSeq) read packing
    /// (recorded by ingestion-side callers; the engines only see packed
    /// reads).
    ReadPack = 0,
    /// Rolling k-mer code computation over the read.
    KmerCodes = 1,
    /// Pre-seeding filter-table lookups (batched or per-pivot).
    FilterLookup = 2,
    /// Algorithm 1 pivot gating: CRkM and shifted-AND analyses plus loop
    /// bookkeeping.
    PivotAnalysis = 3,
    /// CAM/RMEM searches (including the §4.3 whole-read match attempt).
    CamSearch = 4,
    /// SMEM containment checks and per-partition result recording.
    ContainMerge = 5,
    /// Partition-local → global coordinate translation and the
    /// cross-partition merge.
    TranslateMerge = 6,
    /// SAM/seed record formatting and emission (recorded by output-side
    /// callers).
    Emit = 7,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::ReadPack,
        Stage::KmerCodes,
        Stage::FilterLookup,
        Stage::PivotAnalysis,
        Stage::CamSearch,
        Stage::ContainMerge,
        Stage::TranslateMerge,
        Stage::Emit,
    ];

    /// Stable snake_case label used in reports and BENCH artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::ReadPack => "read_pack",
            Stage::KmerCodes => "kmer_codes",
            Stage::FilterLookup => "filter_lookup",
            Stage::PivotAnalysis => "pivot_analysis",
            Stage::CamSearch => "cam_search",
            Stage::ContainMerge => "contain_merge",
            Stage::TranslateMerge => "translate_merge",
            Stage::Emit => "emit",
        }
    }

    /// The stage's index into the profile arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Accumulated per-stage wall time and span counts.
///
/// A plain `Copy` bag of `u64` counters whose [`merge`](Self::merge) is
/// addition — commutative and associative — so worker-local profiles fold
/// in any completion order, like the rest of
/// [`SeedingStats`](crate::SeedingStats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Nanoseconds accumulated per stage, indexed by [`Stage::index`].
    nanos: [u64; STAGE_COUNT],
    /// Timed spans accumulated per stage.
    calls: [u64; STAGE_COUNT],
}

impl StageProfile {
    /// Records one timed span of `nanos` nanoseconds against `stage`.
    pub fn add(&mut self, stage: Stage, nanos: u64) {
        self.add_many(stage, nanos, 1);
    }

    /// Records `calls` spans totalling `nanos` nanoseconds against
    /// `stage`.
    pub fn add_many(&mut self, stage: Stage, nanos: u64, calls: u64) {
        self.nanos[stage.index()] += nanos;
        self.calls[stage.index()] += calls;
    }

    /// Nanoseconds accumulated against `stage`.
    pub fn nanos(&self, stage: Stage) -> u64 {
        self.nanos[stage.index()]
    }

    /// Spans recorded against `stage`.
    pub fn calls(&self, stage: Stage) -> u64 {
        self.calls[stage.index()]
    }

    /// Total nanoseconds across all stages. Spans are disjoint by
    /// construction, so this never exceeds the wall time of the run that
    /// produced the profile.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// `stage`'s share of [`total_nanos`](Self::total_nanos), in `[0, 1]`
    /// (0 when nothing was recorded).
    pub fn share(&self, stage: Stage) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            return 0.0;
        }
        self.nanos(stage) as f64 / total as f64
    }

    /// Whether no span was ever recorded (the state of every run with
    /// profiling disabled).
    pub fn is_empty(&self) -> bool {
        self.calls.iter().all(|&c| c == 0) && self.nanos.iter().all(|&n| n == 0)
    }

    /// Adds another profile into this one.
    pub fn merge(&mut self, other: &StageProfile) {
        for i in 0..STAGE_COUNT {
            self.nanos[i] += other.nanos[i];
            self.calls[i] += other.calls[i];
        }
    }
}

/// A guard-style span timer: started conditionally, charged to a stage on
/// [`stop`](Self::stop). When started disabled it takes no timestamp at
/// all — the near-zero-overhead contract of the profile layer.
#[derive(Debug)]
#[must_use = "a started timer must be stopped to record its span"]
pub struct StageTimer(Option<Instant>);

impl StageTimer {
    /// Starts a timer, taking a timestamp only when `enabled`.
    #[inline]
    pub fn start(enabled: bool) -> StageTimer {
        StageTimer(if enabled { Some(Instant::now()) } else { None })
    }

    /// Stops the timer, charging the elapsed span to `stage` (a no-op for
    /// a disabled timer).
    #[inline]
    pub fn stop(self, profile: &mut StageProfile, stage: Stage) {
        if let Some(start) = self.0 {
            profile.add(stage, start.elapsed().as_nanos() as u64);
        }
    }

    /// Nanoseconds elapsed so far (0 for a disabled timer), without
    /// charging any stage. Used where a stage's time is derived by
    /// subtraction (e.g. pivot analysis = loop wall minus the inner
    /// filter/CAM/merge spans).
    #[inline]
    pub fn elapsed_nanos(&self) -> u64 {
        self.0.map_or(0, |start| start.elapsed().as_nanos() as u64)
    }

    /// Whether the timer is actually measuring.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// Times `f`, charging its wall time to `stage`. Convenience for
/// harness-side stages (read packing, SAM emission) that live outside the
/// engines.
pub fn time_stage<T>(profile: &mut StageProfile, stage: Stage, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    profile.add(stage, start.elapsed().as_nanos() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_merge_accumulate() {
        let mut a = StageProfile::default();
        assert!(a.is_empty());
        a.add(Stage::FilterLookup, 100);
        a.add(Stage::FilterLookup, 50);
        a.add_many(Stage::CamSearch, 30, 3);
        let mut b = StageProfile::default();
        b.add(Stage::FilterLookup, 1);
        b.add(Stage::Emit, 9);
        a.merge(&b);
        assert_eq!(a.nanos(Stage::FilterLookup), 151);
        assert_eq!(a.calls(Stage::FilterLookup), 3);
        assert_eq!(a.nanos(Stage::CamSearch), 30);
        assert_eq!(a.calls(Stage::CamSearch), 3);
        assert_eq!(a.total_nanos(), 190);
        assert!((a.share(Stage::FilterLookup) - 151.0 / 190.0).abs() < 1e-12);
        assert!(!a.is_empty());
    }

    #[test]
    fn stage_labels_are_unique_and_ordered() {
        let mut seen = std::collections::HashSet::new();
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert!(seen.insert(stage.as_str()), "duplicate {stage}");
        }
        assert_eq!(seen.len(), STAGE_COUNT);
    }

    #[test]
    fn disabled_timer_records_nothing() {
        let mut p = StageProfile::default();
        let t = StageTimer::start(false);
        assert!(!t.enabled());
        assert_eq!(t.elapsed_nanos(), 0);
        t.stop(&mut p, Stage::KmerCodes);
        assert!(p.is_empty());
        let t = StageTimer::start(true);
        assert!(t.enabled());
        t.stop(&mut p, Stage::KmerCodes);
        assert_eq!(p.calls(Stage::KmerCodes), 1);
    }

    #[test]
    fn time_stage_charges_the_stage() {
        let mut p = StageProfile::default();
        let v = time_stage(&mut p, Stage::Emit, || 7);
        assert_eq!(v, 7);
        assert_eq!(p.calls(Stage::Emit), 1);
    }

    #[test]
    fn pivot_analysis_by_subtraction_never_exceeds_wall() {
        // The engine derives PivotAnalysis as loop wall minus the inner
        // spans; saturating_sub keeps the invariant even when clock
        // granularity makes inner >= wall.
        let mut p = StageProfile::default();
        p.add(Stage::FilterLookup, 70);
        p.add(Stage::CamSearch, 40);
        let wall = 100u64;
        let inner = p.total_nanos();
        p.add(Stage::PivotAnalysis, wall.saturating_sub(inner));
        assert_eq!(p.nanos(Stage::PivotAnalysis), 0);
        assert!(p.total_nanos() >= wall);
    }
}
