//! A tiny leveled diagnostics logger for the CASA runtime and tools.
//!
//! Off by default: nothing is emitted unless the [`LOG_ENV`]
//! (`CASA_LOG`) environment variable selects a level (`error`, `warn`,
//! `info`, `debug`). The level is read once, on first use, so the
//! supervisor's hot paths pay a single relaxed load per suppressed
//! message. Output goes to stderr, which keeps stdout clean for SAM
//! pipes, as
//!
//! ```text
//! casa[<level>] +<uptime>s <target>: <message>
//! casa[<level>] +<uptime>s req=<id> <target>: <message>
//! ```
//!
//! The `+<uptime>s` stamp (seconds since the process's first log call,
//! millisecond resolution) orders interleaved lines from concurrent
//! workers. The `req=<id>` field appears when the logging thread is
//! inside a request scope: servers allocate a process-unique id with
//! [`next_request_id`] and wrap request handling in a [`RequestScope`] so
//! every line logged on that thread — including deep inside the session
//! runtime — is attributable to one request.
//!
//! The [`log_error!`](crate::log_error), [`log_warn!`](crate::log_warn),
//! [`log_info!`](crate::log_info) and [`log_debug!`](crate::log_debug)
//! macros capture `module_path!()` as the target:
//!
//! ```
//! casa_core::log_info!("seeded {} reads", 128);
//! ```

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Environment variable selecting the log level (`CASA_LOG`). Unset or
/// unrecognized values mean [`Level::Off`].
pub const LOG_ENV: &str = "CASA_LOG";

/// Message severity, ordered so that `Error < Warn < Info < Debug`; a
/// configured level enables every message at or below it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Logging disabled (the default).
    Off,
    /// Unrecoverable or surprising conditions.
    Error,
    /// Recovered faults, deadline kills, degraded modes.
    Warn,
    /// Progress and summary lines.
    Info,
    /// Per-batch and per-tile detail.
    Debug,
}

impl Level {
    /// Parses a level name (case-insensitive); `None` for unknown text.
    pub fn parse(text: &str) -> Option<Level> {
        match text.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }

    /// The level's lowercase name (`"warn"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// The process-wide maximum enabled level, read from [`LOG_ENV`] once.
pub fn max_level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        std::env::var(LOG_ENV)
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Off)
    })
}

/// Whether messages at `level` are currently emitted.
pub fn enabled(level: Level) -> bool {
    level != Level::Off && level <= max_level()
}

/// Seconds elapsed since the process's first log call (the uptime
/// baseline is latched on first use).
fn uptime_secs() -> f64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Allocates a process-unique, monotonically increasing request id
/// (starting at 1). Thread-safe; servers call this once per accepted
/// request and scope it with [`RequestScope`].
pub fn next_request_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// The request id attributed to log lines from this thread, if any.
    static CURRENT_REQUEST: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Tags every log line emitted by the current thread with a request id,
/// for the scope's lifetime. Nestable: dropping a scope restores the
/// previous id (or none), so a worker thread that finishes one request
/// and picks up another never misattributes lines.
#[derive(Debug)]
pub struct RequestScope {
    previous: Option<u64>,
}

impl RequestScope {
    /// Enters a request scope on the current thread.
    pub fn enter(request_id: u64) -> RequestScope {
        let previous = CURRENT_REQUEST.with(|c| c.replace(Some(request_id)));
        RequestScope { previous }
    }

    /// The request id the current thread's log lines carry, if any.
    pub fn current() -> Option<u64> {
        CURRENT_REQUEST.with(Cell::get)
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        CURRENT_REQUEST.with(|c| c.set(self.previous));
    }
}

/// Emits one message if `level` is enabled. Prefer the `log_*!` macros,
/// which fill in `target` and build the arguments lazily.
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    if enabled(level) {
        let uptime = uptime_secs();
        match RequestScope::current() {
            Some(id) => eprintln!(
                "casa[{}] +{uptime:.3}s req={id} {target}: {args}",
                level.name()
            ),
            None => eprintln!("casa[{}] +{uptime:.3}s {target}: {args}", level.name()),
        }
    }
}

/// Logs at [`Level::Error`] with the calling module as target.
#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        $crate::logging::log(
            $crate::logging::Level::Error,
            module_path!(),
            format_args!($($arg)*),
        )
    };
}

/// Logs at [`Level::Warn`] with the calling module as target.
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        $crate::logging::log(
            $crate::logging::Level::Warn,
            module_path!(),
            format_args!($($arg)*),
        )
    };
}

/// Logs at [`Level::Info`] with the calling module as target.
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        $crate::logging::log(
            $crate::logging::Level::Info,
            module_path!(),
            format_args!($($arg)*),
        )
    };
}

/// Logs at [`Level::Debug`] with the calling module as target.
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        $crate::logging::log(
            $crate::logging::Level::Debug,
            module_path!(),
            format_args!($($arg)*),
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_names_case_insensitively() {
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("ERROR"), Some(Level::Error));
        assert_eq!(Level::parse(" Warn "), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn levels_order_from_off_to_debug() {
        assert!(Level::Off < Level::Error);
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::Warn.name(), "warn");
    }

    #[test]
    fn request_ids_are_unique_and_monotonic() {
        let a = next_request_id();
        let b = next_request_id();
        assert!(b > a);
        // Concurrent allocation never hands out duplicates.
        let ids: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| (0..100).map(|_| next_request_id()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let unique: std::collections::HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn request_scopes_nest_and_restore() {
        assert_eq!(RequestScope::current(), None);
        let outer = RequestScope::enter(7);
        assert_eq!(RequestScope::current(), Some(7));
        {
            let _inner = RequestScope::enter(8);
            assert_eq!(RequestScope::current(), Some(8));
        }
        assert_eq!(RequestScope::current(), Some(7));
        drop(outer);
        assert_eq!(RequestScope::current(), None);
        // Scopes are per-thread: another thread sees no id.
        let _scope = RequestScope::enter(9);
        std::thread::spawn(|| assert_eq!(RequestScope::current(), None))
            .join()
            .unwrap();
    }

    #[test]
    fn off_is_never_enabled_and_macros_are_callable() {
        // `enabled(Off)` must be false no matter what CASA_LOG says, so a
        // `log(Off, ...)` call can never print.
        assert!(!enabled(Level::Off));
        // Smoke-test the macros (output, if any, goes to stderr).
        crate::log_debug!("macro smoke test {}", 1);
        crate::log_info!("macro smoke test");
    }
}
