//! A tiny leveled diagnostics logger for the CASA runtime and tools.
//!
//! Off by default: nothing is emitted unless the [`LOG_ENV`]
//! (`CASA_LOG`) environment variable selects a level (`error`, `warn`,
//! `info`, `debug`). The level is read once, on first use, so the
//! supervisor's hot paths pay a single relaxed load per suppressed
//! message. Output goes to stderr as `casa[<level>] <target>: <message>`,
//! which keeps stdout clean for SAM pipes.
//!
//! The [`log_error!`](crate::log_error), [`log_warn!`](crate::log_warn),
//! [`log_info!`](crate::log_info) and [`log_debug!`](crate::log_debug)
//! macros capture `module_path!()` as the target:
//!
//! ```
//! casa_core::log_info!("seeded {} reads", 128);
//! ```

use std::fmt;
use std::sync::OnceLock;

/// Environment variable selecting the log level (`CASA_LOG`). Unset or
/// unrecognized values mean [`Level::Off`].
pub const LOG_ENV: &str = "CASA_LOG";

/// Message severity, ordered so that `Error < Warn < Info < Debug`; a
/// configured level enables every message at or below it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Logging disabled (the default).
    Off,
    /// Unrecoverable or surprising conditions.
    Error,
    /// Recovered faults, deadline kills, degraded modes.
    Warn,
    /// Progress and summary lines.
    Info,
    /// Per-batch and per-tile detail.
    Debug,
}

impl Level {
    /// Parses a level name (case-insensitive); `None` for unknown text.
    pub fn parse(text: &str) -> Option<Level> {
        match text.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }

    /// The level's lowercase name (`"warn"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// The process-wide maximum enabled level, read from [`LOG_ENV`] once.
pub fn max_level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        std::env::var(LOG_ENV)
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Off)
    })
}

/// Whether messages at `level` are currently emitted.
pub fn enabled(level: Level) -> bool {
    level != Level::Off && level <= max_level()
}

/// Emits one message if `level` is enabled. Prefer the `log_*!` macros,
/// which fill in `target` and build the arguments lazily.
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    if enabled(level) {
        eprintln!("casa[{}] {target}: {args}", level.name());
    }
}

/// Logs at [`Level::Error`] with the calling module as target.
#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        $crate::logging::log(
            $crate::logging::Level::Error,
            module_path!(),
            format_args!($($arg)*),
        )
    };
}

/// Logs at [`Level::Warn`] with the calling module as target.
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        $crate::logging::log(
            $crate::logging::Level::Warn,
            module_path!(),
            format_args!($($arg)*),
        )
    };
}

/// Logs at [`Level::Info`] with the calling module as target.
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        $crate::logging::log(
            $crate::logging::Level::Info,
            module_path!(),
            format_args!($($arg)*),
        )
    };
}

/// Logs at [`Level::Debug`] with the calling module as target.
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        $crate::logging::log(
            $crate::logging::Level::Debug,
            module_path!(),
            format_args!($($arg)*),
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_names_case_insensitively() {
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("ERROR"), Some(Level::Error));
        assert_eq!(Level::parse(" Warn "), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn levels_order_from_off_to_debug() {
        assert!(Level::Off < Level::Error);
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::Warn.name(), "warn");
    }

    #[test]
    fn off_is_never_enabled_and_macros_are_callable() {
        // `enabled(Off)` must be false no matter what CASA_LOG says, so a
        // `log(Off, ...)` call can never print.
        assert!(!enabled(Level::Off));
        // Smoke-test the macros (output, if any, goes to stderr).
        crate::log_debug!("macro smoke test {}", 1);
        crate::log_info!("macro smoke test");
    }
}
