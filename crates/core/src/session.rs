//! Reusable parallel seeding sessions.
//!
//! [`SeedingSession`] is the batch-seeding runtime behind
//! [`CasaAccelerator`](crate::CasaAccelerator): it builds every
//! [`PartitionEngine`] **once** at construction (the filter tables and CAM
//! loads dominate small-batch runs) and then schedules partition × tile
//! jobs across a worker pool for each incoming read batch.
//!
//! # Determinism
//!
//! Results are bit-identical to the serial reference path
//! ([`CasaAccelerator::seed_reads_serial`](crate::CasaAccelerator::seed_reads_serial))
//! at any worker count:
//!
//! * each (partition, tile) job writes its SMEMs into a dedicated slot, and
//!   the final per-read lists are assembled in partition-index order before
//!   the usual cross-partition merge — so the SMEM stream never depends on
//!   scheduling;
//! * [`SeedingStats`] is a bag of `u64` counters whose merge is plain
//!   addition, which is commutative and associative, so worker-local stats
//!   can be folded in any completion order;
//! * `PartitionEngine::seed_read` reports per-read counter *deltas* and its
//!   output is a pure function of (partition, read), so engines can be
//!   reused across tiles, batches, and strands without drift.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use casa_genome::{PackedSeq, Partition};
use casa_index::smem::merge_partition_smems;
use casa_index::Smem;

use crate::accelerator::{CasaRun, StrandedRun};
use crate::engine::PartitionEngine;
use crate::error::Error;
use crate::stats::SeedingStats;
use crate::CasaConfig;

/// Target number of tiles per worker, so the job queue stays long enough
/// to balance uneven per-read work without shrinking tiles into
/// lock-bound confetti.
const TILES_PER_WORKER: usize = 4;

/// A seeding runtime bound to one reference and configuration.
///
/// Construction is the expensive step (one engine per reference
/// partition); every subsequent [`seed_reads`](SeedingSession::seed_reads)
/// call reuses the engines. Cloning a session is cheap and shares the
/// engines.
///
/// ```
/// use casa_core::{CasaConfig, SeedingSession};
/// use casa_genome::synth::{generate_reference, ReferenceProfile};
///
/// let reference = generate_reference(&ReferenceProfile::human_like(), 4_000, 1);
/// let session = SeedingSession::new(&reference, CasaConfig::small(1_000), 2)?;
/// let read = reference.subseq(2_500, 40);
/// let run = session.seed_reads(std::slice::from_ref(&read));
/// assert!(run.smems[0][0].hits.contains(&2_500));
/// # Ok::<(), casa_core::Error>(())
/// ```
#[derive(Clone)]
pub struct SeedingSession {
    config: CasaConfig,
    /// Global start coordinate of each partition, indexed like `engines`.
    part_starts: Arc<Vec<u32>>,
    engines: Arc<Vec<Mutex<PartitionEngine>>>,
    workers: usize,
}

impl std::fmt::Debug for SeedingSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeedingSession")
            .field("config", &self.config)
            .field("partitions", &self.engines.len())
            .field("workers", &self.workers)
            .finish()
    }
}

impl SeedingSession {
    /// Validates `config`, splits `reference`, and builds one engine per
    /// partition.
    ///
    /// # Errors
    ///
    /// * [`Error::Config`] if the configuration is inconsistent;
    /// * [`Error::EmptyReference`] if `reference` has no bases;
    /// * [`Error::ZeroWorkers`] if `workers == 0`.
    pub fn new(
        reference: &PackedSeq,
        config: CasaConfig,
        workers: usize,
    ) -> Result<SeedingSession, Error> {
        if workers == 0 {
            return Err(Error::ZeroWorkers);
        }
        let config = config.validated()?;
        let partitions: Vec<Partition> = config.partitioning.split(reference);
        if partitions.is_empty() {
            return Err(Error::EmptyReference);
        }
        let part_starts = partitions.iter().map(|p| p.start as u32).collect();
        let engines = partitions
            .iter()
            .map(|p| PartitionEngine::new(&p.seq, config).map(Mutex::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SeedingSession {
            config,
            part_starts: Arc::new(part_starts),
            engines: Arc::new(engines),
            workers,
        })
    }

    /// The session configuration.
    pub fn config(&self) -> &CasaConfig {
        &self.config
    }

    /// Number of reference partitions (passes per read batch).
    pub fn partition_count(&self) -> usize {
        self.engines.len()
    }

    /// Worker threads used per batch.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Read count per tile for a batch of `n` reads: enough tiles to keep
    /// every worker busy, never less than one read.
    fn tile_len(&self, n: usize) -> usize {
        n.div_ceil(self.workers * TILES_PER_WORKER).max(1)
    }

    /// Seeds a read batch against every partition and merges the results.
    ///
    /// Output is bit-identical to the serial reference path regardless of
    /// `workers` (see the module docs for why).
    pub fn seed_reads(&self, reads: &[PackedSeq]) -> CasaRun {
        let nparts = self.engines.len();
        let tile_len = self.tile_len(reads.len());
        let ntiles = reads.len().div_ceil(tile_len);
        let njobs = nparts * ntiles;

        // One slot per (partition, tile) job; workers claim job ids off a
        // shared counter. Job ids are tile-major (`ti * nparts + pi`) so
        // consecutive claims hit different partition engines and rarely
        // contend on the same lock.
        let slots: Vec<Mutex<Option<Vec<Vec<Smem>>>>> =
            (0..njobs).map(|_| Mutex::new(None)).collect();
        let next_job = AtomicUsize::new(0);
        let merged_stats = Mutex::new(SeedingStats::default());

        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(njobs.max(1)) {
                scope.spawn(|| {
                    let mut local_stats = SeedingStats::default();
                    loop {
                        let job = next_job.fetch_add(1, Ordering::Relaxed);
                        if job >= njobs {
                            break;
                        }
                        let pi = job % nparts;
                        let ti = job / nparts;
                        let start = self.part_starts[pi];
                        let tile = &reads[ti * tile_len..((ti + 1) * tile_len).min(reads.len())];
                        let out = {
                            let mut engine = self.engines[pi].lock().expect("engine lock poisoned");
                            tile.iter()
                                .map(|read| {
                                    let mut smems = engine.seed_read(read, &mut local_stats);
                                    for smem in &mut smems {
                                        for hit in &mut smem.hits {
                                            *hit += start;
                                        }
                                    }
                                    smems
                                })
                                .collect::<Vec<_>>()
                        };
                        *slots[job].lock().expect("slot lock poisoned") = Some(out);
                    }
                    merged_stats
                        .lock()
                        .expect("stats lock poisoned")
                        .merge(&local_stats);
                });
            }
        });

        let mut stats = merged_stats.into_inner().expect("stats lock poisoned");
        // Read batch streams in once (2-bit packed + header), exactly as in
        // the serial path.
        for read in reads {
            stats.dram_bytes += read.len().div_ceil(4) as u64 + 8;
        }

        // Assemble per-read partition lists in partition order, then merge
        // across partitions like the serial path does.
        let mut per_read_parts: Vec<Vec<Vec<Smem>>> = (0..reads.len())
            .map(|_| Vec::with_capacity(nparts))
            .collect();
        for pi in 0..nparts {
            for ti in 0..ntiles {
                let out = slots[ti * nparts + pi]
                    .lock()
                    .expect("slot lock poisoned")
                    .take()
                    .expect("every job ran to completion");
                for (k, smems) in out.into_iter().enumerate() {
                    per_read_parts[ti * tile_len + k].push(smems);
                }
            }
        }
        let smems = per_read_parts
            .into_iter()
            .map(merge_partition_smems)
            .collect();
        CasaRun {
            smems,
            stats,
            config: self.config,
        }
    }

    /// Seeds the batch in both orientations (each read and its reverse
    /// complement), as the hardware does.
    pub fn seed_reads_both_strands(&self, reads: &[PackedSeq]) -> StrandedRun {
        let rc: Vec<PackedSeq> = reads.iter().map(PackedSeq::reverse_complement).collect();
        StrandedRun {
            forward: self.seed_reads(reads),
            reverse: self.seed_reads(&rc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ConfigError;
    use casa_genome::synth::{generate_reference, ReferenceProfile};
    use casa_genome::{ReadSimConfig, ReadSimulator};

    fn reads_for(reference: &PackedSeq, n: usize, read_len: usize, seed: u64) -> Vec<PackedSeq> {
        let sim = ReadSimulator::new(
            ReadSimConfig {
                read_len,
                ..ReadSimConfig::default()
            },
            seed,
        );
        sim.simulate(reference, n)
            .into_iter()
            .map(|r| r.seq)
            .collect()
    }

    #[test]
    fn constructor_reports_typed_errors() {
        let reference = generate_reference(&ReferenceProfile::uniform(), 1_000, 3);
        let config = CasaConfig::small(500);
        assert_eq!(
            SeedingSession::new(&reference, config, 0).unwrap_err(),
            Error::ZeroWorkers
        );
        let empty = PackedSeq::from_ascii(b"").unwrap();
        assert_eq!(
            SeedingSession::new(&empty, config, 1).unwrap_err(),
            Error::EmptyReference
        );
        let mut bad = config;
        bad.lanes = 0;
        assert_eq!(
            SeedingSession::new(&reference, bad, 1).unwrap_err(),
            Error::Config(ConfigError::ZeroLanes)
        );
    }

    #[test]
    fn matches_serial_path_at_various_worker_counts() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 4_000, 17);
        let mut config = CasaConfig::small(700);
        config.partitioning = casa_genome::PartitionScheme::new(700, 60);
        let reads = reads_for(&reference, 30, 44, 5);
        let serial = crate::CasaAccelerator::new(&reference, config)
            .expect("valid config")
            .seed_reads_serial(&reads);
        for workers in [1, 2, 8] {
            let session = SeedingSession::new(&reference, config, workers).expect("valid config");
            let run = session.seed_reads(&reads);
            assert_eq!(run.smems, serial.smems, "{workers} workers");
            assert_eq!(run.stats, serial.stats, "{workers} workers");
        }
    }

    #[test]
    fn engines_are_reused_across_batches() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 3_000, 9);
        let config = CasaConfig::small(1_000);
        let session = SeedingSession::new(&reference, config, 2).expect("valid config");
        let reads = reads_for(&reference, 12, 40, 2);
        let first = session.seed_reads(&reads);
        let second = session.seed_reads(&reads);
        // Same batch, same engines: identical output and identical stat
        // deltas (no drift from reuse).
        assert_eq!(first.smems, second.smems);
        assert_eq!(first.stats, second.stats);
    }

    #[test]
    fn empty_batch_yields_empty_run() {
        let reference = generate_reference(&ReferenceProfile::uniform(), 1_200, 4);
        let session =
            SeedingSession::new(&reference, CasaConfig::small(600), 3).expect("valid config");
        let run = session.seed_reads(&[]);
        assert!(run.smems.is_empty());
        assert_eq!(run.stats, SeedingStats::default());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let reference = generate_reference(&ReferenceProfile::uniform(), 900, 8);
        let session =
            SeedingSession::new(&reference, CasaConfig::small(900), 16).expect("valid config");
        let read = reference.subseq(100, 40);
        let run = session.seed_reads(std::slice::from_ref(&read));
        assert_eq!(run.smems.len(), 1);
        assert!(run.smems[0][0].hits.contains(&100));
    }
}
