//! Reusable parallel seeding sessions with fault-tolerant scheduling.
//!
//! [`SeedingSession`] is the batch-seeding runtime behind
//! [`CasaAccelerator`](crate::CasaAccelerator): it builds one boxed
//! [`SeedingBackend`] per partition **once** at construction (the filter
//! tables, CAM loads, or index builds dominate small-batch runs) and then
//! schedules partition × tile jobs across a worker pool for each incoming
//! read batch. The backend — the CASA CAM model, the FM-index golden
//! model, or the ERT model — is a runtime choice
//! ([`BackendKind`](crate::BackendKind), selected per process via
//! [`CASA_BACKEND`](crate::BACKEND_ENV) or per session via
//! [`with_backend`](SeedingSession::with_backend)); every layer above the
//! trait is backend-agnostic, and every backend emits the identical SMEM
//! stream (see [`crate::backend`]).
//!
//! # Determinism
//!
//! Results are bit-identical to the serial reference path
//! ([`CasaAccelerator::seed_reads_serial`](crate::CasaAccelerator::seed_reads_serial))
//! at any worker count:
//!
//! * each (partition, tile) job writes its SMEMs into a dedicated slot, and
//!   the final per-read lists are assembled in partition-index order before
//!   the usual cross-partition merge — so the SMEM stream never depends on
//!   scheduling;
//! * [`SeedingStats`] is a bag of `u64` counters whose merge is plain
//!   addition, which is commutative and associative, so worker-local stats
//!   can be folded in any completion order;
//! * `PartitionEngine::seed_read` reports per-read counter *deltas* and its
//!   output is a pure function of (partition, read), so engines can be
//!   reused across tiles, batches, and strands without drift.
//!
//! # Fault tolerance
//!
//! Every job runs inside `catch_unwind` and is retried with capped backoff
//! up to [`FaultPlan::max_retries`] times; when a tile's attempts are
//! exhausted its partition is **quarantined** and every read of every tile
//! of that partition is re-seeded through the FM-index golden model
//! ([`casa_index::smem::smems_unidirectional`]), whose per-partition output
//! the engine is proven bit-identical to by the `casa_equals_golden_*`
//! tests — so recovered batches keep their exact output. A seeded
//! [`FaultPlan`] can inject tile panics/stalls and hardware faults
//! (CAM stuck-at lines, CAM/filter bit flips) to exercise these paths
//! deterministically, plus a sampled golden cross-check that catches
//! *silent* corruption. Lock poisoning (a worker panicking while holding an
//! engine) is recovered by taking the inner value: the engine's only
//! mutable state is cumulative activity counters, and the delta-based
//! accounting above tolerates counters advanced by an abandoned attempt.
//!
//! With silent-corruption faults injected, output is guaranteed
//! bit-identical to the fault-free run only when
//! `cross_check_fraction == 1.0`; at lower fractions detection (and hence
//! which tiles fall back) is best-effort. See `DESIGN.md` §2b.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

use casa_genome::{PackedSeq, Partition};
use casa_index::smem::{merge_flat_smems, merge_partition_smems, smems_unidirectional};
use casa_index::{Smem, SuffixArray};

use crate::accelerator::{CasaRun, StrandedRun};
use crate::backend::{build_backend, BackendKind, SeedingBackend, TileKmerCodes};
use crate::error::Error;
use crate::faults::{self, FaultPlan, FaultSites, InjectedFault};
use crate::profile::{Stage, StageTimer};
use crate::stats::SeedingStats;
use crate::stream::supervisor::{self, GuardedOutcome};
use crate::stream::CancelToken;
use crate::CasaConfig;

/// Target number of tiles per worker, so the job queue stays long enough
/// to balance uneven per-read work without shrinking tiles into
/// lock-bound confetti.
const TILES_PER_WORKER: usize = 4;

/// Locks a mutex, recovering the inner value if a previous holder
/// panicked. Safe here because every protected structure is either
/// overwritten whole (slots) or merged from counters that tolerate an
/// abandoned attempt (engines, stats) — see the module docs.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Marker for a tile attempt whose output failed the golden cross-check.
struct CrossCheckMismatch;

/// Every way one supervised tile attempt can end.
enum AttemptOutcome {
    /// The attempt succeeded; its output and stats are authoritative.
    Done(Vec<Vec<Smem>>, Box<SeedingStats>),
    /// The sampled golden cross-check caught corrupted output.
    Mismatch,
    /// The attempt panicked (injected or real).
    Panicked,
    /// The watchdog deadline expired and the attempt was abandoned.
    TimedOut,
    /// The session's cancel token fired while the attempt was in flight.
    Cancelled,
}

/// A seeding runtime bound to one reference and configuration.
///
/// Construction is the expensive step (one engine per reference
/// partition); every subsequent [`seed_reads`](SeedingSession::seed_reads)
/// call reuses the engines. Cloning a session is cheap and shares the
/// engines, the golden indexes, and the quarantine state.
///
/// ```
/// use casa_core::{CasaConfig, SeedingSession};
/// use casa_genome::synth::{generate_reference, ReferenceProfile};
///
/// let reference = generate_reference(&ReferenceProfile::human_like(), 4_000, 1);
/// let session = SeedingSession::new(&reference, CasaConfig::small(1_000), 2)?;
/// let read = reference.subseq(2_500, 40);
/// let run = session.seed_reads(std::slice::from_ref(&read));
/// assert!(run.smems[0][0].hits.contains(&2_500));
/// # Ok::<(), casa_core::Error>(())
/// ```
#[derive(Clone)]
pub struct SeedingSession {
    config: CasaConfig,
    /// Global start coordinate of each partition, indexed like `engines`.
    part_starts: Arc<Vec<u32>>,
    /// The partitions themselves (for the golden fallback index builds).
    parts: Arc<Vec<Partition>>,
    backend: BackendKind,
    engines: Arc<Vec<Mutex<Box<dyn SeedingBackend>>>>,
    /// Lazily built golden suffix arrays, one per partition.
    golden: Arc<Vec<OnceLock<SuffixArray>>>,
    /// Partitions routed to the golden model after retry exhaustion.
    quarantined: Arc<Vec<AtomicBool>>,
    plan: FaultPlan,
    fault_sites: Arc<FaultSites>,
    workers: usize,
    /// Watchdog deadline per tile attempt; `None` (the default) runs
    /// attempts unguarded on the worker thread.
    tile_deadline: Option<Duration>,
    /// Cooperative cancellation for in-flight batches, checked at tile
    /// boundaries; `None` (the default) never cancels. Clones share the
    /// token, so the watchdog's owned session copy observes it too.
    cancel: Option<CancelToken>,
    /// Whether session-level stages (coordinate translation, assembly,
    /// cross-partition merge) take wall-clock timestamps — shared across
    /// clones so the watchdog's owned session copy profiles too. Engine
    /// stages carry their own flag (see
    /// [`set_profiling`](Self::set_profiling)).
    profiling: Arc<AtomicBool>,
}

impl std::fmt::Debug for SeedingSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeedingSession")
            .field("config", &self.config)
            .field("backend", &self.backend)
            .field("partitions", &self.engines.len())
            .field("workers", &self.workers)
            .field("fault_plan", &self.plan)
            .finish()
    }
}

impl SeedingSession {
    /// Validates `config`, splits `reference`, and builds one engine per
    /// partition.
    ///
    /// If the [`CASA_FAULT_SEED`](faults::FAULT_SEED_ENV) environment
    /// variable is set, the CI fault profile
    /// ([`FaultPlan::ci_plan`]) is armed so the recovery paths are
    /// exercised; otherwise the session runs fault-free. If the
    /// [`CASA_BACKEND`](crate::BACKEND_ENV) environment variable is set,
    /// that seeding backend is built instead of the CAM default.
    ///
    /// # Errors
    ///
    /// * [`Error::Config`] if the configuration is inconsistent (including
    ///   a typed
    ///   [`ConfigError::UnknownSeedingBackend`](crate::ConfigError::UnknownSeedingBackend)
    ///   for an unrecognised `CASA_BACKEND` value);
    /// * [`Error::EmptyReference`] if `reference` has no bases;
    /// * [`Error::ZeroWorkers`] if `workers == 0`.
    pub fn new(
        reference: &PackedSeq,
        config: CasaConfig,
        workers: usize,
    ) -> Result<SeedingSession, Error> {
        let plan = FaultPlan::from_env().unwrap_or_default();
        SeedingSession::with_fault_plan(reference, config, workers, plan)
    }

    /// Like [`new`](Self::new) with an explicit fault plan: hardware
    /// faults are injected into the freshly built engines and scheduler
    /// faults armed for every batch.
    ///
    /// # Errors
    ///
    /// As [`new`](Self::new), plus [`Error::Config`] with
    /// [`ConfigError::BadFaultPlan`](crate::ConfigError::BadFaultPlan) if
    /// a plan rate lies outside `[0, 1]`.
    pub fn with_fault_plan(
        reference: &PackedSeq,
        config: CasaConfig,
        workers: usize,
        plan: FaultPlan,
    ) -> Result<SeedingSession, Error> {
        let backend = BackendKind::from_env()
            .map_err(crate::ConfigError::from)?
            .unwrap_or(BackendKind::Cam);
        SeedingSession::with_backend(reference, config, workers, plan, backend)
    }

    /// Like [`with_fault_plan`](Self::with_fault_plan) with an explicit
    /// seeding backend, ignoring the [`CASA_BACKEND`](crate::BACKEND_ENV)
    /// environment variable. Hardware faults are injected through the
    /// backend's [`inject_faults`](SeedingBackend::inject_faults) hook —
    /// a no-op on the software backends, which have no CAM lines or
    /// filter tables to corrupt (scheduler faults still apply).
    ///
    /// # Errors
    ///
    /// As [`with_fault_plan`](Self::with_fault_plan).
    pub fn with_backend(
        reference: &PackedSeq,
        config: CasaConfig,
        workers: usize,
        plan: FaultPlan,
        backend: BackendKind,
    ) -> Result<SeedingSession, Error> {
        if workers == 0 {
            return Err(Error::ZeroWorkers);
        }
        let plan = plan.validated()?;
        let config = config.validated()?;
        let partitions: Vec<Partition> = config.partitioning.split(reference);
        if partitions.is_empty() {
            return Err(Error::EmptyReference);
        }
        let part_starts = partitions.iter().map(|p| p.start as u32).collect();
        let mut engines = partitions
            .iter()
            .map(|p| build_backend(backend, &p.seq, config))
            .collect::<Result<Vec<_>, _>>()?;
        let mut fault_sites = FaultSites::default();
        for (pi, engine) in engines.iter_mut().enumerate() {
            let (cam, filter) =
                engine.inject_faults(&plan.cam_faults_for(pi), &plan.filter_faults_for(pi));
            fault_sites.cam.push(cam);
            fault_sites.filter.push(filter);
        }
        if plan.tile_panic_rate > 0.0 {
            faults::silence_injected_panics();
        }
        let nparts = partitions.len();
        Ok(SeedingSession {
            config,
            part_starts: Arc::new(part_starts),
            parts: Arc::new(partitions),
            backend,
            engines: Arc::new(engines.into_iter().map(Mutex::new).collect()),
            golden: Arc::new((0..nparts).map(|_| OnceLock::new()).collect()),
            quarantined: Arc::new((0..nparts).map(|_| AtomicBool::new(false)).collect()),
            plan,
            fault_sites: Arc::new(fault_sites),
            workers,
            tile_deadline: None,
            cancel: None,
            profiling: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Builds a session from a loaded index image instead of from scratch.
    ///
    /// For the CAM backend every reference-side array — CAM entry
    /// bitplanes, pre-seeding filter tables, golden suffix arrays — is
    /// borrowed straight from the image's read-only mapping: no table is
    /// rebuilt and no per-load copy is made, so construction cost is
    /// partition splitting plus page faults. The FM/ERT software baselines
    /// rebuild their private indexes from the image's reference text; the
    /// golden suffix arrays still come from the mapping. Either way the
    /// session is bit-identical to one built with
    /// [`with_backend`](Self::with_backend) from the same reference and
    /// config.
    ///
    /// Hardware fault injection works unchanged: the shared tables are
    /// copy-on-write, so arming a fault plan detaches the affected arrays
    /// into private heap copies without disturbing the mapping (or other
    /// sessions sharing it).
    ///
    /// # Errors
    ///
    /// As [`with_backend`](Self::with_backend), plus [`Error::Image`] if a
    /// section the CAM backend needs is missing or shaped wrong.
    pub fn from_image(
        index: &crate::image::LoadedIndex,
        workers: usize,
        plan: FaultPlan,
        backend: BackendKind,
    ) -> Result<SeedingSession, Error> {
        if workers == 0 {
            return Err(Error::ZeroWorkers);
        }
        let plan = plan.validated()?;
        let config = *index.config();
        let partitions: Vec<Partition> = config.partitioning.split(index.reference());
        if partitions.is_empty() {
            return Err(Error::EmptyReference);
        }
        let part_starts = partitions.iter().map(|p| p.start as u32).collect();
        let mut engines = partitions
            .iter()
            .map(|p| index.backend_for_partition(backend, p, config))
            .collect::<Result<Vec<_>, _>>()?;
        let mut fault_sites = FaultSites::default();
        for (pi, engine) in engines.iter_mut().enumerate() {
            let (cam, filter) =
                engine.inject_faults(&plan.cam_faults_for(pi), &plan.filter_faults_for(pi));
            fault_sites.cam.push(cam);
            fault_sites.filter.push(filter);
        }
        if plan.tile_panic_rate > 0.0 {
            faults::silence_injected_panics();
        }
        let nparts = partitions.len();
        let golden: Vec<OnceLock<SuffixArray>> = partitions
            .iter()
            .map(|p| {
                let cell = OnceLock::new();
                if let Some(sa) = index.suffix_array_for_partition(p) {
                    let _ = cell.set(sa);
                }
                cell
            })
            .collect();
        Ok(SeedingSession {
            config,
            part_starts: Arc::new(part_starts),
            parts: Arc::new(partitions),
            backend,
            engines: Arc::new(engines.into_iter().map(Mutex::new).collect()),
            golden: Arc::new(golden),
            quarantined: Arc::new((0..nparts).map(|_| AtomicBool::new(false)).collect()),
            plan,
            fault_sites: Arc::new(fault_sites),
            workers,
            tile_deadline: None,
            cancel: None,
            profiling: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Enables per-stage wall-clock profiling (see [`crate::profile`]) on
    /// this session and every partition backend; spans accumulate into
    /// [`SeedingStats::profile`]. Off by default — timings are
    /// nondeterministic and excluded from the bit-identity contract, so
    /// runs compared for equality keep this off.
    pub fn set_profiling(&self, enabled: bool) {
        self.profiling.store(enabled, Ordering::Relaxed);
        for engine in self.engines.iter() {
            lock_recover(engine).set_profiling(enabled);
        }
    }

    /// Whether per-stage profiling is enabled.
    pub fn profiling(&self) -> bool {
        self.profiling.load(Ordering::Relaxed)
    }

    /// Routes every partition engine through the batched pre-seeding
    /// lookup pass (`true`, the default) or the per-pivot seed path
    /// (`false`). Outputs and stats are bit-identical either way; the
    /// `stage_profile` experiment flips this to measure the before/after
    /// of the batching optimization. No-op on the software backends.
    pub fn set_batched_filter(&self, batched: bool) {
        for engine in self.engines.iter() {
            lock_recover(engine).set_batched_filter(batched);
        }
    }

    /// Sets (or clears) the watchdog deadline for tile attempts.
    ///
    /// With a deadline, every attempt runs on a supervised thread and is
    /// abandoned when the deadline expires; the abandoned attempt is
    /// counted in [`SeedingStats::deadline_stalls`] and the tile is
    /// retried — then quarantined to the golden model — exactly like a
    /// panicking attempt, so output stays bit-identical. The deadline
    /// never changes results, only how stalls are detected, which is why
    /// the streaming checkpoint fingerprint excludes it.
    pub fn with_tile_deadline(mut self, deadline: Option<Duration>) -> SeedingSession {
        self.tile_deadline = deadline;
        self
    }

    /// The active watchdog deadline, if any.
    pub fn tile_deadline(&self) -> Option<Duration> {
        self.tile_deadline
    }

    /// Sets (or clears) a cooperative cancellation token for this
    /// session's batches. Workers check the token at tile boundaries —
    /// and the watchdog checks it every millisecond while a guarded
    /// attempt is in flight — so a cancelled batch stops within roughly
    /// one tile's work. A cancelled
    /// [`try_seed_reads`](Self::try_seed_reads) returns
    /// [`Error::Cancelled`]; the partial work is discarded, never routed
    /// through the golden fallback. Like the tile deadline, the token
    /// never changes what a completed batch computes.
    pub fn with_cancel_token(mut self, token: Option<CancelToken>) -> SeedingSession {
        self.cancel = token;
        self
    }

    /// A clone of the session's cancel token, if one is set.
    pub fn cancel_token(&self) -> Option<CancelToken> {
        self.cancel.clone()
    }

    /// Whether the session's cancel token (if any) has fired.
    fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// The session configuration.
    pub fn config(&self) -> &CasaConfig {
        &self.config
    }

    /// The seeding backend every partition is driven through. Like the
    /// tile deadline, the backend never changes results — all backends
    /// emit the identical SMEM stream — so the streaming checkpoint
    /// fingerprint excludes it.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The active fault plan (all-zero rates when fault-free).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The hardware fault sites injected at construction, per partition.
    pub fn fault_sites(&self) -> &FaultSites {
        &self.fault_sites
    }

    /// Number of reference partitions (passes per read batch).
    pub fn partition_count(&self) -> usize {
        self.engines.len()
    }

    /// Number of partitions currently quarantined to the golden model.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined
            .iter()
            .filter(|q| q.load(Ordering::Relaxed))
            .count()
    }

    /// Worker threads used per batch.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Routes every partition engine's CAM searches through the scalar
    /// reference kernel (`true`) or the bit-parallel kernel (`false`, the
    /// default). Both produce identical SMEMs and statistics; the scalar
    /// model is kept as the verification oracle and baseline for the
    /// kernel harness. No-op on the software backends.
    pub fn set_scalar_search(&self, scalar: bool) {
        for engine in self.engines.iter() {
            lock_recover(engine).set_scalar_search(scalar);
        }
    }

    /// Pins every partition engine's CAM word kernel to `backend`,
    /// overriding the process default (`CASA_KERNEL` or runtime CPU
    /// detection). All backends produce identical SMEMs and statistics;
    /// callers must reject unsupported backends first (see
    /// [`casa_cam::KernelBackend::ensure_supported`]). No-op on the
    /// software backends.
    pub fn set_kernel_backend(&self, backend: casa_cam::KernelBackend) {
        for engine in self.engines.iter() {
            lock_recover(engine).set_kernel_backend(backend);
        }
    }

    /// The CAM word kernel the partition engines are currently routed
    /// through (every engine shares one backend); software backends
    /// report the process default, which they never execute.
    pub fn kernel_backend(&self) -> casa_cam::KernelBackend {
        self.engines
            .first()
            .map_or_else(casa_cam::kernel::default_backend, |e| {
                lock_recover(e).kernel_backend()
            })
    }

    /// Read count per tile for a batch of `n` reads: enough tiles to keep
    /// every worker busy, never less than one read.
    fn tile_len(&self, n: usize) -> usize {
        n.div_ceil(self.workers * TILES_PER_WORKER).max(1)
    }

    /// Seeds one read through the golden FM-index model of partition `pi`,
    /// hits translated to global coordinates — the quarantine fallback and
    /// the cross-check reference. Builds the partition's suffix array on
    /// first use.
    fn golden_read(&self, pi: usize, read: &PackedSeq) -> Vec<Smem> {
        let sa = self.golden[pi].get_or_init(|| SuffixArray::build(&self.parts[pi].seq));
        let mut smems = smems_unidirectional(sa, read, self.config.min_smem_len);
        let start = self.part_starts[pi];
        for smem in &mut smems {
            for hit in &mut smem.hits {
                *hit += start;
            }
        }
        smems
    }

    /// One attempt at a (partition, tile) job: inject any scheduled
    /// stall/panic, seed the tile through the partition engine, then
    /// cross-check the sampled reads against the golden model.
    fn attempt_tile(
        &self,
        pi: usize,
        ti: usize,
        attempt: usize,
        tile: &[PackedSeq],
        codes: Option<&TileKmerCodes>,
        read_offset: usize,
    ) -> Result<(Vec<Vec<Smem>>, SeedingStats), CrossCheckMismatch> {
        if !self.plan.is_noop() {
            if self.plan.should_stall(pi, ti, attempt) {
                std::thread::sleep(self.plan.stall_duration());
            }
            if self.plan.should_panic(pi, ti, attempt) {
                // Fires before the engine lock is taken, so injected
                // panics never poison an engine mid-read.
                std::panic::panic_any(InjectedFault {
                    partition: pi,
                    tile: ti,
                    attempt,
                });
            }
        }
        let mut stats = SeedingStats::default();
        let start = self.part_starts[pi];
        let mut out: Vec<Vec<Smem>> = Vec::with_capacity(tile.len());
        {
            let mut engine = lock_recover(&self.engines[pi]);
            match codes {
                // The batch precomputed this tile's rolling k-mer codes
                // once; every partition engine consumes the same slice
                // instead of re-deriving it (output and stats are
                // bit-identical either way).
                Some(codes) => engine.seed_tile_with_codes_into(tile, codes, &mut stats, &mut out),
                None => engine.seed_tile_into(tile, &mut stats, &mut out),
            }
        }
        let t = StageTimer::start(self.profiling());
        for smems in &mut out {
            for smem in smems {
                for hit in &mut smem.hits {
                    *hit += start;
                }
            }
        }
        t.stop(&mut stats.profile, Stage::TranslateMerge);
        if self.plan.cross_check_fraction > 0.0 {
            for (k, read) in tile.iter().enumerate() {
                if self.plan.should_check(pi, read_offset + k) {
                    stats.crosscheck_reads += 1;
                    if out[k] != self.golden_read(pi, read) {
                        return Err(CrossCheckMismatch);
                    }
                }
            }
        }
        Ok((out, stats))
    }

    /// One tile attempt behind whatever supervision is configured: a bare
    /// `catch_unwind` without a deadline, the watchdog thread with one.
    /// Both paths report panics identically; only the watchdog can
    /// additionally report a timeout.
    fn guarded_attempt(
        &self,
        pi: usize,
        ti: usize,
        attempt: usize,
        tile: &[PackedSeq],
        codes: Option<&TileKmerCodes>,
        read_offset: usize,
    ) -> AttemptOutcome {
        match self.tile_deadline {
            None => match catch_unwind(AssertUnwindSafe(|| {
                self.attempt_tile(pi, ti, attempt, tile, codes, read_offset)
            })) {
                Ok(Ok((out, stats))) => AttemptOutcome::Done(out, Box::new(stats)),
                Ok(Err(CrossCheckMismatch)) => AttemptOutcome::Mismatch,
                Err(_panic) => AttemptOutcome::Panicked,
            },
            Some(deadline) => {
                // The guarded job runs on its own thread and may outlive
                // the deadline, so it gets owned copies: a cheap session
                // clone (shared `Arc`s) and the tile's reads. An abandoned
                // attempt may still advance an engine's cumulative
                // counters, which the delta-based accounting tolerates
                // (see the module docs). The shared codes are dropped
                // rather than cloned — the engine re-derives them, with
                // bit-identical output and stats — so the supervised path
                // never copies a whole tile's code table per attempt.
                let session = self.clone();
                let tile = tile.to_vec();
                match supervisor::run_with_deadline(deadline, self.cancel.as_ref(), move || {
                    session.attempt_tile(pi, ti, attempt, &tile, None, read_offset)
                }) {
                    GuardedOutcome::Completed(Ok((out, stats))) => {
                        AttemptOutcome::Done(out, Box::new(stats))
                    }
                    GuardedOutcome::Completed(Err(CrossCheckMismatch)) => AttemptOutcome::Mismatch,
                    GuardedOutcome::Panicked => AttemptOutcome::Panicked,
                    GuardedOutcome::TimedOut => AttemptOutcome::TimedOut,
                    GuardedOutcome::Cancelled => AttemptOutcome::Cancelled,
                }
            }
        }
    }

    /// Runs a (partition, tile) job to a definitive result: retry failed
    /// attempts with capped backoff, then quarantine the partition and
    /// fall back to the golden model. Only the successful attempt's engine
    /// stats are merged, so failed attempts never skew the activity
    /// counters.
    fn run_tile(
        &self,
        pi: usize,
        ti: usize,
        tile: &[PackedSeq],
        codes: Option<&TileKmerCodes>,
        read_offset: usize,
        stats: &mut SeedingStats,
    ) -> Vec<Vec<Smem>> {
        let attempts = self.plan.max_retries.saturating_add(1);
        for attempt in 0..attempts {
            if self.is_cancelled() {
                // The batch is being abandoned: hand back a placeholder
                // (the caller discards every slot on cancellation) and
                // never route a cancelled tile into the golden fallback.
                return vec![Vec::new(); tile.len()];
            }
            if self.quarantined[pi].load(Ordering::Relaxed) {
                // The partition already failed elsewhere; skip the doomed
                // attempts and go straight to the fallback.
                break;
            }
            match self.guarded_attempt(pi, ti, attempt, tile, codes, read_offset) {
                AttemptOutcome::Done(out, attempt_stats) => {
                    stats.merge(&attempt_stats);
                    return out;
                }
                AttemptOutcome::Mismatch => {
                    stats.tile_retries += 1;
                    stats.crosscheck_mismatches += 1;
                }
                AttemptOutcome::Panicked => {
                    stats.tile_retries += 1;
                }
                AttemptOutcome::TimedOut => {
                    // A stall caught by the watchdog, not a crash: counted
                    // apart from panic retries so operators can tell
                    // hangs from faults.
                    stats.deadline_stalls += 1;
                    crate::log_warn!(
                        "tile ({pi}, {ti}) attempt {attempt} exceeded the watchdog deadline"
                    );
                }
                AttemptOutcome::Cancelled => {
                    return vec![Vec::new(); tile.len()];
                }
            }
            if attempt + 1 < attempts && !self.is_cancelled() {
                // Capped exponential with deterministic per-site jitter:
                // simultaneous retries across partitions desynchronize
                // instead of hammering the scheduler in lockstep (see
                // `FaultPlan::retry_backoff`).
                std::thread::sleep(self.plan.retry_backoff(pi, ti, attempt));
            }
        }
        if !self.quarantined[pi].swap(true, Ordering::Relaxed) {
            stats.partitions_quarantined += 1;
        }
        stats.fallback_reads += tile.len() as u64;
        tile.iter().map(|read| self.golden_read(pi, read)).collect()
    }

    /// Seeds a read batch against every partition and merges the results.
    ///
    /// Output is bit-identical to the serial reference path regardless of
    /// `workers` (see the module docs); under an active fault plan the
    /// recovery machinery preserves that equality (exactly, for crash
    /// faults; given `cross_check_fraction == 1.0`, for silent faults).
    /// Never panics: if the scheduler itself ends in an unrecoverable
    /// state, the whole batch is re-seeded through the golden model. A
    /// cancelled batch (see [`with_cancel_token`](Self::with_cancel_token))
    /// is the one exception: it returns an empty result per read — the
    /// caller asked for the work to stop, so the expensive golden path
    /// must not run either.
    pub fn seed_reads(&self, reads: &[PackedSeq]) -> CasaRun {
        match self.try_seed_reads(reads) {
            Ok(run) => run,
            Err(Error::Cancelled) => CasaRun {
                smems: vec![Vec::new(); reads.len()],
                stats: SeedingStats::default(),
                config: self.config,
            },
            Err(_) => self.golden_batch(reads),
        }
    }

    /// Like [`seed_reads`](Self::seed_reads), reporting unrecoverable
    /// scheduler states instead of falling back.
    ///
    /// # Errors
    ///
    /// * [`Error::Runtime`] if a job slot is empty after the batch — a
    ///   scheduler invariant violation, not an injected fault (those are
    ///   recovered internally);
    /// * [`Error::Cancelled`] if the session's cancel token fired before
    ///   the batch finished (the partial work is discarded).
    pub fn try_seed_reads(&self, reads: &[PackedSeq]) -> Result<CasaRun, Error> {
        if self.is_cancelled() {
            return Err(Error::Cancelled);
        }
        let nparts = self.engines.len();
        let tile_len = self.tile_len(reads.len());
        let ntiles = reads.len().div_ceil(tile_len);
        let njobs = nparts * ntiles;

        // Rolling k-mer codes, once per tile: every partition engine
        // consumes the identical code sequence for the identical reads,
        // so deriving them inside each (partition, tile) job would
        // multiply the extraction work by the partition count. Software
        // backends never read codes — skip the precomputation entirely.
        let mut precomputed = crate::StageProfile::default();
        let tile_codes: Vec<TileKmerCodes> = if self.backend == BackendKind::Cam {
            let t = StageTimer::start(self.profiling());
            let k = self.config.filter.k;
            let codes = (0..ntiles)
                .map(|ti| {
                    let tile = &reads[ti * tile_len..((ti + 1) * tile_len).min(reads.len())];
                    TileKmerCodes::compute(tile, k)
                })
                .collect();
            t.stop(&mut precomputed, Stage::KmerCodes);
            codes
        } else {
            Vec::new()
        };

        // One slot per (partition, tile) job; workers claim job ids off a
        // shared counter. Job ids are tile-major (`ti * nparts + pi`) so
        // consecutive claims hit different partition engines and rarely
        // contend on the same lock.
        let slots: Vec<Mutex<Option<Vec<Vec<Smem>>>>> =
            (0..njobs).map(|_| Mutex::new(None)).collect();
        let next_job = AtomicUsize::new(0);
        let merged_stats = Mutex::new(SeedingStats::default());

        let run_jobs = |local_stats: &mut SeedingStats| loop {
            if self.is_cancelled() {
                break;
            }
            let job = next_job.fetch_add(1, Ordering::Relaxed);
            if job >= njobs {
                break;
            }
            let pi = job % nparts;
            let ti = job / nparts;
            let tile = &reads[ti * tile_len..((ti + 1) * tile_len).min(reads.len())];
            let out = self.run_tile(pi, ti, tile, tile_codes.get(ti), ti * tile_len, local_stats);
            *lock_recover(&slots[job]) = Some(out);
        };

        let mut stats = if self.workers == 1 {
            // Single worker: run the job loop inline. Same job order and
            // identical output/stats as the spawned path (slots make order
            // irrelevant anyway); skipping the per-batch thread
            // spawn/join keeps small batches out of the scheduler.
            let mut local_stats = SeedingStats::default();
            run_jobs(&mut local_stats);
            local_stats
        } else {
            std::thread::scope(|scope| {
                for _ in 0..self.workers.min(njobs.max(1)) {
                    scope.spawn(|| {
                        let mut local_stats = SeedingStats::default();
                        run_jobs(&mut local_stats);
                        lock_recover(&merged_stats).merge(&local_stats);
                    });
                }
            });
            merged_stats
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        };
        // A cancelled batch stops here: slots may be partially filled (or
        // hold placeholder output from cancelled tiles), so assembling
        // them would produce wrong results. Discard everything instead.
        if self.is_cancelled() {
            return Err(Error::Cancelled);
        }
        // The shared code extraction happened outside the job loop; fold
        // its span in so KmerCodes stays accounted for under profiling.
        stats.profile.merge(&precomputed);
        // Read batch streams in once (2-bit packed + header), exactly as in
        // the serial path.
        for read in reads {
            stats.dram_bytes += read.len().div_ceil(4) as u64 + 8;
        }

        // Assemble each read's per-partition results in partition order
        // and merge across partitions, exactly like the serial path — but
        // zero-copy: every tile's slot vectors are drained straight into
        // one reused flat scratch per read instead of a per-read
        // `Vec<Vec<Smem>>` of clones.
        let t = StageTimer::start(self.profiling());
        let mut smems: Vec<Vec<Smem>> = Vec::with_capacity(reads.len());
        let mut flat: Vec<Smem> = Vec::new();
        let mut tile_outs: Vec<Vec<Vec<Smem>>> = Vec::with_capacity(nparts);
        for ti in 0..ntiles {
            tile_outs.clear();
            for pi in 0..nparts {
                let out = lock_recover(&slots[ti * nparts + pi])
                    .take()
                    .ok_or(Error::Runtime {
                        what: "job slot empty after batch",
                    })?;
                tile_outs.push(out);
            }
            let tile_reads = ((ti + 1) * tile_len).min(reads.len()) - ti * tile_len;
            for k in 0..tile_reads {
                flat.clear();
                for part_out in &mut tile_outs {
                    flat.append(&mut part_out[k]);
                }
                smems.push(merge_flat_smems(&mut flat));
            }
        }
        t.stop(&mut stats.profile, Stage::TranslateMerge);
        Ok(CasaRun {
            smems,
            stats,
            config: self.config,
        })
    }

    /// Seeds the whole batch through the golden model — the last-resort
    /// path of [`seed_reads`](Self::seed_reads).
    fn golden_batch(&self, reads: &[PackedSeq]) -> CasaRun {
        let nparts = self.engines.len();
        let mut stats = SeedingStats::default();
        let mut per_read_parts: Vec<Vec<Vec<Smem>>> = vec![Vec::new(); reads.len()];
        for pi in 0..nparts {
            for (ri, read) in reads.iter().enumerate() {
                per_read_parts[ri].push(self.golden_read(pi, read));
            }
            stats.fallback_reads += reads.len() as u64;
        }
        for read in reads {
            stats.dram_bytes += read.len().div_ceil(4) as u64 + 8;
        }
        let smems = per_read_parts
            .into_iter()
            .map(merge_partition_smems)
            .collect();
        CasaRun {
            smems,
            stats,
            config: self.config,
        }
    }

    /// Seeds the batch in both orientations (each read and its reverse
    /// complement), as the hardware does.
    pub fn seed_reads_both_strands(&self, reads: &[PackedSeq]) -> StrandedRun {
        let rc: Vec<PackedSeq> = reads.iter().map(PackedSeq::reverse_complement).collect();
        StrandedRun {
            forward: self.seed_reads(reads),
            reverse: self.seed_reads(&rc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ConfigError;
    use casa_genome::synth::{generate_reference, ReferenceProfile};
    use casa_genome::{ReadSimConfig, ReadSimulator};

    fn reads_for(reference: &PackedSeq, n: usize, read_len: usize, seed: u64) -> Vec<PackedSeq> {
        let sim = ReadSimulator::new(
            ReadSimConfig {
                read_len,
                ..ReadSimConfig::default()
            },
            seed,
        );
        sim.simulate(reference, n)
            .into_iter()
            .map(|r| r.seq)
            .collect()
    }

    fn env_faults_off() -> bool {
        std::env::var_os(faults::FAULT_SEED_ENV).is_none()
    }

    /// True unless CI pinned `CASA_BACKEND` to a software backend: tests
    /// that assert CAM activity stats or injected CAM/filter fault sites
    /// only hold on the CAM backend.
    fn env_backend_is_cam() -> bool {
        matches!(
            BackendKind::from_env(),
            Ok(None) | Ok(Some(BackendKind::Cam))
        )
    }

    #[test]
    fn constructor_reports_typed_errors() {
        let reference = generate_reference(&ReferenceProfile::uniform(), 1_000, 3);
        let config = CasaConfig::small(500);
        assert_eq!(
            SeedingSession::new(&reference, config, 0).unwrap_err(),
            Error::ZeroWorkers
        );
        let empty = PackedSeq::from_ascii(b"").unwrap();
        assert_eq!(
            SeedingSession::new(&empty, config, 1).unwrap_err(),
            Error::EmptyReference
        );
        let mut bad = config;
        bad.lanes = 0;
        assert_eq!(
            SeedingSession::new(&reference, bad, 1).unwrap_err(),
            Error::Config(ConfigError::ZeroLanes)
        );
        let bad_plan = FaultPlan {
            tile_panic_rate: 7.0,
            ..FaultPlan::default()
        };
        assert_eq!(
            SeedingSession::with_fault_plan(&reference, config, 1, bad_plan).unwrap_err(),
            Error::Config(ConfigError::BadFaultPlan {
                reason: "tile_panic_rate"
            })
        );
    }

    #[test]
    fn matches_serial_path_at_various_worker_counts() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 4_000, 17);
        let mut config = CasaConfig::small(700);
        config.partitioning = casa_genome::PartitionScheme::new(700, 60);
        let reads = reads_for(&reference, 30, 44, 5);
        let serial = crate::CasaAccelerator::new(&reference, config)
            .expect("valid config")
            .seed_reads_serial(&reads);
        for workers in [1, 2, 8] {
            let session = SeedingSession::new(&reference, config, workers).expect("valid config");
            let run = session.seed_reads(&reads);
            assert_eq!(run.smems, serial.smems, "{workers} workers");
            if !env_backend_is_cam() {
                // The serial path is CAM-concrete: a pinned software
                // backend matches its SMEMs (asserted above) but not its
                // CAM activity counters.
            } else if env_faults_off() {
                assert_eq!(run.stats, serial.stats, "{workers} workers");
            } else {
                // The CI fault plan adds recovery bookkeeping but never
                // perturbs the engine-activity stats (its only fault
                // classes are recovered panics and stalls).
                assert_eq!(
                    run.stats.without_recovery(),
                    serial.stats,
                    "{workers} workers"
                );
            }
        }
    }

    #[test]
    fn engines_are_reused_across_batches() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 3_000, 9);
        let config = CasaConfig::small(1_000);
        let session = SeedingSession::new(&reference, config, 2).expect("valid config");
        let reads = reads_for(&reference, 12, 40, 2);
        let first = session.seed_reads(&reads);
        let second = session.seed_reads(&reads);
        // Same batch, same engines: identical output and identical stat
        // deltas (no drift from reuse). Holds under the CI fault plan too:
        // fault decisions hash (partition, tile, attempt), not batch
        // history, so both batches retry identically.
        assert_eq!(first.smems, second.smems);
        assert_eq!(first.stats, second.stats);
    }

    #[test]
    fn empty_batch_yields_empty_run() {
        let reference = generate_reference(&ReferenceProfile::uniform(), 1_200, 4);
        let session =
            SeedingSession::new(&reference, CasaConfig::small(600), 3).expect("valid config");
        let run = session.seed_reads(&[]);
        assert!(run.smems.is_empty());
        assert_eq!(run.stats, SeedingStats::default());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let reference = generate_reference(&ReferenceProfile::uniform(), 900, 8);
        let session =
            SeedingSession::new(&reference, CasaConfig::small(900), 16).expect("valid config");
        let read = reference.subseq(100, 40);
        let run = session.seed_reads(std::slice::from_ref(&read));
        assert_eq!(run.smems.len(), 1);
        assert!(run.smems[0][0].hits.contains(&100));
    }

    #[test]
    fn cancel_token_stops_batches_without_golden_fallback() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 3_000, 9);
        let config = CasaConfig::small(1_000);
        let reads = reads_for(&reference, 12, 40, 2);
        let baseline = SeedingSession::new(&reference, config, 2)
            .expect("valid config")
            .seed_reads(&reads);
        let token = CancelToken::new();
        let session = SeedingSession::new(&reference, config, 2)
            .expect("valid config")
            .with_cancel_token(Some(token.clone()));
        assert!(session.cancel_token().is_some());
        // An un-fired token changes nothing.
        assert_eq!(session.seed_reads(&reads).smems, baseline.smems);
        token.cancel();
        assert_eq!(
            session.try_seed_reads(&reads).unwrap_err(),
            Error::Cancelled
        );
        // The infallible wrapper returns empty results — crucially *not*
        // the golden fallback, whose per-partition index builds would
        // defeat the point of cancelling.
        let cancelled = session.seed_reads(&reads);
        assert_eq!(cancelled.smems.len(), reads.len());
        assert!(cancelled.smems.iter().all(Vec::is_empty));
        assert_eq!(cancelled.stats.fallback_reads, 0);
    }

    #[test]
    fn cancel_token_aborts_watchdogged_sessions() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 3_000, 9);
        let config = CasaConfig::small(1_000);
        let reads = reads_for(&reference, 12, 40, 2);
        let token = CancelToken::new();
        token.cancel();
        let session = SeedingSession::new(&reference, config, 2)
            .expect("valid config")
            .with_tile_deadline(Some(Duration::from_secs(30)))
            .with_cancel_token(Some(token));
        // A pre-cancelled session must return promptly (never waiting out
        // the 30 s deadline) and leave no quarantine side effects.
        assert_eq!(
            session.try_seed_reads(&reads).unwrap_err(),
            Error::Cancelled
        );
        assert_eq!(session.quarantined_count(), 0);
    }

    #[test]
    fn injected_panics_recover_bit_identically() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 4_000, 23);
        let mut config = CasaConfig::small(700);
        config.partitioning = casa_genome::PartitionScheme::new(700, 60);
        let reads = reads_for(&reference, 40, 44, 8);
        let clean = SeedingSession::with_fault_plan(&reference, config, 4, FaultPlan::default())
            .expect("valid config")
            .seed_reads(&reads);
        let plan = FaultPlan {
            seed: 42,
            tile_panic_rate: 0.3,
            tile_stall_rate: 0.1,
            max_retries: 8,
            ..FaultPlan::default()
        };
        let session =
            SeedingSession::with_fault_plan(&reference, config, 4, plan).expect("valid plan");
        let run = session.seed_reads(&reads);
        assert_eq!(run.smems, clean.smems);
        assert!(run.stats.tile_retries > 0, "panics should have fired");
        // Crash faults never perturb the engine-activity stats.
        assert_eq!(run.stats.without_recovery(), clean.stats);
    }

    #[test]
    fn deadline_stalls_recover_bit_identically_and_count_apart() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 4_000, 23);
        let mut config = CasaConfig::small(700);
        config.partitioning = casa_genome::PartitionScheme::new(700, 60);
        let reads = reads_for(&reference, 40, 44, 8);
        let clean = SeedingSession::with_fault_plan(&reference, config, 4, FaultPlan::default())
            .expect("valid config")
            .seed_reads(&reads);
        // Stalls of 40 ms against a 4 ms watchdog deadline: every injected
        // stall must be caught by the deadline, not by chance.
        let plan = FaultPlan {
            seed: 42,
            tile_stall_rate: 0.3,
            tile_stall_ms: 40.0,
            max_retries: 6,
            ..FaultPlan::default()
        };
        let session = SeedingSession::with_fault_plan(&reference, config, 4, plan)
            .expect("valid plan")
            .with_tile_deadline(Some(Duration::from_millis(4)));
        assert_eq!(session.tile_deadline(), Some(Duration::from_millis(4)));
        let run = session.seed_reads(&reads);
        assert_eq!(run.smems, clean.smems, "recovery must be bit-identical");
        assert!(run.stats.deadline_stalls > 0, "stalls should have fired");
        assert_eq!(
            run.stats.tile_retries, 0,
            "pure stalls are not panic retries"
        );
        assert_eq!(run.stats.without_recovery(), clean.stats);
    }

    #[test]
    fn silent_faults_with_full_cross_check_recover_bit_identically() {
        if !env_backend_is_cam() {
            // Hardware fault injection targets CAM lines and filter
            // tables; the software backends have neither.
            return;
        }
        let reference = generate_reference(&ReferenceProfile::human_like(), 3_000, 31);
        let mut config = CasaConfig::small(600);
        config.partitioning = casa_genome::PartitionScheme::new(600, 60);
        let reads = reads_for(&reference, 25, 44, 11);
        let clean = SeedingSession::with_fault_plan(&reference, config, 3, FaultPlan::default())
            .expect("valid config")
            .seed_reads(&reads);
        let plan = FaultPlan {
            seed: 7,
            cam_stuck_rate: 0.3,
            cam_flip_rate: 2e-3,
            filter_flip_rate: 1e-3,
            cross_check_fraction: 1.0,
            max_retries: 1,
            only_partition: Some(0),
            ..FaultPlan::default()
        };
        let session =
            SeedingSession::with_fault_plan(&reference, config, 3, plan).expect("valid plan");
        assert!(
            session.fault_sites().total() > 0,
            "expected injected hardware fault sites"
        );
        let run = session.seed_reads(&reads);
        assert_eq!(
            run.smems, clean.smems,
            "golden fallback must restore output"
        );
        assert!(run.stats.crosscheck_reads > 0);
        assert!(
            run.stats.crosscheck_mismatches > 0,
            "a 30% stuck-line rate must corrupt something"
        );
        assert_eq!(run.stats.partitions_quarantined, 1);
        assert!(run.stats.fallback_reads > 0);
        assert_eq!(session.quarantined_count(), 1);
    }

    #[test]
    fn fault_sites_are_reproducible_across_sessions() {
        if !env_backend_is_cam() {
            return;
        }
        let reference = generate_reference(&ReferenceProfile::human_like(), 2_000, 13);
        let config = CasaConfig::small(500);
        let plan = FaultPlan {
            seed: 99,
            cam_stuck_rate: 0.02,
            cam_flip_rate: 1e-3,
            filter_flip_rate: 1e-3,
            ..FaultPlan::default()
        };
        let a = SeedingSession::with_fault_plan(&reference, config, 1, plan).expect("valid");
        let b = SeedingSession::with_fault_plan(&reference, config, 4, plan).expect("valid");
        assert_eq!(a.fault_sites(), b.fault_sites());
        assert!(a.fault_sites().total() > 0);
        assert_eq!(a.fault_sites().cam.len(), a.partition_count());
    }

    #[test]
    fn every_backend_session_emits_identical_smems() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 4_000, 41);
        let mut config = CasaConfig::small(700);
        config.partitioning = casa_genome::PartitionScheme::new(700, 60);
        let reads = reads_for(&reference, 24, 44, 19);
        let cam = SeedingSession::with_backend(
            &reference,
            config,
            2,
            FaultPlan::default(),
            BackendKind::Cam,
        )
        .expect("valid config")
        .seed_reads(&reads);
        for kind in [BackendKind::Fm, BackendKind::Ert] {
            let session =
                SeedingSession::with_backend(&reference, config, 2, FaultPlan::default(), kind)
                    .expect("valid config");
            assert_eq!(session.backend(), kind);
            let run = session.seed_reads(&reads);
            assert_eq!(run.smems, cam.smems, "{kind} diverged from cam");
            assert_eq!(run.stats.read_passes, cam.stats.read_passes, "{kind}");
            assert_eq!(run.stats.smems_reported, cam.stats.smems_reported, "{kind}");
        }
    }

    #[test]
    fn software_backends_record_empty_fault_sites_per_partition() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 2_000, 13);
        let config = CasaConfig::small(500);
        let plan = FaultPlan {
            seed: 99,
            cam_stuck_rate: 0.02,
            cam_flip_rate: 1e-3,
            filter_flip_rate: 1e-3,
            ..FaultPlan::default()
        };
        let session = SeedingSession::with_backend(&reference, config, 2, plan, BackendKind::Fm)
            .expect("valid config");
        // Sites stay indexed per partition so diagnostics line up, but a
        // software backend has nothing to corrupt.
        assert_eq!(session.fault_sites().cam.len(), session.partition_count());
        assert_eq!(session.fault_sites().total(), 0);
    }

    #[test]
    fn scheduler_faults_recover_on_every_backend() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 3_000, 29);
        let mut config = CasaConfig::small(600);
        config.partitioning = casa_genome::PartitionScheme::new(600, 60);
        let reads = reads_for(&reference, 20, 44, 3);
        let plan = FaultPlan {
            seed: 23,
            tile_panic_rate: 0.3,
            max_retries: 8,
            ..FaultPlan::default()
        };
        for kind in BackendKind::ALL {
            let clean =
                SeedingSession::with_backend(&reference, config, 3, FaultPlan::default(), kind)
                    .expect("valid config")
                    .seed_reads(&reads);
            let run = SeedingSession::with_backend(&reference, config, 3, plan, kind)
                .expect("valid plan")
                .seed_reads(&reads);
            assert_eq!(run.smems, clean.smems, "{kind} recovery diverged");
            assert!(run.stats.tile_retries > 0, "{kind}: panics should fire");
        }
    }
}
