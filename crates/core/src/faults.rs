//! Deterministic, seeded fault injection for the seeding runtime.
//!
//! CASA is a hardware model, so faults are part of the territory: CAM
//! arrays suffer stuck-at match lines and cell bit flips (BioSEAL and
//! ASMCap budget redundant rows for exactly this), filter SRAM rows flip
//! bits, and a software worker tile can panic or stall. A [`FaultPlan`]
//! injects all of these from one `u64` seed:
//!
//! * **CAM faults** — per-partition [`CamFaultModel`]s applied to the
//!   computing CAM at session construction;
//! * **filter faults** — per-partition [`FilterFaultModel`]s corrupting
//!   data-array indicators;
//! * **scheduler faults** — per-(partition, tile, attempt) panics and
//!   stalls injected into the session's job loop.
//!
//! Every fault site is chosen by hashing `(seed, site coordinates)` with
//! [`casa_genome::mix::site_hash`], never by drawing from a shared RNG, so
//! the injected sites are identical at any worker count and on any retry
//! schedule. The recovery machinery lives in
//! [`SeedingSession`](crate::SeedingSession); see `DESIGN.md` for the
//! retry/quarantine state machine and the golden-fallback correctness
//! argument.

use std::sync::Once;
use std::time::Duration;

use casa_cam::{CamFaultModel, CamFaultReport};
use casa_filter::{FilterFaultModel, FilterFaultReport};
use casa_genome::mix::{coin, site_hash};
use serde::{Deserialize, Serialize};

use crate::error::{ConfigError, Error};

// Site-hash domain tags: one per fault class, so e.g. the panic decision
// for tile (2, 3) is independent of the stall decision for the same tile.
const DOMAIN_TILE_PANIC: u64 = 0x31;
const DOMAIN_TILE_STALL: u64 = 0x32;
const DOMAIN_CROSS_CHECK: u64 = 0x33;
const DOMAIN_PART_CAM: u64 = 0x34;
const DOMAIN_PART_FILTER: u64 = 0x35;
const DOMAIN_RETRY_JITTER: u64 = 0x36;

/// Upper bound on a single retry-backoff sleep.
pub const MAX_RETRY_BACKOFF: Duration = Duration::from_millis(2);

/// Environment variable that arms a CI-profile fault plan in
/// [`SeedingSession::new`](crate::SeedingSession::new) (value = seed).
pub const FAULT_SEED_ENV: &str = "CASA_FAULT_SEED";

/// A seeded description of which faults to inject and how hard the
/// runtime should try to recover from them.
///
/// All decisions are pure functions of `(seed, site)`, so a plan is fully
/// reproducible: the same plan injects the same faults into the same
/// sites regardless of worker count, batch order, or retries.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master seed all site hashes derive from.
    pub seed: u64,
    /// Probability that a (partition, tile, attempt) job panics before
    /// touching its engine.
    pub tile_panic_rate: f64,
    /// Probability that a job stalls (sleeps briefly) before running —
    /// perturbs scheduling without failing the tile.
    pub tile_stall_rate: f64,
    /// Duration of an injected stall in milliseconds. The 0.2 ms default
    /// perturbs scheduling invisibly; raise it past a session's watchdog
    /// deadline to make stalls *detectable* (and recovered) instead of
    /// merely slow.
    pub tile_stall_ms: f64,
    /// Per-entry stuck-at match-line rate for each partition's CAM.
    pub cam_stuck_rate: f64,
    /// Per-stored-base bit-flip rate for each partition's CAM.
    pub cam_flip_rate: f64,
    /// Per-row indicator bit-flip rate for each partition's filter.
    pub filter_flip_rate: f64,
    /// Fraction of reads cross-checked against the FM-index golden model
    /// per (partition, read); catches *silent* corruption.
    pub cross_check_fraction: f64,
    /// Failed tile attempts to retry before quarantining the partition.
    pub max_retries: usize,
    /// Restrict hardware-fault injection to one partition (`None` = all).
    pub only_partition: Option<usize>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            tile_panic_rate: 0.0,
            tile_stall_rate: 0.0,
            tile_stall_ms: 0.2,
            cam_stuck_rate: 0.0,
            cam_flip_rate: 0.0,
            filter_flip_rate: 0.0,
            cross_check_fraction: 0.0,
            max_retries: 3,
            only_partition: None,
        }
    }
}

impl FaultPlan {
    /// Validates the plan: every rate and the cross-check fraction must
    /// lie in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadFaultPlan`] naming the offending field.
    pub fn validated(self) -> Result<FaultPlan, Error> {
        let rates = [
            (self.tile_panic_rate, "tile_panic_rate"),
            (self.tile_stall_rate, "tile_stall_rate"),
            (self.cam_stuck_rate, "cam_stuck_rate"),
            (self.cam_flip_rate, "cam_flip_rate"),
            (self.filter_flip_rate, "filter_flip_rate"),
            (self.cross_check_fraction, "cross_check_fraction"),
        ];
        for (value, reason) in rates {
            if !(0.0..=1.0).contains(&value) {
                return Err(Error::Config(ConfigError::BadFaultPlan { reason }));
            }
        }
        if !self.tile_stall_ms.is_finite() || self.tile_stall_ms < 0.0 {
            return Err(Error::Config(ConfigError::BadFaultPlan {
                reason: "tile_stall_ms",
            }));
        }
        Ok(self)
    }

    /// The sleep injected by a stall fault.
    pub fn stall_duration(&self) -> Duration {
        Duration::from_secs_f64(self.tile_stall_ms.max(0.0) / 1e3)
    }

    /// Whether the plan injects nothing and checks nothing — the
    /// fault-free fast path.
    pub fn is_noop(&self) -> bool {
        self.tile_panic_rate == 0.0
            && self.tile_stall_rate == 0.0
            && self.cam_stuck_rate == 0.0
            && self.cam_flip_rate == 0.0
            && self.filter_flip_rate == 0.0
            && self.cross_check_fraction == 0.0
    }

    /// Whether the plan can corrupt *results* (as opposed to only crashing
    /// or stalling tiles). When it can, output is only guaranteed
    /// bit-identical to the fault-free run if `cross_check_fraction == 1.0`
    /// (see `DESIGN.md`).
    pub fn has_silent_faults(&self) -> bool {
        self.cam_stuck_rate > 0.0 || self.cam_flip_rate > 0.0 || self.filter_flip_rate > 0.0
    }

    /// Parses a `--fault-spec` string: comma-separated `key=value` pairs.
    ///
    /// Keys: `seed`, `panic`, `stall`, `stall-ms`, `cam-stuck`, `cam-flip`,
    /// `filter-flip`, `check`, `retries`, `partition`. Unlisted keys keep
    /// their defaults.
    ///
    /// ```
    /// use casa_core::faults::FaultPlan;
    /// let plan = FaultPlan::parse("seed=42,panic=0.1,cam-flip=1e-4,check=1.0").unwrap();
    /// assert_eq!(plan.seed, 42);
    /// assert_eq!(plan.tile_panic_rate, 0.1);
    /// assert_eq!(plan.cross_check_fraction, 1.0);
    /// ```
    ///
    /// # Errors
    ///
    /// A human-readable message naming the bad key or value.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry {pair:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = || format!("fault spec {key}={value:?}: invalid value");
            match key {
                "seed" => plan.seed = value.parse().map_err(|_| bad())?,
                "panic" => plan.tile_panic_rate = value.parse().map_err(|_| bad())?,
                "stall" => plan.tile_stall_rate = value.parse().map_err(|_| bad())?,
                "stall-ms" => plan.tile_stall_ms = value.parse().map_err(|_| bad())?,
                "cam-stuck" => plan.cam_stuck_rate = value.parse().map_err(|_| bad())?,
                "cam-flip" => plan.cam_flip_rate = value.parse().map_err(|_| bad())?,
                "filter-flip" => plan.filter_flip_rate = value.parse().map_err(|_| bad())?,
                "check" => plan.cross_check_fraction = value.parse().map_err(|_| bad())?,
                "retries" => plan.max_retries = value.parse().map_err(|_| bad())?,
                "partition" => plan.only_partition = Some(value.parse().map_err(|_| bad())?),
                _ => return Err(format!("fault spec: unknown key {key:?}")),
            }
        }
        plan.validated().map_err(|e| e.to_string())
    }

    /// The plan armed by [`FAULT_SEED_ENV`], if set: a CI profile that
    /// exercises the recovery paths (panics, stalls, a sampled
    /// cross-check) without silent result corruption, so every fault-free
    /// correctness test still holds bit-identically.
    pub fn from_env() -> Option<FaultPlan> {
        let seed = std::env::var(FAULT_SEED_ENV).ok()?.parse().ok()?;
        Some(FaultPlan::ci_plan(seed))
    }

    /// The CI fault profile for `seed` (see [`FaultPlan::from_env`]).
    ///
    /// Panic rate 0.05 with 6 retries makes retry exhaustion — and thus a
    /// golden fallback that would perturb engine-activity stats — all but
    /// impossible (`0.05^7 ≈ 8e-10` per tile), while still exercising the
    /// catch-unwind/retry path on ~1 tile in 20.
    pub fn ci_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            tile_panic_rate: 0.05,
            tile_stall_rate: 0.02,
            cross_check_fraction: 0.1,
            max_retries: 6,
            ..FaultPlan::default()
        }
    }

    fn hardware_faults_enabled(&self, pi: usize) -> bool {
        self.only_partition.is_none_or(|p| p == pi)
    }

    /// The CAM fault model for partition `pi`.
    pub fn cam_faults_for(&self, pi: usize) -> CamFaultModel {
        if !self.hardware_faults_enabled(pi) {
            return CamFaultModel::default();
        }
        CamFaultModel {
            seed: site_hash(self.seed, &[DOMAIN_PART_CAM, pi as u64]),
            stuck_rate: self.cam_stuck_rate,
            flip_rate: self.cam_flip_rate,
        }
    }

    /// The filter fault model for partition `pi`.
    pub fn filter_faults_for(&self, pi: usize) -> FilterFaultModel {
        if !self.hardware_faults_enabled(pi) {
            return FilterFaultModel::default();
        }
        FilterFaultModel {
            seed: site_hash(self.seed, &[DOMAIN_PART_FILTER, pi as u64]),
            flip_rate: self.filter_flip_rate,
        }
    }

    /// Whether attempt `attempt` of job (`pi`, `ti`) panics.
    pub fn should_panic(&self, pi: usize, ti: usize, attempt: usize) -> bool {
        self.tile_panic_rate > 0.0
            && coin(
                site_hash(
                    self.seed,
                    &[DOMAIN_TILE_PANIC, pi as u64, ti as u64, attempt as u64],
                ),
                self.tile_panic_rate,
            )
    }

    /// Whether attempt `attempt` of job (`pi`, `ti`) stalls first.
    pub fn should_stall(&self, pi: usize, ti: usize, attempt: usize) -> bool {
        self.tile_stall_rate > 0.0
            && coin(
                site_hash(
                    self.seed,
                    &[DOMAIN_TILE_STALL, pi as u64, ti as u64, attempt as u64],
                ),
                self.tile_stall_rate,
            )
    }

    /// The backoff slept before retrying attempt `attempt + 1` of job
    /// (`pi`, `ti`): capped exponential with *equal jitter* — half the
    /// exponential base is kept, the other half is scaled by a site hash
    /// of `(seed, partition, tile, attempt)`. When a burst of faults hits
    /// every partition in the same scheduling round (one injected seed
    /// fires across tiles, or a real transient brownout), unjittered
    /// retries would wake simultaneously and collide again
    /// (thundering-herd retry storms); the per-site hash desynchronizes
    /// them while staying a pure function of the coordinates, so retry
    /// *timing* is reproducible and seeding output stays bit-identical
    /// (the backoff only decides when a retry runs, never what it
    /// computes).
    pub fn retry_backoff(&self, pi: usize, ti: usize, attempt: usize) -> Duration {
        let base = Duration::from_micros(50u64 << attempt.min(6)).min(MAX_RETRY_BACKOFF);
        let half = base / 2;
        let hash = site_hash(
            self.seed,
            &[DOMAIN_RETRY_JITTER, pi as u64, ti as u64, attempt as u64],
        );
        half + Duration::from_nanos(hash % (half.as_nanos() as u64 + 1))
    }

    /// Whether read `read_index` of the batch is cross-checked against the
    /// golden model on partition `pi`. Independent of tile geometry and
    /// attempt, so the checked set is stable across worker counts.
    pub fn should_check(&self, pi: usize, read_index: usize) -> bool {
        self.cross_check_fraction > 0.0
            && coin(
                site_hash(
                    self.seed,
                    &[DOMAIN_CROSS_CHECK, pi as u64, read_index as u64],
                ),
                self.cross_check_fraction,
            )
    }
}

/// The concrete hardware fault sites a [`FaultPlan`] injected into a
/// session, one report per partition. Two sessions built from the same
/// plan and reference produce equal `FaultSites` — the determinism
/// property the seed-matrix test pins down.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSites {
    /// Per-partition computing-CAM fault sites.
    pub cam: Vec<CamFaultReport>,
    /// Per-partition filter fault sites.
    pub filter: Vec<FilterFaultReport>,
}

impl FaultSites {
    /// Total injected hardware fault sites across all partitions.
    pub fn total(&self) -> usize {
        self.cam.iter().map(CamFaultReport::sites).sum::<usize>()
            + self
                .filter
                .iter()
                .map(FilterFaultReport::sites)
                .sum::<usize>()
    }
}

/// Panic payload of an injected tile panic. Carried through
/// `panic_any` so the silencing hook — and tests — can tell injected
/// panics from genuine bugs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// Partition index of the panicking job.
    pub partition: usize,
    /// Tile index of the panicking job.
    pub tile: usize,
    /// Which attempt panicked (0 = first try).
    pub attempt: usize,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected fault: partition {} tile {} attempt {}",
            self.partition, self.tile, self.attempt
        )
    }
}

/// Installs (once per process) a panic hook that swallows the default
/// "thread panicked" stderr message for [`InjectedFault`] payloads and
/// delegates everything else to the previous hook. Injected panics are
/// expected and recovered; their backtraces would only bury real ones.
pub fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedFault>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_noop());
        assert!(!plan.has_silent_faults());
        assert!(plan.validated().is_ok());
        assert!(!plan.should_panic(0, 0, 0));
        assert!(!plan.should_stall(0, 0, 0));
        assert!(!plan.should_check(0, 0));
    }

    #[test]
    fn validation_rejects_out_of_range_rates() {
        for bad in [
            FaultPlan {
                tile_panic_rate: 1.5,
                ..FaultPlan::default()
            },
            FaultPlan {
                cam_flip_rate: -0.1,
                ..FaultPlan::default()
            },
            FaultPlan {
                cross_check_fraction: 2.0,
                ..FaultPlan::default()
            },
            FaultPlan {
                tile_stall_ms: -1.0,
                ..FaultPlan::default()
            },
            FaultPlan {
                tile_stall_ms: f64::NAN,
                ..FaultPlan::default()
            },
        ] {
            assert!(matches!(
                bad.validated(),
                Err(Error::Config(ConfigError::BadFaultPlan { .. }))
            ));
        }
    }

    #[test]
    fn parse_round_trips_all_keys() {
        let plan = FaultPlan::parse(
            "seed=7, panic=0.25, stall=0.125, stall-ms=25, cam-stuck=1e-3, cam-flip=2e-3, \
             filter-flip=5e-4, check=0.5, retries=9, partition=3",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.tile_panic_rate, 0.25);
        assert_eq!(plan.tile_stall_rate, 0.125);
        assert_eq!(plan.tile_stall_ms, 25.0);
        assert_eq!(plan.stall_duration(), Duration::from_millis(25));
        assert_eq!(plan.cam_stuck_rate, 1e-3);
        assert_eq!(plan.cam_flip_rate, 2e-3);
        assert_eq!(plan.filter_flip_rate, 5e-4);
        assert_eq!(plan.cross_check_fraction, 0.5);
        assert_eq!(plan.max_retries, 9);
        assert_eq!(plan.only_partition, Some(3));
        assert!(plan.has_silent_faults());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("panic=high").is_err());
        assert!(FaultPlan::parse("warp=0.5").is_err());
        assert!(FaultPlan::parse("panic=1.5").is_err()); // fails validation
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn site_predicates_are_deterministic_and_rate_like() {
        let plan = FaultPlan {
            seed: 42,
            tile_panic_rate: 0.2,
            ..FaultPlan::default()
        };
        let fired: Vec<bool> = (0..1000).map(|ti| plan.should_panic(0, ti, 0)).collect();
        assert_eq!(
            fired,
            (0..1000)
                .map(|ti| plan.should_panic(0, ti, 0))
                .collect::<Vec<_>>()
        );
        let count = fired.iter().filter(|&&b| b).count();
        assert!((120..280).contains(&count), "panic count {count}");
        // Attempts re-roll: a tile that panics on attempt 0 usually
        // survives a later attempt.
        let survivors = (0..1000)
            .filter(|&ti| plan.should_panic(0, ti, 0) && !plan.should_panic(0, ti, 1))
            .count();
        assert!(survivors > 0);
    }

    #[test]
    fn retry_backoff_is_deterministic_bounded_and_desynchronized() {
        let plan = FaultPlan {
            seed: 42,
            ..FaultPlan::default()
        };
        for attempt in 0..10 {
            for pi in 0..4 {
                let backoff = plan.retry_backoff(pi, 3, attempt);
                assert_eq!(backoff, plan.retry_backoff(pi, 3, attempt));
                let base = Duration::from_micros(50u64 << attempt.min(6)).min(MAX_RETRY_BACKOFF);
                assert!(backoff >= base / 2, "attempt {attempt} below jitter floor");
                assert!(backoff <= base, "attempt {attempt} above exponential cap");
                assert!(backoff <= MAX_RETRY_BACKOFF);
            }
        }
        // Simultaneous retries of different partitions sleep different
        // amounts — the anti-thundering-herd property.
        let sleeps: std::collections::HashSet<Duration> =
            (0..8).map(|pi| plan.retry_backoff(pi, 0, 4)).collect();
        assert!(sleeps.len() > 1, "all partitions woke in lockstep");
    }

    #[test]
    fn only_partition_gates_hardware_faults() {
        let plan = FaultPlan {
            seed: 1,
            cam_flip_rate: 0.5,
            filter_flip_rate: 0.5,
            only_partition: Some(2),
            ..FaultPlan::default()
        };
        assert_eq!(plan.cam_faults_for(0), CamFaultModel::default());
        assert_eq!(plan.filter_faults_for(1), FilterFaultModel::default());
        assert!(plan.cam_faults_for(2).flip_rate > 0.0);
        // Different partitions derive different sub-seeds.
        let open = FaultPlan {
            only_partition: None,
            ..plan
        };
        assert_ne!(open.cam_faults_for(0).seed, open.cam_faults_for(1).seed);
    }

    #[test]
    fn ci_plan_has_no_silent_faults() {
        let plan = FaultPlan::ci_plan(42);
        assert!(!plan.has_silent_faults());
        assert!(plan.tile_panic_rate > 0.0);
        assert!(plan.max_retries >= 6);
        assert!(plan.validated().is_ok());
    }
}
