//! CASA: a CAM-based SMEM seeding accelerator — cycle- and energy-modelled
//! reproduction of the MICRO 2023 paper's primary contribution.
//!
//! The accelerator seeds reads against a reference genome in two coupled
//! stages (paper Fig. 11):
//!
//! 1. a **pre-seeding filter** ([`casa_filter`]) discards pivots whose
//!    19-mer does not occur in the current reference partition and hands
//!    the survivors' *search indicators* to the computing stage;
//! 2. **SMEM computing CAMs** ([`casa_cam`]) hold the partition as
//!    non-overlapped 40-base entries and extend each surviving pivot
//!    stride-by-stride (wildcard-padded first search, successor-gated
//!    full strides, binary search for the exact match end).
//!
//! Algorithm 1 of the paper ([`PartitionEngine::seed_read`]) adds two pivot
//! analyses — the CRkM non-extendability check and the shifted-AND
//! alignment check — that together discard 99.9 % of pivots, plus the §4.3
//! exact-match pre-processing that settles ~80 % of reads without any
//! per-pivot work. The output SMEM set is bit-identical to the golden
//! BWA-MEM2 / GenAx algorithms of [`casa_index`]; tests enforce this.
//!
//! # Example
//!
//! ```
//! use casa_core::{CasaAccelerator, CasaConfig};
//! use casa_energy::DramSystem;
//! use casa_genome::synth::{generate_reference, ReferenceProfile};
//!
//! let reference = generate_reference(&ReferenceProfile::human_like(), 4_000, 7);
//! let casa = CasaAccelerator::new(&reference, CasaConfig::small(2_000))?;
//! let read = reference.subseq(100, 50);
//! let run = casa.seed_reads(std::slice::from_ref(&read));
//! assert_eq!(run.smems[0][0].len(), 50);
//! println!("{:.3} Mreads/s", run.throughput_reads_per_s(casa.partition_count(), &DramSystem::casa()) / 1e6);
//! # Ok::<(), casa_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accelerator;
pub mod backend;
mod config;
pub mod energy_model;
mod engine;
mod error;
pub mod faults;
pub mod image;
pub mod logging;
pub mod pipeline_sim;
pub mod profile;
pub mod rmem;
pub mod serve;
mod session;
pub mod stats;
pub mod stream;

pub use accelerator::{CasaAccelerator, CasaRun, StrandedRun};
pub use backend::{
    BackendKind, ErtBackend, FmBackend, SeedingBackend, TileKmerCodes, UnknownBackendError,
    BACKEND_ENV,
};
pub use casa_cam::{KernelBackend, UnknownKernelError, KERNEL_ENV};
pub use config::{CasaConfig, CasaConfigBuilder};
pub use energy_model::CasaHardwareModel;
pub use engine::PartitionEngine;
pub use error::{ConfigError, Error};
pub use faults::{FaultPlan, FaultSites, InjectedFault};
pub use image::{build_index_image, ImageBuildReport, IndexImageError, LoadedIndex};
pub use pipeline_sim::{simulate as simulate_pipeline, PipelineSimResult, ReadWork};
pub use profile::{Stage, StageProfile, StageTimer};
pub use rmem::{CamSearcher, RmemResult};
pub use serve::{Admitted, FairQueue, LatencyHistogram, OverloadReason, ServeLimits, ServeMetrics};
pub use session::SeedingSession;
pub use stats::SeedingStats;
pub use stream::{
    live_guard_threads, wait_for_guard_threads, CancelToken, CheckpointError, RecoveryCounters,
    StreamBatch, StreamCheckpoint, StreamConfig, StreamError, StreamItem, StreamReport,
    StreamingSession,
};
