//! Multi-stride RMEM search on the SMEM computing CAM (paper §4.1).
//!
//! Given a pivot whose k-mer survived the pre-seeding filter, the search
//! indicator tells us (a) the in-entry offsets where occurrences start and
//! (b) which CAM groups hold them. For each start offset `p` the engine
//! issues a wildcard-padded first search, then strides entry by entry —
//! enabling only the successors of the entries that matched in the
//! previous cycle (DFF-based selective enabling) — and finally binary
//! searches inside the first mismatched stride for the exact match end.
//!
//! The search is organized as a set of **chains** — one per (pivot, start
//! offset) pair — each a small state machine that always has at most one
//! CAM search in flight. Chains from the same [`CamSearcher::rmem_batch_into`]
//! call are mutually independent (per-pivot results only combine after all
//! chains finish), so each round gathers every pending chain's search and
//! issues them through [`Bcam`]'s query-blocked batch interface: up to B
//! queries share one bitplane pass instead of re-streaming the planes per
//! query. Stats and results are bit-identical to chasing the chains one at
//! a time — every chain issues exactly the search sequence the sequential
//! code would, and the CAM books batched searches per query.

use casa_cam::{Bcam, CamQuery, EntryMask, GroupScheme, KernelBackend};
use casa_filter::SearchIndicator;
use casa_genome::PackedSeq;

/// Result of one RMEM computation in the CAM.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RmemResult {
    /// Length of the right-maximal exact match from the pivot (within this
    /// partition). Zero if nothing matched.
    pub len: usize,
    /// Partition-local start positions of the maximal match, sorted
    /// ascending.
    pub positions: Vec<u32>,
    /// CAM search operations issued (each is one computing-stage cycle).
    pub searches: u64,
}

/// Reusable buffers of the multi-stride search, so the hot path issues no
/// allocations after warm-up. One instance per searcher; contents are
/// meaningless between calls.
#[derive(Clone, Debug, Default)]
struct SearchScratch {
    /// Chain pool. Grows to the high-water mark of simultaneous chains and
    /// is reset in place, so inner buffers keep their allocations.
    chains: Vec<Chain>,
    /// Per-pivot group-gated enable masks of the current batch.
    enabled: Vec<EntryMask>,
    /// Indices of chains with a search in flight this round.
    pending: Vec<u32>,
}

/// What a chain is waiting on (equivalently: which enable mask its
/// in-flight query searches over).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum Phase {
    /// The wildcard-padded first search, over the pivot's group mask.
    #[default]
    First,
    /// A full-stride chase search, over the successor mask `next`.
    Stride,
    /// A binary-prefix probe, over the narrowing mask `bp_current`.
    Binary,
    /// Finished; `len`/`positions`/`searches` hold the chain's result.
    Done,
}

/// One (pivot, start offset) search chain: the sequential chase of
/// `rmem` for a single start offset, unrolled into an explicit state
/// machine with at most one CAM search in flight.
#[derive(Clone, Debug, Default)]
struct Chain {
    /// Index into the batch's pivot list.
    pivot_idx: usize,
    /// In-entry start offset (wildcard pad of the first search).
    p: usize,
    phase: Phase,
    /// Bases matched through the last completed stride.
    matched: usize,
    /// Full strides completed after the first search.
    steps: usize,
    /// CAM searches this chain has issued.
    searches: u64,
    /// Length of the query currently in flight (`First`/`Stride` only).
    cur_len: usize,
    /// The query in flight (refilled in place).
    query: CamQuery,
    /// Entries matching at the last completed stride.
    frontier: Vec<u32>,
    /// Successor mask of the current stride step.
    next: EntryMask,
    /// Binary prefix search state: narrowing candidate mask, bounds,
    /// probe length in flight, query origin, wildcard pad, and whether
    /// the binary search refines the *first* search (vs a mid-chase one).
    bp_current: EntryMask,
    bp_lo: usize,
    bp_hi: usize,
    bp_mid: usize,
    bp_from: usize,
    bp_pad: usize,
    bp_first: bool,
    /// Entries matching at the binary search's best length.
    bp_hits: Vec<u32>,
    /// Result: matched length and partition-local start positions.
    len: usize,
    positions: Vec<u32>,
}

impl Chain {
    /// Re-arms a pooled chain for a new (pivot, start offset) pair,
    /// keeping its buffer allocations.
    fn reset(&mut self, pivot_idx: usize, p: usize) {
        self.pivot_idx = pivot_idx;
        self.p = p;
        self.phase = Phase::First;
        self.matched = 0;
        self.steps = 0;
        self.searches = 0;
        self.cur_len = 0;
        self.frontier.clear();
        self.bp_hits.clear();
        self.len = 0;
        self.positions.clear();
    }

    /// Consumes the hits of the search this chain had in flight and either
    /// finishes the chain (`Done`) or leaves the next search prepared in
    /// `query` + phase. Mirrors the sequential chase step for step.
    fn absorb(
        &mut self,
        hits: &[u32],
        read: &PackedSeq,
        pivot: usize,
        enabled: &EntryMask,
        stride: usize,
        entries: usize,
    ) {
        let remaining = read.len() - pivot;
        match self.phase {
            Phase::First => {
                if hits.is_empty() {
                    self.bp_current.copy_from(enabled);
                    self.bp_lo = 0;
                    self.bp_hi = self.cur_len;
                    self.bp_from = pivot;
                    self.bp_pad = self.p;
                    self.bp_first = true;
                    self.bp_hits.clear();
                    self.binary_step(read, stride);
                } else {
                    self.matched = self.cur_len;
                    self.steps = 0;
                    self.frontier.clear();
                    self.frontier.extend_from_slice(hits);
                    self.chase_top(read, pivot, remaining, stride, entries);
                }
            }
            Phase::Stride => {
                if hits.is_empty() {
                    self.bp_current.copy_from(&self.next);
                    self.bp_lo = 0;
                    self.bp_hi = self.cur_len;
                    self.bp_from = pivot + self.matched;
                    self.bp_pad = 0;
                    self.bp_first = false;
                    self.bp_hits.clear();
                    self.binary_step(read, stride);
                } else {
                    self.matched += self.cur_len;
                    self.steps += 1;
                    self.frontier.clear();
                    self.frontier.extend_from_slice(hits);
                    self.chase_top(read, pivot, remaining, stride, entries);
                }
            }
            Phase::Binary => {
                if hits.is_empty() {
                    self.bp_hi = self.bp_mid;
                } else {
                    self.bp_lo = self.bp_mid;
                    self.bp_current.clear_all();
                    for &e in hits {
                        self.bp_current.set(e as usize);
                    }
                    self.bp_hits.clear();
                    self.bp_hits.extend_from_slice(hits);
                }
                self.binary_step(read, stride);
            }
            Phase::Done => unreachable!("absorb on a finished chain"),
        }
    }

    /// Top of the chase loop: finish if the read is exhausted or no entry
    /// has a successor, otherwise prepare the next full-stride search.
    fn chase_top(
        &mut self,
        read: &PackedSeq,
        pivot: usize,
        remaining: usize,
        stride: usize,
        entries: usize,
    ) {
        if self.matched == remaining {
            return self.finish_at_frontier(stride);
        }
        self.next.reset(entries);
        for &e in &self.frontier {
            let succ = e as usize + 1;
            if succ < entries {
                self.next.set(succ);
            }
        }
        if self.next.count() == 0 {
            return self.finish_at_frontier(stride);
        }
        let len = stride.min(remaining - self.matched);
        self.cur_len = len;
        self.query.fill_padded(read, pivot + self.matched, len, 0);
        self.phase = Phase::Stride;
    }

    /// Advances the binary prefix search: prepares the next probe if the
    /// interval is still open, otherwise finalizes the chain.
    fn binary_step(&mut self, read: &PackedSeq, stride: usize) {
        if self.bp_hi - self.bp_lo > 1 {
            let mid = (self.bp_lo + self.bp_hi) / 2;
            self.bp_mid = mid;
            self.query.fill_padded(read, self.bp_from, mid, self.bp_pad);
            self.phase = Phase::Binary;
            return;
        }
        let l = self.bp_lo;
        if self.bp_first {
            if l == 0 {
                self.len = 0;
                self.positions.clear();
            } else {
                self.len = l;
                positions_of(&mut self.positions, &self.bp_hits, 0, stride, self.p);
            }
        } else if l > 0 {
            self.len = self.matched + l;
            positions_of(
                &mut self.positions,
                &self.bp_hits,
                self.steps + 1,
                stride,
                self.p,
            );
        } else {
            self.len = self.matched;
            positions_of(
                &mut self.positions,
                &self.frontier,
                self.steps,
                stride,
                self.p,
            );
        }
        self.phase = Phase::Done;
    }

    /// Finishes with the current frontier as the match set.
    fn finish_at_frontier(&mut self, stride: usize) {
        self.len = self.matched;
        positions_of(
            &mut self.positions,
            &self.frontier,
            self.steps,
            stride,
            self.p,
        );
        self.phase = Phase::Done;
    }
}

/// Writes the partition-local start positions of a match reported by
/// `entries_now` after `steps` full strides from start offset `p`.
fn positions_of(dst: &mut Vec<u32>, entries_now: &[u32], steps: usize, stride: usize, p: usize) {
    dst.clear();
    dst.extend(
        entries_now
            .iter()
            .map(|&e| ((e as usize - steps) * stride + p) as u32),
    );
}

/// The SMEM computing CAM plus its group scheme.
#[derive(Clone, Debug)]
pub struct CamSearcher {
    cam: Bcam,
    scheme: GroupScheme,
    /// Per-group entry masks, precomputed once; the per-call enabled mask
    /// is the word-level OR of the indicator's groups.
    group_masks: Vec<EntryMask>,
    scratch: SearchScratch,
}

impl CamSearcher {
    /// Loads a reference partition into the computing CAM.
    pub fn new(partition: &PackedSeq, stride: usize, groups: usize) -> CamSearcher {
        let cam = Bcam::new(partition, stride);
        let scheme = GroupScheme::new(groups, stride);
        let entries = cam.entries();
        let group_masks = (0..groups)
            .map(|g| scheme.mask_for_indicator(1 << g, entries))
            .collect();
        CamSearcher {
            cam,
            scheme,
            group_masks,
            scratch: SearchScratch::default(),
        }
    }

    /// Wraps an already-constructed CAM (typically one whose bit planes
    /// are shared from a mapped index image; see
    /// [`Bcam::from_shared_planes`]). Group masks are recomputed — they
    /// are tiny (`groups × entries/64` words) next to the planes.
    pub fn from_cam(cam: Bcam, groups: usize) -> CamSearcher {
        let scheme = GroupScheme::new(groups, cam.entry_bases());
        let entries = cam.entries();
        let group_masks = (0..groups)
            .map(|g| scheme.mask_for_indicator(1 << g, entries))
            .collect();
        CamSearcher {
            cam,
            scheme,
            group_masks,
            scratch: SearchScratch::default(),
        }
    }

    /// Switches the computing CAM between the bit-parallel kernel
    /// (default) and the scalar oracle (see [`Bcam::set_scalar_search`]).
    pub fn set_scalar_search(&mut self, scalar: bool) {
        self.cam.set_scalar_search(scalar);
    }

    /// Selects the word-level kernel backend of the computing CAM (see
    /// [`Bcam::set_kernel_backend`]).
    pub fn set_kernel_backend(&mut self, backend: KernelBackend) {
        self.cam.set_kernel_backend(backend);
    }

    /// The computing CAM's effective kernel backend.
    pub fn kernel_backend(&self) -> KernelBackend {
        self.cam.kernel_backend()
    }

    /// Sets the CAM's query-blocking factor (see [`Bcam::set_batch_block`]).
    pub fn set_batch_block(&mut self, block: usize) {
        self.cam.set_batch_block(block);
    }

    /// The underlying CAM (for activity counters).
    pub fn cam(&self) -> &Bcam {
        &self.cam
    }

    /// Resets the CAM activity counters.
    pub fn reset_stats(&mut self) {
        self.cam.reset_stats();
    }

    /// Injects seeded faults into the computing CAM (see
    /// [`casa_cam::CamFaultModel`]) and returns the chosen sites.
    pub fn inject_faults(&mut self, model: &casa_cam::CamFaultModel) -> casa_cam::CamFaultReport {
        self.cam.inject_faults(model)
    }

    /// An all-ones indicator (every start offset and group enabled) — the
    /// naive mode without a filter table.
    pub fn full_indicator(&self) -> SearchIndicator {
        let stride = self.cam.entry_bases();
        let groups = self.scheme.groups;
        SearchIndicator {
            start_mask: if stride == 64 {
                u64::MAX
            } else {
                (1u64 << stride) - 1
            },
            groups: if groups == 32 {
                u32::MAX
            } else {
                (1u32 << groups) - 1
            },
        }
    }

    /// Computes the RMEM starting at `read[pivot..]` using the indicator's
    /// start offsets and groups.
    pub fn rmem(&mut self, read: &PackedSeq, pivot: usize, si: &SearchIndicator) -> RmemResult {
        let mut out = RmemResult::default();
        self.rmem_into(read, pivot, si, &mut out);
        out
    }

    /// [`CamSearcher::rmem`] into a caller-provided result (its buffers are
    /// reused) — the allocation-free form for hot loops. Equivalent to a
    /// one-pivot [`CamSearcher::rmem_batch_into`].
    pub fn rmem_into(
        &mut self,
        read: &PackedSeq,
        pivot: usize,
        si: &SearchIndicator,
        out: &mut RmemResult,
    ) {
        let pivots = [(pivot, *si)];
        self.rmem_batch_into(read, &pivots, std::slice::from_mut(out));
    }

    /// Computes the RMEMs of several pivots of the same read in one go,
    /// sharing CAM bitplane passes across their searches.
    ///
    /// Every (pivot, start offset) pair becomes an independent `Chain`;
    /// each round collects the pending chains' searches and issues them in
    /// blocks of the CAM's query-blocking factor. Results, `searches`
    /// counts, and [`casa_cam::CamStats`] are bit-identical to calling
    /// [`CamSearcher::rmem_into`] once per pivot in order: chains issue
    /// exactly the sequential search sequences, the CAM books batched
    /// searches per query, and the counters are commutative sums.
    ///
    /// The caller must ensure the pivots' searches are mutually
    /// independent — in particular, Algorithm 1 pivot gating decides
    /// whether a pivot searches at all based on *earlier pivots' RMEM
    /// results*, so batching across pivots is only legal when that gating
    /// is off (see `PartitionEngine::seed_read`).
    ///
    /// # Panics
    ///
    /// Panics if `pivots.len() != outs.len()`.
    pub fn rmem_batch_into(
        &mut self,
        read: &PackedSeq,
        pivots: &[(usize, SearchIndicator)],
        outs: &mut [RmemResult],
    ) {
        assert_eq!(pivots.len(), outs.len(), "one result slot per pivot");
        let stride = self.cam.entry_bases();
        let entries = self.cam.entries();

        if self.scratch.enabled.len() < pivots.len() {
            self.scratch
                .enabled
                .resize_with(pivots.len(), EntryMask::default);
        }

        // Fan out: one chain per (pivot, start offset), in pivot order then
        // ascending offset — the same order the sequential code visits, so
        // the per-pivot combination below keeps its tie-breaking.
        let mut nchains = 0usize;
        for (i, &(pivot, si)) in pivots.iter().enumerate() {
            let out = &mut outs[i];
            out.len = 0;
            out.positions.clear();
            out.searches = 0;
            si.enabled_mask_into(&self.group_masks, &mut self.scratch.enabled[i]);
            let remaining = read.len() - pivot;
            let mut start_bits = si.start_mask;
            while start_bits != 0 {
                let p = start_bits.trailing_zeros() as usize;
                start_bits &= start_bits - 1;
                if p >= stride {
                    break;
                }
                if nchains == self.scratch.chains.len() {
                    self.scratch.chains.push(Chain::default());
                }
                let chain = &mut self.scratch.chains[nchains];
                nchains += 1;
                chain.reset(i, p);
                let len0 = (stride - p).min(remaining);
                chain.cur_len = len0;
                chain.query.fill_padded(read, pivot, len0, p);
            }
        }

        // Rounds: batch every pending chain's in-flight search, then let
        // each chain absorb its hits and prepare its next search.
        loop {
            self.scratch.pending.clear();
            for ci in 0..nchains {
                if self.scratch.chains[ci].phase != Phase::Done {
                    self.scratch.pending.push(ci as u32);
                }
            }
            if self.scratch.pending.is_empty() {
                break;
            }
            for chunk in self.scratch.pending.chunks(self.cam.batch_block()) {
                self.cam.batch_begin();
                for &ci in chunk {
                    let chain = &self.scratch.chains[ci as usize];
                    let mask = match chain.phase {
                        Phase::First => &self.scratch.enabled[chain.pivot_idx],
                        Phase::Stride => &chain.next,
                        Phase::Binary => &chain.bp_current,
                        Phase::Done => unreachable!("pending chain cannot be done"),
                    };
                    self.cam.batch_push(&chain.query, mask);
                }
                self.cam.batch_flush();
                for (bi, &ci) in chunk.iter().enumerate() {
                    let chain = &mut self.scratch.chains[ci as usize];
                    chain.searches += 1;
                    let (pivot, _) = pivots[chain.pivot_idx];
                    chain.absorb(
                        self.cam.batch_hits(bi),
                        read,
                        pivot,
                        &self.scratch.enabled[chain.pivot_idx],
                        stride,
                        entries,
                    );
                }
            }
        }

        // Combine chains into per-pivot results, in chain creation order
        // (ascending start offset): longest match wins, ties append.
        for ci in 0..nchains {
            let chain = &self.scratch.chains[ci];
            let out = &mut outs[chain.pivot_idx];
            out.searches += chain.searches;
            if chain.len > out.len {
                out.len = chain.len;
                out.positions.clear();
                out.positions.extend_from_slice(&chain.positions);
            } else if chain.len == out.len && chain.len > 0 {
                out.positions.extend_from_slice(&chain.positions);
            }
        }
        for out in outs.iter_mut() {
            out.positions.sort_unstable();
            out.positions.dedup();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_filter::{FilterConfig, PreSeedingFilter};
    use casa_index::SuffixArray;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes()).unwrap()
    }

    /// RMEM via CAM must equal the suffix-array longest match when driven
    /// by a real filter indicator.
    #[test]
    fn rmem_matches_suffix_array_on_random_data() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let cfg = FilterConfig::small(6, 3); // stride 8, 4 groups
        for trial in 0..20 {
            let part: PackedSeq = (0..300)
                .map(|_| casa_genome::Base::from_code(rng.gen_range(0..4)))
                .collect();
            let sa = SuffixArray::build(&part);
            let mut filter = PreSeedingFilter::build(&part, cfg);
            let mut searcher = CamSearcher::new(&part, cfg.stride, cfg.groups);
            for _ in 0..30 {
                // read stitched from the partition so k-mers usually hit
                let s = rng.gen_range(0..part.len() - 60);
                let mut read = part.subseq(s, 50);
                if rng.gen_bool(0.5) {
                    read.extend(part.subseq(rng.gen_range(0..200), 10).iter());
                }
                for pivot in 0..=read.len() - cfg.k {
                    let si = filter.lookup(&read, pivot).unwrap();
                    if si.is_empty() {
                        let (l, _) = sa.longest_match(&read, pivot);
                        assert!(l < cfg.k, "filter miss but match of length {l}");
                        continue;
                    }
                    let rmem = searcher.rmem(&read, pivot, &si);
                    let (l, iv) = sa.longest_match(&read, pivot);
                    assert_eq!(rmem.len, l, "trial {trial} pivot {pivot}");
                    let mut expect: Vec<u32> = sa.positions(iv).map(|x| x as u32).collect();
                    expect.sort_unstable();
                    assert_eq!(rmem.positions, expect, "trial {trial} pivot {pivot}");
                }
            }
        }
    }

    #[test]
    fn naive_full_indicator_also_finds_rmem() {
        let part = seq("ACGTACGTTTGGAACCAGTCAGGT");
        let sa = SuffixArray::build(&part);
        let mut searcher = CamSearcher::new(&part, 8, 4);
        let full = searcher.full_indicator();
        let read = seq("GTTTGGAACCAG");
        let rmem = searcher.rmem(&read, 0, &full);
        let (l, _) = sa.longest_match(&read, 0);
        assert_eq!(rmem.len, l);
    }

    #[test]
    fn match_spanning_many_entries() {
        // 64-base match across 8-base entries: 8 strides.
        let part = seq(&"ACGT".repeat(32)); // 128 bases
        let mut searcher = CamSearcher::new(&part, 8, 4);
        let read = part.subseq(4, 64);
        let full = searcher.full_indicator();
        let rmem = searcher.rmem(&read, 0, &full);
        assert_eq!(rmem.len, 64);
        // Occurrences every 4 bases while 64 more bases remain: starts
        // 0,4,...,60 -> but matches starting at odd entry offsets also
        // count; just check the known ground truth via containment:
        assert!(rmem.positions.contains(&4));
        for &pos in &rmem.positions {
            assert!(part.matches(pos as usize, &read, 0, 64));
        }
    }

    #[test]
    fn mid_stride_end_found_by_binary_search() {
        let part = seq("AAAAAAAACCCCCCCCGGGGGGGG"); // entries of 8
        let mut searcher = CamSearcher::new(&part, 8, 4);
        // read matches 11 bases: 8 A's then CCC then diverges
        let read = seq("AAAAAAAACCCTTTTT");
        let rmem = searcher.rmem(&read, 0, &searcher.full_indicator());
        assert_eq!(rmem.len, 11);
        assert_eq!(rmem.positions, vec![0]);
    }

    #[test]
    fn first_stride_partial_match() {
        let part = seq("ACGTACGTTTTTTTTT");
        let mut searcher = CamSearcher::new(&part, 8, 4);
        // read matches only 5 bases at position 0
        let read = seq("ACGTATTT");
        let rmem = searcher.rmem(&read, 0, &searcher.full_indicator());
        assert_eq!(rmem.len, 5);
        assert_eq!(rmem.positions, vec![0]);
    }

    #[test]
    fn no_match_returns_zero() {
        let part = seq("AAAAAAAAAAAAAAAA");
        let mut searcher = CamSearcher::new(&part, 8, 4);
        let read = seq("GGGGGGGG");
        let rmem = searcher.rmem(&read, 0, &searcher.full_indicator());
        assert_eq!(
            rmem,
            RmemResult {
                searches: rmem.searches,
                ..RmemResult::default()
            }
        );
        assert!(rmem.searches >= 1);
    }

    #[test]
    fn group_gating_saves_rows() {
        let part = seq(&"ACGT".repeat(16)); // 8 entries of 8 bases
        let cfg = FilterConfig::small(6, 3);
        let mut filter = PreSeedingFilter::build(&part, cfg);
        let mut searcher = CamSearcher::new(&part, cfg.stride, cfg.groups);
        let read = part.subseq(0, 8);
        let si = filter.lookup(&read, 0).unwrap();
        searcher.rmem(&read, 0, &si);
        let gated = searcher.cam().stats().rows_enabled;
        searcher.reset_stats();
        searcher.rmem(&read, 0, &searcher.full_indicator());
        let naive = searcher.cam().stats().rows_enabled;
        assert!(
            gated <= naive,
            "group gating must not enable more rows ({gated} vs {naive})"
        );
    }

    /// Batching pivots together must not change results, searches counts,
    /// or CAM activity, at any query-blocking factor.
    #[test]
    fn batched_pivots_match_sequential_rmem_calls() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        let cfg = FilterConfig::small(6, 3); // stride 8, 4 groups
        let part: PackedSeq = (0..400)
            .map(|_| casa_genome::Base::from_code(rng.gen_range(0..4)))
            .collect();
        let mut filter = PreSeedingFilter::build(&part, cfg);
        for block in [1usize, 2, 3, 8] {
            for trial in 0..5 {
                let s = rng.gen_range(0..part.len() - 80);
                let read = part.subseq(s, 60);
                let pivots: Vec<(usize, SearchIndicator)> = (0..=read.len() - cfg.k)
                    .filter_map(|pivot| {
                        let si = filter.lookup(&read, pivot).unwrap();
                        (!si.is_empty()).then_some((pivot, si))
                    })
                    .collect();
                if pivots.is_empty() {
                    continue;
                }

                let mut seq_searcher = CamSearcher::new(&part, cfg.stride, cfg.groups);
                seq_searcher.set_batch_block(1);
                let expect: Vec<RmemResult> = pivots
                    .iter()
                    .map(|(pivot, si)| seq_searcher.rmem(&read, *pivot, si))
                    .collect();

                let mut batch_searcher = CamSearcher::new(&part, cfg.stride, cfg.groups);
                batch_searcher.set_batch_block(block);
                let mut got = vec![RmemResult::default(); pivots.len()];
                batch_searcher.rmem_batch_into(&read, &pivots, &mut got);

                assert_eq!(got, expect, "block {block} trial {trial}");
                assert_eq!(
                    batch_searcher.cam().stats(),
                    seq_searcher.cam().stats(),
                    "block {block} trial {trial}"
                );
            }
        }
    }

    #[test]
    fn padded_start_offsets_are_honored() {
        // Place a unique 6-mer at an offset 3 inside an entry and verify
        // position recovery.
        let part = seq("AAAAAAAAAAAGGTCCAAAAAAAA"); // GGTCC at 11..16
        let cfg = FilterConfig::small(6, 3); // stride 8
        let mut filter = PreSeedingFilter::build(&part, cfg);
        let mut searcher = CamSearcher::new(&part, cfg.stride, cfg.groups);
        let read = seq("AGGTCCAA");
        let si = filter.lookup(&read, 0).unwrap();
        assert!(si.start_mask & (1 << (10 % 8)) != 0); // AGGTCC at 10, offset 2
        let rmem = searcher.rmem(&read, 0, &si);
        assert!(rmem.len >= 6);
        assert!(rmem.positions.contains(&10));
    }
}
