//! Multi-stride RMEM search on the SMEM computing CAM (paper §4.1).
//!
//! Given a pivot whose k-mer survived the pre-seeding filter, the search
//! indicator tells us (a) the in-entry offsets where occurrences start and
//! (b) which CAM groups hold them. For each start offset `p` the engine
//! issues a wildcard-padded first search, then strides entry by entry —
//! enabling only the successors of the entries that matched in the
//! previous cycle (DFF-based selective enabling) — and finally binary
//! searches inside the first mismatched stride for the exact match end.

use casa_cam::{Bcam, CamQuery, EntryMask, GroupScheme};
use casa_filter::SearchIndicator;
use casa_genome::PackedSeq;

/// Result of one RMEM computation in the CAM.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RmemResult {
    /// Length of the right-maximal exact match from the pivot (within this
    /// partition). Zero if nothing matched.
    pub len: usize,
    /// Partition-local start positions of the maximal match, sorted
    /// ascending.
    pub positions: Vec<u32>,
    /// CAM search operations issued (each is one computing-stage cycle).
    pub searches: u64,
}

/// Reusable buffers of the multi-stride search, so the hot path issues no
/// allocations after warm-up. One instance per searcher; contents are
/// meaningless between calls.
#[derive(Clone, Debug, Default)]
struct SearchScratch {
    /// The query being driven (refilled in place each search).
    query: CamQuery,
    /// Group-gated enabled mask of the current `rmem` call.
    enabled: EntryMask,
    /// Successor mask of the current stride step.
    next: EntryMask,
    /// Narrowing candidate mask of the binary prefix search.
    bp_current: EntryMask,
    /// CAM hit buffer.
    hits: Vec<u32>,
    /// Entries matching at the last completed stride (the chase frontier).
    frontier: Vec<u32>,
    /// Entries matching at the binary search's best length.
    bp_hits: Vec<u32>,
    /// Match start positions of the current chase.
    positions: Vec<u32>,
}

/// Writes the partition-local start positions of a match reported by
/// `entries_now` after `steps` full strides from start offset `p`.
fn positions_of(dst: &mut Vec<u32>, entries_now: &[u32], steps: usize, stride: usize, p: usize) {
    dst.clear();
    dst.extend(
        entries_now
            .iter()
            .map(|&e| ((e as usize - steps) * stride + p) as u32),
    );
}

/// The SMEM computing CAM plus its group scheme.
#[derive(Clone, Debug)]
pub struct CamSearcher {
    cam: Bcam,
    scheme: GroupScheme,
    /// Per-group entry masks, precomputed once; the per-call enabled mask
    /// is the word-level OR of the indicator's groups.
    group_masks: Vec<EntryMask>,
    scratch: SearchScratch,
}

impl CamSearcher {
    /// Loads a reference partition into the computing CAM.
    pub fn new(partition: &PackedSeq, stride: usize, groups: usize) -> CamSearcher {
        let cam = Bcam::new(partition, stride);
        let scheme = GroupScheme::new(groups, stride);
        let entries = cam.entries();
        let group_masks = (0..groups)
            .map(|g| scheme.mask_for_indicator(1 << g, entries))
            .collect();
        CamSearcher {
            cam,
            scheme,
            group_masks,
            scratch: SearchScratch::default(),
        }
    }

    /// Switches the computing CAM between the bit-parallel kernel
    /// (default) and the scalar oracle (see [`Bcam::set_scalar_search`]).
    pub fn set_scalar_search(&mut self, scalar: bool) {
        self.cam.set_scalar_search(scalar);
    }

    /// The underlying CAM (for activity counters).
    pub fn cam(&self) -> &Bcam {
        &self.cam
    }

    /// Resets the CAM activity counters.
    pub fn reset_stats(&mut self) {
        self.cam.reset_stats();
    }

    /// Injects seeded faults into the computing CAM (see
    /// [`casa_cam::CamFaultModel`]) and returns the chosen sites.
    pub fn inject_faults(&mut self, model: &casa_cam::CamFaultModel) -> casa_cam::CamFaultReport {
        self.cam.inject_faults(model)
    }

    /// An all-ones indicator (every start offset and group enabled) — the
    /// naive mode without a filter table.
    pub fn full_indicator(&self) -> SearchIndicator {
        let stride = self.cam.entry_bases();
        let groups = self.scheme.groups;
        SearchIndicator {
            start_mask: if stride == 64 {
                u64::MAX
            } else {
                (1u64 << stride) - 1
            },
            groups: if groups == 32 {
                u32::MAX
            } else {
                (1u32 << groups) - 1
            },
        }
    }

    /// Computes the RMEM starting at `read[pivot..]` using the indicator's
    /// start offsets and groups.
    pub fn rmem(&mut self, read: &PackedSeq, pivot: usize, si: &SearchIndicator) -> RmemResult {
        let mut out = RmemResult::default();
        self.rmem_into(read, pivot, si, &mut out);
        out
    }

    /// [`CamSearcher::rmem`] into a caller-provided result (its buffers are
    /// reused) — the allocation-free form for hot loops.
    pub fn rmem_into(
        &mut self,
        read: &PackedSeq,
        pivot: usize,
        si: &SearchIndicator,
        out: &mut RmemResult,
    ) {
        let stride = self.cam.entry_bases();
        let entries = self.cam.entries();
        let remaining = read.len() - pivot;
        out.len = 0;
        out.positions.clear();
        let mut searches = 0u64;

        // Group-gated enabled mask: word-level OR of the indicator's
        // groups, identical to `GroupScheme::mask_for_indicator`.
        self.scratch.enabled.reset(entries);
        let mut gbits = si.groups;
        while gbits != 0 {
            let g = gbits.trailing_zeros() as usize;
            gbits &= gbits - 1;
            if let Some(mask) = self.group_masks.get(g) {
                self.scratch.enabled.union_with(mask);
            }
        }

        let mut start_bits = si.start_mask;
        while start_bits != 0 {
            let p = start_bits.trailing_zeros() as usize;
            start_bits &= start_bits - 1;
            if p >= stride {
                break;
            }
            let len = self.chase(read, pivot, p, remaining, stride, entries, &mut searches);
            if len > out.len {
                out.len = len;
                out.positions.clear();
                out.positions.extend_from_slice(&self.scratch.positions);
            } else if len == out.len && len > 0 {
                out.positions.extend_from_slice(&self.scratch.positions);
            }
        }
        out.positions.sort_unstable();
        out.positions.dedup();
        out.searches = searches;
    }

    /// Follows one start-offset chain; returns the matched length and
    /// leaves the match start positions in `self.scratch.positions`.
    #[allow(clippy::too_many_arguments)]
    fn chase(
        &mut self,
        read: &PackedSeq,
        pivot: usize,
        p: usize,
        remaining: usize,
        stride: usize,
        entries: usize,
        searches: &mut u64,
    ) -> usize {
        let len0 = (stride - p).min(remaining);
        self.scratch.query.fill_padded(read, pivot, len0, p);
        *searches += 1;
        self.cam.search_into(
            &self.scratch.query,
            &self.scratch.enabled,
            &mut self.scratch.hits,
        );

        if self.scratch.hits.is_empty() {
            self.scratch.bp_current.copy_from(&self.scratch.enabled);
            let l = self.binary_prefix(read, pivot, p, len0, searches);
            if l == 0 {
                self.scratch.positions.clear();
                return 0;
            }
            positions_of(
                &mut self.scratch.positions,
                &self.scratch.bp_hits,
                0,
                stride,
                p,
            );
            return l;
        }
        let mut matched = len0;
        let mut steps = 0usize;
        std::mem::swap(&mut self.scratch.frontier, &mut self.scratch.hits);
        loop {
            if matched == remaining {
                positions_of(
                    &mut self.scratch.positions,
                    &self.scratch.frontier,
                    steps,
                    stride,
                    p,
                );
                return matched;
            }
            self.scratch.next.reset(entries);
            for &e in &self.scratch.frontier {
                let succ = e as usize + 1;
                if succ < entries {
                    self.scratch.next.set(succ);
                }
            }
            if self.scratch.next.count() == 0 {
                positions_of(
                    &mut self.scratch.positions,
                    &self.scratch.frontier,
                    steps,
                    stride,
                    p,
                );
                return matched;
            }
            let len = stride.min(remaining - matched);
            self.scratch
                .query
                .fill_padded(read, pivot + matched, len, 0);
            *searches += 1;
            self.cam.search_into(
                &self.scratch.query,
                &self.scratch.next,
                &mut self.scratch.hits,
            );
            if self.scratch.hits.is_empty() {
                self.scratch.bp_current.copy_from(&self.scratch.next);
                let l = self.binary_prefix(read, pivot + matched, 0, len, searches);
                if l > 0 {
                    positions_of(
                        &mut self.scratch.positions,
                        &self.scratch.bp_hits,
                        steps + 1,
                        stride,
                        p,
                    );
                    return matched + l;
                }
                positions_of(
                    &mut self.scratch.positions,
                    &self.scratch.frontier,
                    steps,
                    stride,
                    p,
                );
                return matched;
            }
            matched += len;
            steps += 1;
            std::mem::swap(&mut self.scratch.frontier, &mut self.scratch.hits);
        }
    }

    /// Hardware binary search for the longest matching query prefix length
    /// in `[0, max_len)` over the entries in `self.scratch.bp_current`
    /// (consumed as the narrowing candidate set). Returns the length; the
    /// entries matching at that length are left in `self.scratch.bp_hits`.
    fn binary_prefix(
        &mut self,
        read: &PackedSeq,
        from: usize,
        pad: usize,
        max_len: usize,
        searches: &mut u64,
    ) -> usize {
        let mut lo = 0usize; // longest length known to match
        let mut hi = max_len; // shortest length known to mismatch
        self.scratch.bp_hits.clear();
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            self.scratch.query.fill_padded(read, from, mid, pad);
            *searches += 1;
            self.cam.search_into(
                &self.scratch.query,
                &self.scratch.bp_current,
                &mut self.scratch.hits,
            );
            if self.scratch.hits.is_empty() {
                hi = mid;
            } else {
                lo = mid;
                self.scratch.bp_current.clear_all();
                for &e in &self.scratch.hits {
                    self.scratch.bp_current.set(e as usize);
                }
                std::mem::swap(&mut self.scratch.bp_hits, &mut self.scratch.hits);
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_filter::{FilterConfig, PreSeedingFilter};
    use casa_index::SuffixArray;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes()).unwrap()
    }

    /// RMEM via CAM must equal the suffix-array longest match when driven
    /// by a real filter indicator.
    #[test]
    fn rmem_matches_suffix_array_on_random_data() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let cfg = FilterConfig::small(6, 3); // stride 8, 4 groups
        for trial in 0..20 {
            let part: PackedSeq = (0..300)
                .map(|_| casa_genome::Base::from_code(rng.gen_range(0..4)))
                .collect();
            let sa = SuffixArray::build(&part);
            let mut filter = PreSeedingFilter::build(&part, cfg);
            let mut searcher = CamSearcher::new(&part, cfg.stride, cfg.groups);
            for _ in 0..30 {
                // read stitched from the partition so k-mers usually hit
                let s = rng.gen_range(0..part.len() - 60);
                let mut read = part.subseq(s, 50);
                if rng.gen_bool(0.5) {
                    read.extend(part.subseq(rng.gen_range(0..200), 10).iter());
                }
                for pivot in 0..=read.len() - cfg.k {
                    let si = filter.lookup(&read, pivot).unwrap();
                    if si.is_empty() {
                        let (l, _) = sa.longest_match(&read, pivot);
                        assert!(l < cfg.k, "filter miss but match of length {l}");
                        continue;
                    }
                    let rmem = searcher.rmem(&read, pivot, &si);
                    let (l, iv) = sa.longest_match(&read, pivot);
                    assert_eq!(rmem.len, l, "trial {trial} pivot {pivot}");
                    let mut expect: Vec<u32> = sa.positions(iv).map(|x| x as u32).collect();
                    expect.sort_unstable();
                    assert_eq!(rmem.positions, expect, "trial {trial} pivot {pivot}");
                }
            }
        }
    }

    #[test]
    fn naive_full_indicator_also_finds_rmem() {
        let part = seq("ACGTACGTTTGGAACCAGTCAGGT");
        let sa = SuffixArray::build(&part);
        let mut searcher = CamSearcher::new(&part, 8, 4);
        let full = searcher.full_indicator();
        let read = seq("GTTTGGAACCAG");
        let rmem = searcher.rmem(&read, 0, &full);
        let (l, _) = sa.longest_match(&read, 0);
        assert_eq!(rmem.len, l);
    }

    #[test]
    fn match_spanning_many_entries() {
        // 64-base match across 8-base entries: 8 strides.
        let part = seq(&"ACGT".repeat(32)); // 128 bases
        let mut searcher = CamSearcher::new(&part, 8, 4);
        let read = part.subseq(4, 64);
        let full = searcher.full_indicator();
        let rmem = searcher.rmem(&read, 0, &full);
        assert_eq!(rmem.len, 64);
        // Occurrences every 4 bases while 64 more bases remain: starts
        // 0,4,...,60 -> but matches starting at odd entry offsets also
        // count; just check the known ground truth via containment:
        assert!(rmem.positions.contains(&4));
        for &pos in &rmem.positions {
            assert!(part.matches(pos as usize, &read, 0, 64));
        }
    }

    #[test]
    fn mid_stride_end_found_by_binary_search() {
        let part = seq("AAAAAAAACCCCCCCCGGGGGGGG"); // entries of 8
        let mut searcher = CamSearcher::new(&part, 8, 4);
        // read matches 11 bases: 8 A's then CCC then diverges
        let read = seq("AAAAAAAACCCTTTTT");
        let rmem = searcher.rmem(&read, 0, &searcher.full_indicator());
        assert_eq!(rmem.len, 11);
        assert_eq!(rmem.positions, vec![0]);
    }

    #[test]
    fn first_stride_partial_match() {
        let part = seq("ACGTACGTTTTTTTTT");
        let mut searcher = CamSearcher::new(&part, 8, 4);
        // read matches only 5 bases at position 0
        let read = seq("ACGTATTT");
        let rmem = searcher.rmem(&read, 0, &searcher.full_indicator());
        assert_eq!(rmem.len, 5);
        assert_eq!(rmem.positions, vec![0]);
    }

    #[test]
    fn no_match_returns_zero() {
        let part = seq("AAAAAAAAAAAAAAAA");
        let mut searcher = CamSearcher::new(&part, 8, 4);
        let read = seq("GGGGGGGG");
        let rmem = searcher.rmem(&read, 0, &searcher.full_indicator());
        assert_eq!(
            rmem,
            RmemResult {
                searches: rmem.searches,
                ..RmemResult::default()
            }
        );
        assert!(rmem.searches >= 1);
    }

    #[test]
    fn group_gating_saves_rows() {
        let part = seq(&"ACGT".repeat(16)); // 8 entries of 8 bases
        let cfg = FilterConfig::small(6, 3);
        let mut filter = PreSeedingFilter::build(&part, cfg);
        let mut searcher = CamSearcher::new(&part, cfg.stride, cfg.groups);
        let read = part.subseq(0, 8);
        let si = filter.lookup(&read, 0).unwrap();
        searcher.rmem(&read, 0, &si);
        let gated = searcher.cam().stats().rows_enabled;
        searcher.reset_stats();
        searcher.rmem(&read, 0, &searcher.full_indicator());
        let naive = searcher.cam().stats().rows_enabled;
        assert!(
            gated <= naive,
            "group gating must not enable more rows ({gated} vs {naive})"
        );
    }

    #[test]
    fn padded_start_offsets_are_honored() {
        // Place a unique 6-mer at an offset 3 inside an entry and verify
        // position recovery.
        let part = seq("AAAAAAAAAAAGGTCCAAAAAAAA"); // GGTCC at 11..16
        let cfg = FilterConfig::small(6, 3); // stride 8
        let mut filter = PreSeedingFilter::build(&part, cfg);
        let mut searcher = CamSearcher::new(&part, cfg.stride, cfg.groups);
        let read = seq("AGGTCCAA");
        let si = filter.lookup(&read, 0).unwrap();
        assert!(si.start_mask & (1 << (10 % 8)) != 0); // AGGTCC at 10, offset 2
        let rmem = searcher.rmem(&read, 0, &si);
        assert!(rmem.len >= 6);
        assert!(rmem.positions.contains(&10));
    }
}
