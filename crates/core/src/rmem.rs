//! Multi-stride RMEM search on the SMEM computing CAM (paper §4.1).
//!
//! Given a pivot whose k-mer survived the pre-seeding filter, the search
//! indicator tells us (a) the in-entry offsets where occurrences start and
//! (b) which CAM groups hold them. For each start offset `p` the engine
//! issues a wildcard-padded first search, then strides entry by entry —
//! enabling only the successors of the entries that matched in the
//! previous cycle (DFF-based selective enabling) — and finally binary
//! searches inside the first mismatched stride for the exact match end.

use casa_cam::{Bcam, CamQuery, EntryMask, GroupScheme};
use casa_filter::SearchIndicator;
use casa_genome::PackedSeq;

/// Result of one RMEM computation in the CAM.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RmemResult {
    /// Length of the right-maximal exact match from the pivot (within this
    /// partition). Zero if nothing matched.
    pub len: usize,
    /// Partition-local start positions of the maximal match, sorted
    /// ascending.
    pub positions: Vec<u32>,
    /// CAM search operations issued (each is one computing-stage cycle).
    pub searches: u64,
}

/// The SMEM computing CAM plus its group scheme.
#[derive(Clone, Debug)]
pub struct CamSearcher {
    cam: Bcam,
    scheme: GroupScheme,
}

impl CamSearcher {
    /// Loads a reference partition into the computing CAM.
    pub fn new(partition: &PackedSeq, stride: usize, groups: usize) -> CamSearcher {
        CamSearcher {
            cam: Bcam::new(partition, stride),
            scheme: GroupScheme::new(groups, stride),
        }
    }

    /// The underlying CAM (for activity counters).
    pub fn cam(&self) -> &Bcam {
        &self.cam
    }

    /// Resets the CAM activity counters.
    pub fn reset_stats(&mut self) {
        self.cam.reset_stats();
    }

    /// Injects seeded faults into the computing CAM (see
    /// [`casa_cam::CamFaultModel`]) and returns the chosen sites.
    pub fn inject_faults(&mut self, model: &casa_cam::CamFaultModel) -> casa_cam::CamFaultReport {
        self.cam.inject_faults(model)
    }

    /// An all-ones indicator (every start offset and group enabled) — the
    /// naive mode without a filter table.
    pub fn full_indicator(&self) -> SearchIndicator {
        let stride = self.cam.entry_bases();
        let groups = self.scheme.groups;
        SearchIndicator {
            start_mask: if stride == 64 {
                u64::MAX
            } else {
                (1u64 << stride) - 1
            },
            groups: if groups == 32 {
                u32::MAX
            } else {
                (1u32 << groups) - 1
            },
        }
    }

    /// Computes the RMEM starting at `read[pivot..]` using the indicator's
    /// start offsets and groups.
    pub fn rmem(&mut self, read: &PackedSeq, pivot: usize, si: &SearchIndicator) -> RmemResult {
        let stride = self.cam.entry_bases();
        let entries = self.cam.entries();
        let remaining = read.len() - pivot;
        let mut best = RmemResult::default();
        let mut searches = 0u64;

        let mut start_bits = si.start_mask;
        while start_bits != 0 {
            let p = start_bits.trailing_zeros() as usize;
            start_bits &= start_bits - 1;
            if p >= stride {
                break;
            }
            let (len, positions) = self.chase(
                read,
                pivot,
                p,
                si.groups,
                remaining,
                stride,
                entries,
                &mut searches,
            );
            if len > best.len {
                best.len = len;
                best.positions = positions;
            } else if len == best.len && len > 0 {
                best.positions.extend(positions);
            }
        }
        best.positions.sort_unstable();
        best.positions.dedup();
        best.searches = searches;
        best
    }

    /// Follows one start-offset chain; returns the matched length and the
    /// match start positions.
    #[allow(clippy::too_many_arguments)]
    fn chase(
        &mut self,
        read: &PackedSeq,
        pivot: usize,
        p: usize,
        groups: u32,
        remaining: usize,
        stride: usize,
        entries: usize,
        searches: &mut u64,
    ) -> (usize, Vec<u32>) {
        let enabled = self.scheme.mask_for_indicator(groups, entries);
        let len0 = (stride - p).min(remaining);
        let q = CamQuery::padded(read, pivot, len0, p);
        *searches += 1;
        let hits = self.cam.search(&q, &enabled);

        let positions_of = |entries_now: &[u32], steps: usize| -> Vec<u32> {
            entries_now
                .iter()
                .map(|&e| (e as usize - steps) * stride + p)
                .map(|pos| pos as u32)
                .collect()
        };

        if hits.is_empty() {
            let (l, hs) = self.binary_prefix(read, pivot, p, len0, &enabled, searches);
            if l == 0 {
                return (0, Vec::new());
            }
            return (l, positions_of(&hs, 0));
        }
        let mut matched = len0;
        let mut frontier = hits;
        let mut steps = 0usize;
        loop {
            if matched == remaining {
                return (matched, positions_of(&frontier, steps));
            }
            let mut next_enabled = EntryMask::new(entries);
            for &e in &frontier {
                let succ = e as usize + 1;
                if succ < entries {
                    next_enabled.set(succ);
                }
            }
            if next_enabled.count() == 0 {
                return (matched, positions_of(&frontier, steps));
            }
            let len = stride.min(remaining - matched);
            let q = CamQuery::padded(read, pivot + matched, len, 0);
            *searches += 1;
            let hits = self.cam.search(&q, &next_enabled);
            if hits.is_empty() {
                let (l, hs) =
                    self.binary_prefix(read, pivot + matched, 0, len, &next_enabled, searches);
                if l > 0 {
                    return (matched + l, positions_of(&hs, steps + 1));
                }
                return (matched, positions_of(&frontier, steps));
            }
            matched += len;
            steps += 1;
            frontier = hits;
        }
    }

    /// Hardware binary search for the longest matching query prefix length
    /// in `[0, max_len)` over `enabled` entries. Returns the length and the
    /// entries matching at that length.
    fn binary_prefix(
        &mut self,
        read: &PackedSeq,
        from: usize,
        pad: usize,
        max_len: usize,
        enabled: &EntryMask,
        searches: &mut u64,
    ) -> (usize, Vec<u32>) {
        let mut lo = 0usize; // longest length known to match
        let mut hi = max_len; // shortest length known to mismatch
        let mut current = enabled.clone();
        let mut lo_hits: Vec<u32> = Vec::new();
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let q = CamQuery::padded(read, from, mid, pad);
            *searches += 1;
            let hits = self.cam.search(&q, &current);
            if hits.is_empty() {
                hi = mid;
            } else {
                lo = mid;
                current = EntryMask::new(current.len());
                for &e in &hits {
                    current.set(e as usize);
                }
                lo_hits = hits;
            }
        }
        if lo == 0 {
            (0, Vec::new())
        } else {
            (lo, lo_hits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_filter::{FilterConfig, PreSeedingFilter};
    use casa_index::SuffixArray;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes()).unwrap()
    }

    /// RMEM via CAM must equal the suffix-array longest match when driven
    /// by a real filter indicator.
    #[test]
    fn rmem_matches_suffix_array_on_random_data() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let cfg = FilterConfig::small(6, 3); // stride 8, 4 groups
        for trial in 0..20 {
            let part: PackedSeq = (0..300)
                .map(|_| casa_genome::Base::from_code(rng.gen_range(0..4)))
                .collect();
            let sa = SuffixArray::build(&part);
            let mut filter = PreSeedingFilter::build(&part, cfg);
            let mut searcher = CamSearcher::new(&part, cfg.stride, cfg.groups);
            for _ in 0..30 {
                // read stitched from the partition so k-mers usually hit
                let s = rng.gen_range(0..part.len() - 60);
                let mut read = part.subseq(s, 50);
                if rng.gen_bool(0.5) {
                    read.extend(part.subseq(rng.gen_range(0..200), 10).iter());
                }
                for pivot in 0..=read.len() - cfg.k {
                    let si = filter.lookup(&read, pivot).unwrap();
                    if si.is_empty() {
                        let (l, _) = sa.longest_match(&read, pivot);
                        assert!(l < cfg.k, "filter miss but match of length {l}");
                        continue;
                    }
                    let rmem = searcher.rmem(&read, pivot, &si);
                    let (l, iv) = sa.longest_match(&read, pivot);
                    assert_eq!(rmem.len, l, "trial {trial} pivot {pivot}");
                    let mut expect: Vec<u32> = sa.positions(iv).map(|x| x as u32).collect();
                    expect.sort_unstable();
                    assert_eq!(rmem.positions, expect, "trial {trial} pivot {pivot}");
                }
            }
        }
    }

    #[test]
    fn naive_full_indicator_also_finds_rmem() {
        let part = seq("ACGTACGTTTGGAACCAGTCAGGT");
        let sa = SuffixArray::build(&part);
        let mut searcher = CamSearcher::new(&part, 8, 4);
        let full = searcher.full_indicator();
        let read = seq("GTTTGGAACCAG");
        let rmem = searcher.rmem(&read, 0, &full);
        let (l, _) = sa.longest_match(&read, 0);
        assert_eq!(rmem.len, l);
    }

    #[test]
    fn match_spanning_many_entries() {
        // 64-base match across 8-base entries: 8 strides.
        let part = seq(&"ACGT".repeat(32)); // 128 bases
        let mut searcher = CamSearcher::new(&part, 8, 4);
        let read = part.subseq(4, 64);
        let full = searcher.full_indicator();
        let rmem = searcher.rmem(&read, 0, &full);
        assert_eq!(rmem.len, 64);
        // Occurrences every 4 bases while 64 more bases remain: starts
        // 0,4,...,60 -> but matches starting at odd entry offsets also
        // count; just check the known ground truth via containment:
        assert!(rmem.positions.contains(&4));
        for &pos in &rmem.positions {
            assert!(part.matches(pos as usize, &read, 0, 64));
        }
    }

    #[test]
    fn mid_stride_end_found_by_binary_search() {
        let part = seq("AAAAAAAACCCCCCCCGGGGGGGG"); // entries of 8
        let mut searcher = CamSearcher::new(&part, 8, 4);
        // read matches 11 bases: 8 A's then CCC then diverges
        let read = seq("AAAAAAAACCCTTTTT");
        let rmem = searcher.rmem(&read, 0, &searcher.full_indicator());
        assert_eq!(rmem.len, 11);
        assert_eq!(rmem.positions, vec![0]);
    }

    #[test]
    fn first_stride_partial_match() {
        let part = seq("ACGTACGTTTTTTTTT");
        let mut searcher = CamSearcher::new(&part, 8, 4);
        // read matches only 5 bases at position 0
        let read = seq("ACGTATTT");
        let rmem = searcher.rmem(&read, 0, &searcher.full_indicator());
        assert_eq!(rmem.len, 5);
        assert_eq!(rmem.positions, vec![0]);
    }

    #[test]
    fn no_match_returns_zero() {
        let part = seq("AAAAAAAAAAAAAAAA");
        let mut searcher = CamSearcher::new(&part, 8, 4);
        let read = seq("GGGGGGGG");
        let rmem = searcher.rmem(&read, 0, &searcher.full_indicator());
        assert_eq!(
            rmem,
            RmemResult {
                searches: rmem.searches,
                ..RmemResult::default()
            }
        );
        assert!(rmem.searches >= 1);
    }

    #[test]
    fn group_gating_saves_rows() {
        let part = seq(&"ACGT".repeat(16)); // 8 entries of 8 bases
        let cfg = FilterConfig::small(6, 3);
        let mut filter = PreSeedingFilter::build(&part, cfg);
        let mut searcher = CamSearcher::new(&part, cfg.stride, cfg.groups);
        let read = part.subseq(0, 8);
        let si = filter.lookup(&read, 0).unwrap();
        searcher.rmem(&read, 0, &si);
        let gated = searcher.cam().stats().rows_enabled;
        searcher.reset_stats();
        searcher.rmem(&read, 0, &searcher.full_indicator());
        let naive = searcher.cam().stats().rows_enabled;
        assert!(
            gated <= naive,
            "group gating must not enable more rows ({gated} vs {naive})"
        );
    }

    #[test]
    fn padded_start_offsets_are_honored() {
        // Place a unique 6-mer at an offset 3 inside an entry and verify
        // position recovery.
        let part = seq("AAAAAAAAAAAGGTCCAAAAAAAA"); // GGTCC at 11..16
        let cfg = FilterConfig::small(6, 3); // stride 8
        let mut filter = PreSeedingFilter::build(&part, cfg);
        let mut searcher = CamSearcher::new(&part, cfg.stride, cfg.groups);
        let read = seq("AGGTCCAA");
        let si = filter.lookup(&read, 0).unwrap();
        assert!(si.start_mask & (1 << (10 % 8)) != 0); // AGGTCC at 10, offset 2
        let rmem = searcher.rmem(&read, 0, &si);
        assert!(rmem.len >= 6);
        assert!(rmem.positions.contains(&10));
    }
}
