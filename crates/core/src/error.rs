//! Typed errors for `casa-core`'s public constructors and runtime.
//!
//! The crate's constructors historically panicked on invalid input; the
//! `Result`-returning API surfaces the same invariants as values so
//! callers (the CLI in particular) can report them without aborting.

use std::fmt;

/// A configuration that violates one of CASA's structural invariants.
///
/// Produced by [`crate::CasaConfig::validated`] and by
/// [`crate::CasaConfigBuilder::build`]. Each variant carries the offending
/// values so error messages can be produced without re-inspecting the
/// config.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `min_smem_len` is shorter than the filter k-mer. The pivot-filtering
    /// argument (paper §4.1) requires the filter k-mer to be no longer than
    /// any reported SMEM.
    MinSmemShorterThanK {
        /// The configured minimum SMEM length.
        min_smem_len: usize,
        /// The configured filter k-mer size.
        k: usize,
    },
    /// `lanes == 0`: the computing stage needs at least one SMEM CAM.
    ZeroLanes,
    /// `filter_banks == 0`: the pre-seeding stage needs at least one bank.
    ZeroFilterBanks,
    /// `partitioning.part_len == 0`: partitions must hold at least one base.
    ZeroPartitionLen,
    /// `partitioning.overlap >= partitioning.part_len`: the split would
    /// never advance.
    OverlapTooLarge {
        /// The configured partition overlap.
        overlap: usize,
        /// The configured partition length.
        part_len: usize,
    },
    /// The filter geometry breaks a hardware bound (`1 <= m < k`,
    /// `k <= 32`, `stride <= 64`, `1 <= groups <= 32`).
    BadFilterGeometry {
        /// Which bound was violated, in human-readable form.
        reason: &'static str,
    },
    /// A fault plan carries an out-of-range value (a rate or fraction
    /// outside `[0, 1]`, or a non-finite/negative stall duration).
    BadFaultPlan {
        /// The offending field.
        reason: &'static str,
    },
    /// A streaming-runtime configuration violates a structural bound
    /// (zero batch size, zero ring capacity, zero checkpoint interval).
    BadStreamConfig {
        /// Which bound was violated, in human-readable form.
        reason: &'static str,
    },
    /// A CAM kernel backend request (the `CASA_KERNEL` environment
    /// variable or the CLI `--kernel` flag) names an unknown backend or
    /// one this host cannot execute.
    UnknownKernelBackend {
        /// The requested backend string, verbatim.
        value: String,
        /// Why it was rejected, in human-readable form.
        reason: &'static str,
    },
    /// A seeding backend request (the `CASA_BACKEND` environment variable
    /// or the CLI `--backend` flag) names an unknown backend.
    UnknownSeedingBackend {
        /// The requested backend string, verbatim.
        value: String,
        /// Why it was rejected, in human-readable form.
        reason: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::MinSmemShorterThanK { min_smem_len, k } => {
                write!(f, "min_smem_len ({min_smem_len}) must be >= filter k ({k})")
            }
            ConfigError::ZeroLanes => write!(f, "need at least one computing CAM lane"),
            ConfigError::ZeroFilterBanks => write!(f, "need at least one filter bank"),
            ConfigError::ZeroPartitionLen => write!(f, "partition length must be positive"),
            ConfigError::OverlapTooLarge { overlap, part_len } => write!(
                f,
                "partition overlap ({overlap}) must be smaller than partition length ({part_len})"
            ),
            ConfigError::BadFilterGeometry { reason } => {
                write!(f, "invalid filter geometry: {reason}")
            }
            ConfigError::BadFaultPlan { reason } => {
                write!(f, "invalid fault plan: {reason} is out of range")
            }
            ConfigError::BadStreamConfig { reason } => {
                write!(f, "invalid stream config: {reason}")
            }
            ConfigError::UnknownKernelBackend { ref value, reason } => {
                write!(
                    f,
                    "unknown CAM kernel backend {value:?}: {reason} \
                     (expected one of: scalar, u64x4, avx2)"
                )
            }
            ConfigError::UnknownSeedingBackend { ref value, reason } => {
                write!(
                    f,
                    "unknown seeding backend {value:?}: {reason} \
                     (expected one of: cam, fm, ert)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<casa_cam::UnknownKernelError> for ConfigError {
    fn from(e: casa_cam::UnknownKernelError) -> ConfigError {
        ConfigError::UnknownKernelBackend {
            value: e.value,
            reason: e.reason,
        }
    }
}

impl From<crate::backend::UnknownBackendError> for ConfigError {
    fn from(e: crate::backend::UnknownBackendError) -> ConfigError {
        ConfigError::UnknownSeedingBackend {
            value: e.value,
            reason: e.reason,
        }
    }
}

/// Any error a `casa-core` entry point can report.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The configuration failed validation.
    Config(ConfigError),
    /// The reference sequence is empty, so no partitions can be built.
    EmptyReference,
    /// A seeding session was asked for zero worker threads.
    ZeroWorkers,
    /// The scheduler reached a state it cannot recover from (e.g. a
    /// completed batch with a job slot still empty). Reported instead of
    /// aborting the process.
    Runtime {
        /// What went wrong, in human-readable form.
        what: &'static str,
    },
    /// The run's [`crate::CancelToken`] fired before the batch finished.
    /// Unlike [`Error::Runtime`], the partial work is simply discarded —
    /// callers must not fall back to the golden model, because the caller
    /// asked for the work to stop.
    Cancelled,
    /// An index image could not be built, loaded, or reconciled with the
    /// session's configuration (see [`crate::image`]).
    Image {
        /// What went wrong, in human-readable form.
        what: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(e) => write!(f, "invalid configuration: {e}"),
            Error::EmptyReference => write!(f, "reference sequence is empty"),
            Error::ZeroWorkers => write!(f, "seeding session needs at least one worker"),
            Error::Runtime { what } => write!(f, "unrecoverable scheduler state: {what}"),
            Error::Cancelled => write!(f, "seeding run cancelled"),
            Error::Image { what } => write!(f, "index image error: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Error {
        Error::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_values() {
        let e = ConfigError::MinSmemShorterThanK {
            min_smem_len: 10,
            k: 19,
        };
        assert_eq!(e.to_string(), "min_smem_len (10) must be >= filter k (19)");
        let e = ConfigError::OverlapTooLarge {
            overlap: 8,
            part_len: 8,
        };
        assert!(e.to_string().contains("must be smaller"));
    }

    #[test]
    fn runtime_and_fault_plan_variants_display() {
        let e = Error::Runtime {
            what: "job slot empty",
        };
        assert!(e.to_string().contains("job slot empty"));
        let e = ConfigError::BadFaultPlan {
            reason: "tile_panic_rate",
        };
        assert!(e.to_string().contains("tile_panic_rate"));
        let e = ConfigError::BadStreamConfig {
            reason: "batch_reads must be positive",
        };
        assert!(e.to_string().contains("batch_reads"));
    }

    #[test]
    fn error_wraps_config_error_as_source() {
        use std::error::Error as _;
        let e = Error::from(ConfigError::ZeroLanes);
        assert!(matches!(e, Error::Config(ConfigError::ZeroLanes)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("computing CAM lane"));
        assert!(Error::EmptyReference.source().is_none());
    }
}
