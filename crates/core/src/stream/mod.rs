//! Supervised streaming runtime: bounded-memory ingestion, watchdog
//! deadlines, cooperative cancellation, and checkpoint/resume around a
//! [`SeedingSession`].
//!
//! A [`StreamingSession`] pulls reads from any fallible iterator (the
//! `casa_genome` `FastqStream`/`FastaStream` readers, or an in-memory
//! vector in tests), groups them into fixed-size batches, and pushes the
//! batches through a bounded ring into the seeding session. The ring is a
//! rendezvous buffer: the reader thread blocks once `ring_capacity`
//! batches are in flight, so peak resident read memory is bounded by
//! `batch_reads × (ring_capacity + 2)` reads (one batch being built, the
//! ring, one batch being seeded) no matter how large the input file is.
//!
//! Three supervision mechanisms wrap the per-batch work:
//!
//! * **Watchdog deadlines** — when [`StreamConfig::tile_deadline`] is
//!   set, every tile attempt runs under the `supervisor` watchdog; an
//!   attempt that overruns is abandoned and retried exactly like a
//!   panicking attempt (capped backoff, then partition quarantine to the
//!   golden model), so output stays bit-identical. Stalls detected this
//!   way are counted in [`SeedingStats::deadline_stalls`], apart from
//!   panic retries.
//! * **Cancellation** — a [`CancelToken`] requests a graceful stop: the
//!   reader discards its partially built batch (batch boundaries stay
//!   deterministic), queued batches are drained unprocessed, and a final
//!   checkpoint records exactly what was durably sunk.
//! * **Checkpoint/resume** — with [`StreamConfig::checkpoint`] set, a
//!   [`StreamCheckpoint`] is written atomically every
//!   [`StreamConfig::checkpoint_every`] completed batches and once more
//!   at the end of the run. [`StreamingSession::resume`] replays only the
//!   batches past the watermark; because batch boundaries and per-batch
//!   seeding are deterministic, a cancelled-and-resumed run's merged
//!   output is byte-identical to an uninterrupted one.
//!
//! The checkpoint fingerprint covers the CASA config, the fault plan,
//! the batch size, and the strand mode — everything that shapes the
//! output. It deliberately excludes the worker count and the tile
//! deadline: both only change scheduling, never results, so a run may be
//! resumed with a different parallelism or watchdog setting.

mod checkpoint;
pub(crate) mod supervisor;

pub use checkpoint::{CheckpointError, RecoveryCounters, StreamCheckpoint, CHECKPOINT_VERSION};
pub use supervisor::{live_guard_threads, wait_for_guard_threads};

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use casa_genome::fasta::FastaRecord;
use casa_genome::fastq::FastqRecord;
use casa_genome::PackedSeq;

use crate::accelerator::CasaRun;
use crate::error::{ConfigError, Error};
use crate::log_warn;
use crate::session::SeedingSession;
use crate::stats::SeedingStats;

/// Tuning knobs for a [`StreamingSession`].
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Reads per batch (the replay and checkpoint granularity).
    pub batch_reads: usize,
    /// Batches the bounded ring may hold between reader and executor.
    pub ring_capacity: usize,
    /// Watchdog deadline per tile attempt; `None` disables the watchdog.
    pub tile_deadline: Option<Duration>,
    /// Checkpoint journal path; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Completed batches between periodic checkpoint writes.
    pub checkpoint_every: u64,
    /// Seed the reverse complement of every read as well.
    pub both_strands: bool,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            batch_reads: 512,
            ring_capacity: 4,
            tile_deadline: None,
            checkpoint: None,
            checkpoint_every: 16,
            both_strands: false,
        }
    }
}

impl StreamConfig {
    /// Checks the structural bounds.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadStreamConfig`] naming the violated bound.
    pub fn validated(self) -> Result<StreamConfig, ConfigError> {
        if self.batch_reads == 0 {
            return Err(ConfigError::BadStreamConfig {
                reason: "batch_reads must be positive",
            });
        }
        if self.ring_capacity == 0 {
            return Err(ConfigError::BadStreamConfig {
                reason: "ring_capacity must be positive",
            });
        }
        if self.checkpoint_every == 0 {
            return Err(ConfigError::BadStreamConfig {
                reason: "checkpoint_every must be positive",
            });
        }
        Ok(self)
    }
}

/// A shared flag requesting a graceful stop of a streaming run.
///
/// Clones share the flag, so a token handed to a signal handler (or held
/// by a sink callback) cancels the session that created it. Cancellation
/// is cooperative and permanent: there is no un-cancel.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Anything the streaming runtime can ingest: an owned record that
/// exposes its packed sequence. Implemented for bare [`PackedSeq`]s and
/// for the FASTA/FASTQ record types, so the `casa_genome` streaming
/// readers plug in directly.
pub trait StreamItem: Send + 'static {
    /// The 2-bit packed read sequence to seed.
    fn seq(&self) -> &PackedSeq;
}

impl StreamItem for PackedSeq {
    fn seq(&self) -> &PackedSeq {
        self
    }
}

impl StreamItem for FastqRecord {
    fn seq(&self) -> &PackedSeq {
        &self.seq
    }
}

impl StreamItem for FastaRecord {
    fn seq(&self) -> &PackedSeq {
        &self.seq
    }
}

/// One seeded batch, handed to the sink callback.
#[derive(Debug)]
pub struct StreamBatch<T> {
    /// Zero-based batch index within the whole logical run (resumed runs
    /// continue the original numbering).
    pub index: u64,
    /// Index of the batch's first read within the whole input.
    pub first_read: u64,
    /// The ingested records, in input order.
    pub items: Vec<T>,
    /// Seeding results for the reads as given.
    pub forward: CasaRun,
    /// Seeding results for the reverse complements, when
    /// [`StreamConfig::both_strands`] is set.
    pub reverse: Option<CasaRun>,
}

/// What a streaming run accomplished.
///
/// `stats` covers only the batches seeded by *this* process; the
/// cumulative counters for a resumed logical run live in
/// [`StreamReport::checkpoint`]'s [`RecoveryCounters`].
#[derive(Clone, Debug, Default)]
pub struct StreamReport {
    /// Batches seeded and durably sunk by this run.
    pub batches: u64,
    /// Reads in those batches.
    pub reads: u64,
    /// Batches skipped because a resume watermark already covered them.
    pub skipped_batches: u64,
    /// Reads in the skipped batches.
    pub skipped_reads: u64,
    /// Whether the run stopped on a cancellation request (as opposed to
    /// exhausting the input).
    pub cancelled: bool,
    /// Accumulated seeding statistics for this run's batches.
    pub stats: SeedingStats,
    /// Highest number of reads resident in the pipeline at once (built +
    /// ringed + in-seeding); bounded by
    /// `batch_reads × (ring_capacity + 2)`.
    pub peak_inflight_reads: u64,
    /// Checkpoint files written (periodic plus final).
    pub checkpoints_written: u64,
    /// The final checkpoint, when checkpointing was enabled.
    pub checkpoint: Option<StreamCheckpoint>,
}

/// Why a streaming run stopped early.
///
/// Batches sunk before the failure remain durable, and any periodic
/// checkpoint already written remains valid, so a failed run can be
/// resumed; no *final* checkpoint is written on the error path.
#[derive(Debug)]
pub enum StreamError {
    /// The seeding core rejected the configuration.
    Core(Error),
    /// The checkpoint journal could not be written or verified.
    Checkpoint(CheckpointError),
    /// The input source failed mid-stream.
    Source {
        /// Zero-based index of the first record that could not be read.
        record: u64,
        /// The source's error, rendered.
        message: String,
    },
    /// The sink callback failed to persist a batch.
    Sink(io::Error),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Core(e) => write!(f, "streaming session: {e}"),
            StreamError::Checkpoint(e) => write!(f, "streaming session: {e}"),
            StreamError::Source { record, message } => {
                write!(f, "stream source failed at record {record}: {message}")
            }
            StreamError::Sink(e) => write!(f, "stream sink failed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Core(e) => Some(e),
            StreamError::Checkpoint(e) => Some(e),
            StreamError::Sink(e) => Some(e),
            StreamError::Source { .. } => None,
        }
    }
}

impl From<Error> for StreamError {
    fn from(e: Error) -> StreamError {
        StreamError::Core(e)
    }
}

impl From<CheckpointError> for StreamError {
    fn from(e: CheckpointError) -> StreamError {
        StreamError::Checkpoint(e)
    }
}

/// What the reader thread hands the executor through the bounded ring.
enum Msg<T> {
    /// A full (or final partial) batch to seed and sink.
    Batch {
        index: u64,
        first_read: u64,
        items: Vec<T>,
    },
    /// A batch consumed but not forwarded because the resume watermark
    /// already covers it.
    Skipped { reads: u64 },
    /// The source failed; no further messages follow.
    SourceError { record: u64, message: String },
}

/// A [`SeedingSession`] wrapped in the supervised streaming runtime.
#[derive(Debug)]
pub struct StreamingSession {
    session: SeedingSession,
    config: StreamConfig,
    cancel: CancelToken,
}

impl StreamingSession {
    /// Wraps `session` with the streaming runtime described by `config`
    /// (the session's tile attempts run under `config.tile_deadline`).
    ///
    /// # Errors
    ///
    /// [`Error::Config`] with
    /// [`ConfigError::BadStreamConfig`] when `config` violates a
    /// structural bound.
    pub fn new(session: SeedingSession, config: StreamConfig) -> Result<StreamingSession, Error> {
        let config = config.validated()?;
        let session = session.with_tile_deadline(config.tile_deadline);
        Ok(StreamingSession {
            session,
            config,
            cancel: CancelToken::new(),
        })
    }

    /// Replaces the cancellation token (e.g. with one shared with a
    /// signal handler).
    pub fn with_cancel_token(mut self, token: CancelToken) -> StreamingSession {
        self.cancel = token;
        self
    }

    /// A clone of the token that cancels this session's runs.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The wrapped seeding session.
    pub fn session(&self) -> &SeedingSession {
        &self.session
    }

    /// Enables per-stage wall-clock profiling on the wrapped session (see
    /// [`SeedingSession::set_profiling`]); stage spans accumulate into the
    /// report's [`SeedingStats::profile`](crate::SeedingStats) alongside
    /// every other counter.
    pub fn set_profiling(&self, enabled: bool) {
        self.session.set_profiling(enabled);
    }

    /// The seeding backend the wrapped session drives. Excluded from the
    /// checkpoint [`fingerprint`](Self::fingerprint) by design: every
    /// backend emits the identical SMEM stream (see
    /// [`casa_core::backend`](crate::backend)), so a run checkpointed on
    /// one backend may resume on another without changing the merged
    /// output — same rationale as the worker count.
    pub fn backend(&self) -> crate::BackendKind {
        self.session.backend()
    }

    /// The streaming configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Hash of everything that must match between the checkpointing run
    /// and the resuming run for the merged output to be byte-identical:
    /// CASA config, fault plan, batch size, strand mode. Worker count,
    /// tile deadline, and seeding backend are excluded by design (see the
    /// module docs and [`backend`](Self::backend)).
    pub fn fingerprint(&self) -> u64 {
        checkpoint::fnv64(
            format!(
                "{:?}|{:?}|{}|{}",
                self.session.config(),
                self.session.fault_plan(),
                self.config.batch_reads,
                self.config.both_strands,
            )
            .as_bytes(),
        )
    }

    /// Loads the checkpoint at `path` and verifies it belongs to this
    /// session's configuration.
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`]: I/O, corruption, version, or fingerprint
    /// mismatch. A missing file is an I/O error, never a silent fresh
    /// start.
    pub fn load_checkpoint(
        &self,
        path: &std::path::Path,
    ) -> Result<StreamCheckpoint, CheckpointError> {
        let cp = StreamCheckpoint::load(path)?;
        cp.verify_fingerprint(self.fingerprint())?;
        Ok(cp)
    }

    /// Streams `source` through the session from the beginning.
    ///
    /// `sink` is called once per seeded batch, in order, and returns the
    /// durable positions (e.g. output-file byte offsets) after persisting
    /// the batch; those positions are recorded in the next checkpoint so
    /// a resume can truncate back to them.
    ///
    /// # Errors
    ///
    /// [`StreamError`] for source, sink, or checkpoint failures; batches
    /// sunk before the failure stay durable.
    pub fn run<T, E, I, S>(&self, source: I, sink: S) -> Result<StreamReport, StreamError>
    where
        T: StreamItem,
        E: fmt::Display,
        I: Iterator<Item = Result<T, E>> + Send,
        S: FnMut(&StreamBatch<T>) -> io::Result<Vec<u64>>,
    {
        self.run_from(source, sink, None)
    }

    /// Streams `source` through the session, replaying only the batches
    /// past `checkpoint`'s watermark. The source must be the *same input
    /// from the beginning* — the runtime consumes and discards the
    /// already-completed batches to keep batch boundaries identical.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::FingerprintMismatch`] (as a
    /// [`StreamError::Checkpoint`]) when the checkpoint belongs to a
    /// different configuration, plus everything [`Self::run`] reports.
    pub fn resume<T, E, I, S>(
        &self,
        source: I,
        sink: S,
        checkpoint: &StreamCheckpoint,
    ) -> Result<StreamReport, StreamError>
    where
        T: StreamItem,
        E: fmt::Display,
        I: Iterator<Item = Result<T, E>> + Send,
        S: FnMut(&StreamBatch<T>) -> io::Result<Vec<u64>>,
    {
        checkpoint.verify_fingerprint(self.fingerprint())?;
        self.run_from(source, sink, Some(checkpoint))
    }

    /// The shared engine behind [`run`](Self::run) and
    /// [`resume`](Self::resume).
    fn run_from<T, E, I, S>(
        &self,
        source: I,
        mut sink: S,
        base: Option<&StreamCheckpoint>,
    ) -> Result<StreamReport, StreamError>
    where
        T: StreamItem,
        E: fmt::Display,
        I: Iterator<Item = Result<T, E>> + Send,
        S: FnMut(&StreamBatch<T>) -> io::Result<Vec<u64>>,
    {
        let batch_reads = self.config.batch_reads;
        let skip_batches = base.map_or(0, |cp| cp.completed_batches);
        let base_recovery = base.map_or_else(RecoveryCounters::default, |cp| cp.recovery);
        let inflight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let (tx, rx) = mpsc::sync_channel::<Msg<T>>(self.config.ring_capacity);
        let cancel = &self.cancel;

        std::thread::scope(|scope| {
            let reader = std::thread::Builder::new()
                .name("casa-stream-reader".to_string())
                .spawn_scoped(scope, {
                    let inflight = &inflight;
                    let peak = &peak;
                    move || {
                        let mut items: Vec<T> = Vec::with_capacity(batch_reads);
                        let mut index: u64 = 0;
                        let mut record: u64 = 0;
                        let flush = |items: &mut Vec<T>, index: &mut u64, record: u64| {
                            let batch = std::mem::replace(items, Vec::with_capacity(batch_reads));
                            let msg = if *index < skip_batches {
                                Msg::Skipped {
                                    reads: batch.len() as u64,
                                }
                            } else {
                                let live =
                                    inflight.fetch_add(batch.len(), Ordering::AcqRel) + batch.len();
                                peak.fetch_max(live, Ordering::AcqRel);
                                Msg::Batch {
                                    index: *index,
                                    first_read: record - batch.len() as u64,
                                    items: batch,
                                }
                            };
                            *index += 1;
                            tx.send(msg).is_ok()
                        };
                        for item in source {
                            if cancel.is_cancelled() {
                                // Discard the partial batch: only full
                                // batches and the natural EOF batch are
                                // ever sent, so batch boundaries match an
                                // uninterrupted run exactly.
                                items.clear();
                                return;
                            }
                            match item {
                                Ok(it) => {
                                    items.push(it);
                                    record += 1;
                                }
                                Err(e) => {
                                    let _ = tx.send(Msg::SourceError {
                                        record,
                                        message: e.to_string(),
                                    });
                                    return;
                                }
                            }
                            if items.len() == batch_reads && !flush(&mut items, &mut index, record)
                            {
                                return;
                            }
                        }
                        if !items.is_empty() && !cancel.is_cancelled() {
                            flush(&mut items, &mut index, record);
                        }
                    }
                })
                .map_err(|_| Error::Runtime {
                    what: "could not spawn stream reader thread",
                })?;

            let mut report = StreamReport::default();
            let mut failure: Option<StreamError> = None;
            let mut watermark = skip_batches;
            let mut completed_reads = base.map_or(0, |cp| cp.completed_reads);
            let mut sink_offsets = base.map_or_else(Vec::new, |cp| cp.sink_offsets.clone());
            let mut since_checkpoint: u64 = 0;

            let make_checkpoint = |watermark: u64,
                                   completed_reads: u64,
                                   sink_offsets: &[u64],
                                   stats: &SeedingStats| {
                let mut recovery = base_recovery;
                recovery.merge(&RecoveryCounters::from_stats(stats));
                StreamCheckpoint {
                    fingerprint: self.fingerprint(),
                    batch_reads: batch_reads as u64,
                    completed_batches: watermark,
                    completed_reads,
                    sink_offsets: sink_offsets.to_vec(),
                    recovery,
                }
            };

            for msg in rx.iter() {
                match msg {
                    Msg::Skipped { reads } => {
                        report.skipped_batches += 1;
                        report.skipped_reads += reads;
                    }
                    Msg::SourceError { record, message } => {
                        if failure.is_none() {
                            failure = Some(StreamError::Source { record, message });
                        }
                        cancel.cancel();
                    }
                    Msg::Batch {
                        index,
                        first_read,
                        items,
                    } => {
                        let n = items.len();
                        if failure.is_some() || cancel.is_cancelled() {
                            // Draining: count the reads out of the
                            // pipeline but do no work.
                            inflight.fetch_sub(n, Ordering::AcqRel);
                            continue;
                        }
                        let packed: Vec<PackedSeq> =
                            items.iter().map(|it| it.seq().clone()).collect();
                        let (forward, reverse) = if self.config.both_strands {
                            let both = self.session.seed_reads_both_strands(&packed);
                            (both.forward, Some(both.reverse))
                        } else {
                            (self.session.seed_reads(&packed), None)
                        };
                        report.stats.merge(&forward.stats);
                        if let Some(rev) = &reverse {
                            report.stats.merge(&rev.stats);
                        }
                        let batch = StreamBatch {
                            index,
                            first_read,
                            items,
                            forward,
                            reverse,
                        };
                        match sink(&batch) {
                            Ok(offsets) => {
                                inflight.fetch_sub(n, Ordering::AcqRel);
                                report.batches += 1;
                                report.reads += n as u64;
                                watermark = index + 1;
                                completed_reads = first_read + n as u64;
                                sink_offsets = offsets;
                                since_checkpoint += 1;
                                if let Some(path) = &self.config.checkpoint {
                                    if since_checkpoint >= self.config.checkpoint_every {
                                        let cp = make_checkpoint(
                                            watermark,
                                            completed_reads,
                                            &sink_offsets,
                                            &report.stats,
                                        );
                                        match cp.save(path) {
                                            Ok(()) => {
                                                report.checkpoints_written += 1;
                                                since_checkpoint = 0;
                                            }
                                            Err(e) => {
                                                failure = Some(StreamError::Checkpoint(e));
                                                cancel.cancel();
                                            }
                                        }
                                    }
                                }
                            }
                            Err(e) => {
                                inflight.fetch_sub(n, Ordering::AcqRel);
                                log_warn!("stream sink failed on batch {index}: {e}");
                                failure = Some(StreamError::Sink(e));
                                cancel.cancel();
                            }
                        }
                    }
                }
            }
            // The ring is closed: the reader is done (or bailed), so the
            // join below cannot block on a full channel.
            let _ = reader.join();

            if let Some(err) = failure {
                return Err(err);
            }
            report.cancelled = cancel.is_cancelled();
            if let Some(path) = &self.config.checkpoint {
                let cp = make_checkpoint(watermark, completed_reads, &sink_offsets, &report.stats);
                cp.save(path)?;
                report.checkpoints_written += 1;
                report.checkpoint = Some(cp);
            }
            report.peak_inflight_reads = peak.load(Ordering::Acquire) as u64;
            Ok(report)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CasaConfig;
    use casa_genome::synth::{generate_reference, ReferenceProfile};
    use casa_genome::{ReadSimConfig, ReadSimulator};
    use std::convert::Infallible;
    use std::sync::Mutex;

    fn scenario() -> (PackedSeq, CasaConfig, Vec<PackedSeq>) {
        let reference = generate_reference(&ReferenceProfile::human_like(), 4_000, 17);
        let mut config = CasaConfig::small(700);
        config.partitioning = casa_genome::PartitionScheme::new(700, 60);
        let sim = ReadSimulator::new(
            ReadSimConfig {
                read_len: 44,
                ..ReadSimConfig::default()
            },
            5,
        );
        let reads = sim
            .simulate(&reference, 57)
            .into_iter()
            .map(|r| r.seq)
            .collect();
        (reference, config, reads)
    }

    fn source_of(
        reads: &[PackedSeq],
    ) -> impl Iterator<Item = Result<PackedSeq, Infallible>> + Send + '_ {
        reads.iter().cloned().map(Ok)
    }

    type SunkBatches = Mutex<Vec<(u64, Vec<Vec<casa_index::Smem>>)>>;

    fn collecting_sink(
        out: &SunkBatches,
    ) -> impl FnMut(&StreamBatch<PackedSeq>) -> io::Result<Vec<u64>> + '_ {
        move |batch| {
            out.lock()
                .unwrap()
                .push((batch.index, batch.forward.smems.clone()));
            Ok(vec![batch.index + 1])
        }
    }

    #[test]
    fn streaming_matches_one_shot_seeding() {
        let (reference, config, reads) = scenario();
        let session = SeedingSession::new(&reference, config, 2).expect("valid config");
        let oneshot = session.seed_reads(&reads);
        let stream = StreamingSession::new(
            session,
            StreamConfig {
                batch_reads: 7,
                ..StreamConfig::default()
            },
        )
        .expect("valid stream config");
        let out = Mutex::new(Vec::new());
        let report = stream
            .run(source_of(&reads), collecting_sink(&out))
            .expect("run succeeds");
        assert!(!report.cancelled);
        assert_eq!(report.reads, reads.len() as u64);
        assert_eq!(report.batches, (reads.len() as u64).div_ceil(7));
        let merged: Vec<_> = out
            .into_inner()
            .unwrap()
            .into_iter()
            .flat_map(|(_, smems)| smems)
            .collect();
        assert_eq!(merged, oneshot.smems);
    }

    #[test]
    fn inflight_reads_stay_bounded() {
        let (reference, config, reads) = scenario();
        let session = SeedingSession::new(&reference, config, 1).expect("valid config");
        let cfg = StreamConfig {
            batch_reads: 4,
            ring_capacity: 2,
            ..StreamConfig::default()
        };
        let bound = (cfg.batch_reads * (cfg.ring_capacity + 2)) as u64;
        let stream = StreamingSession::new(session, cfg).expect("valid stream config");
        let report = stream
            .run(source_of(&reads), |_batch| Ok(Vec::new()))
            .expect("run succeeds");
        assert!(report.peak_inflight_reads > 0);
        assert!(
            report.peak_inflight_reads <= bound,
            "peak {} exceeds bound {bound}",
            report.peak_inflight_reads
        );
    }

    #[test]
    fn cancel_then_resume_is_byte_identical() {
        let (reference, config, reads) = scenario();
        let make = |path: &std::path::Path| {
            let session = SeedingSession::new(&reference, config, 2).expect("valid config");
            StreamingSession::new(
                session,
                StreamConfig {
                    batch_reads: 6,
                    checkpoint: Some(path.to_path_buf()),
                    checkpoint_every: 2,
                    ..StreamConfig::default()
                },
            )
            .expect("valid stream config")
        };
        let dir = std::env::temp_dir().join(format!("casa_stream_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cancel.ckpt");

        // Uninterrupted baseline.
        let baseline = Mutex::new(Vec::new());
        make(&path)
            .run(source_of(&reads), collecting_sink(&baseline))
            .expect("baseline run");
        let baseline = baseline.into_inner().unwrap();

        // Cancel from inside the sink after three batches.
        let first = make(&path);
        let token = first.cancel_token();
        let merged = Mutex::new(Vec::new());
        let report = first
            .run(source_of(&reads), |batch: &StreamBatch<PackedSeq>| {
                merged
                    .lock()
                    .unwrap()
                    .push((batch.index, batch.forward.smems.clone()));
                if batch.index == 2 {
                    token.cancel();
                }
                Ok(vec![batch.index + 1])
            })
            .expect("cancelled run still reports");
        assert!(report.cancelled);
        assert!(report.batches >= 3, "three batches were sunk before cancel");
        assert!(
            report.batches < baseline.len() as u64,
            "cancellation must stop early to make the resume meaningful"
        );

        // Resume from the checkpoint with a different worker count.
        let second = {
            let session = SeedingSession::new(&reference, config, 8).expect("valid config");
            StreamingSession::new(
                session,
                StreamConfig {
                    batch_reads: 6,
                    checkpoint: Some(path.clone()),
                    checkpoint_every: 2,
                    ..StreamConfig::default()
                },
            )
            .expect("valid stream config")
        };
        let cp = second.load_checkpoint(&path).expect("checkpoint loads");
        assert_eq!(cp.completed_batches, report.batches);
        let resumed = second
            .resume(source_of(&reads), collecting_sink(&merged), &cp)
            .expect("resume succeeds");
        assert_eq!(resumed.skipped_batches, cp.completed_batches);
        assert_eq!(
            report.batches + resumed.batches,
            baseline.len() as u64,
            "every batch is seeded exactly once across the two runs"
        );
        assert_eq!(merged.into_inner().unwrap(), baseline);

        // The final checkpoint of the resumed run covers the whole input.
        let final_cp = resumed.checkpoint.expect("final checkpoint");
        assert_eq!(final_cp.completed_reads, reads.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sink_errors_cancel_and_surface() {
        let (reference, config, reads) = scenario();
        let session = SeedingSession::new(&reference, config, 2).expect("valid config");
        let stream = StreamingSession::new(
            session,
            StreamConfig {
                batch_reads: 5,
                ..StreamConfig::default()
            },
        )
        .expect("valid stream config");
        let err = stream
            .run(source_of(&reads), |batch: &StreamBatch<PackedSeq>| {
                if batch.index == 1 {
                    Err(io::Error::other("disk full"))
                } else {
                    Ok(Vec::new())
                }
            })
            .expect_err("sink failure must surface");
        assert!(matches!(err, StreamError::Sink(_)));
        assert!(err.to_string().contains("disk full"));
    }

    #[test]
    fn source_errors_carry_the_record_index() {
        let (reference, config, reads) = scenario();
        let session = SeedingSession::new(&reference, config, 1).expect("valid config");
        let stream =
            StreamingSession::new(session, StreamConfig::default()).expect("valid stream config");
        let source = reads
            .iter()
            .take(3)
            .cloned()
            .map(Ok)
            .chain(std::iter::once(Err("torn read")));
        let err = stream
            .run(source, |_batch: &StreamBatch<PackedSeq>| Ok(Vec::new()))
            .expect_err("source failure must surface");
        match err {
            StreamError::Source { record, message } => {
                assert_eq!(record, 3);
                assert!(message.contains("torn read"));
            }
            other => panic!("expected source error, got {other}"),
        }
    }

    #[test]
    fn bad_stream_configs_are_typed_errors() {
        let (reference, config, _) = scenario();
        for (mutate, field) in [
            (
                StreamConfig {
                    batch_reads: 0,
                    ..StreamConfig::default()
                },
                "batch_reads",
            ),
            (
                StreamConfig {
                    ring_capacity: 0,
                    ..StreamConfig::default()
                },
                "ring_capacity",
            ),
            (
                StreamConfig {
                    checkpoint_every: 0,
                    ..StreamConfig::default()
                },
                "checkpoint_every",
            ),
        ] {
            let session = SeedingSession::new(&reference, config, 1).expect("valid config");
            match StreamingSession::new(session, mutate) {
                Err(Error::Config(ConfigError::BadStreamConfig { reason })) => {
                    assert!(reason.contains(field), "{reason} should mention {field}")
                }
                other => panic!("expected BadStreamConfig for {field}, got {other:?}"),
            }
        }
    }

    #[test]
    fn checkpoints_from_other_configs_are_rejected() {
        let (reference, config, reads) = scenario();
        let dir = std::env::temp_dir().join(format!("casa_stream_fp_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fp.ckpt");
        let a = StreamingSession::new(
            SeedingSession::new(&reference, config, 1).expect("valid config"),
            StreamConfig {
                batch_reads: 8,
                checkpoint: Some(path.clone()),
                ..StreamConfig::default()
            },
        )
        .expect("valid stream config");
        a.run(source_of(&reads), |_b| Ok(Vec::new()))
            .expect("run succeeds");
        // Same session, different batch size: different output layout.
        let b = StreamingSession::new(
            SeedingSession::new(&reference, config, 1).expect("valid config"),
            StreamConfig {
                batch_reads: 9,
                checkpoint: Some(path.clone()),
                ..StreamConfig::default()
            },
        )
        .expect("valid stream config");
        assert!(matches!(
            b.load_checkpoint(&path),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
