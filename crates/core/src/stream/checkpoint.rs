//! Atomic checkpoint journal for the streaming runtime.
//!
//! A [`StreamCheckpoint`] records how far a streaming run has durably
//! progressed: the completed-batch watermark, cumulative recovery
//! counters, the durable sink offsets reported by the output callback,
//! and a fingerprint of everything that must match for a resume to be
//! byte-identical (CASA config, fault plan, batch size, strand mode —
//! deliberately *not* the worker count, which may change freely).
//!
//! # File format
//!
//! One JSON object, `{"version": 1, "checksum": "<hex>", "payload":
//! {...}}`. The checksum is FNV-1a over the canonical serialization of
//! `payload` (the vendored `serde_json` keeps objects in `BTreeMap`s, so
//! key order — and hence the checksummed text — is deterministic). 64-bit
//! hashes are stored as fixed-width hex strings because the vendored JSON
//! number type is `f64`, which cannot hold every `u64` exactly.
//!
//! Writes go to a `<name>.tmp` sibling first and are `rename`d into
//! place, so a crash mid-write leaves the previous checkpoint intact; a
//! torn or tampered file fails [`StreamCheckpoint::load`] with a typed
//! [`CheckpointError`] — never a panic, never a silent fresh start.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

use serde_json::{json, Value};

use crate::stats::SeedingStats;

/// Current checkpoint file format version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// FNV-1a over `bytes` — the checkpoint checksum and fingerprint hash.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Cumulative recovery counters carried across a resume, so a resumed
/// run's final report reflects the whole logical run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Tile attempts retried after a panic or cross-check mismatch.
    pub tile_retries: u64,
    /// Tile attempts abandoned by the watchdog deadline.
    pub deadline_stalls: u64,
    /// Partitions quarantined to the golden model.
    pub partitions_quarantined: u64,
    /// Read passes seeded by the golden fallback.
    pub fallback_reads: u64,
    /// Read passes verified by the sampled golden cross-check.
    pub crosscheck_reads: u64,
    /// Cross-checked read passes that caught silent corruption.
    pub crosscheck_mismatches: u64,
}

impl RecoveryCounters {
    /// Extracts the recovery counters from a stats bag.
    pub fn from_stats(stats: &SeedingStats) -> RecoveryCounters {
        RecoveryCounters {
            tile_retries: stats.tile_retries,
            deadline_stalls: stats.deadline_stalls,
            partitions_quarantined: stats.partitions_quarantined,
            fallback_reads: stats.fallback_reads,
            crosscheck_reads: stats.crosscheck_reads,
            crosscheck_mismatches: stats.crosscheck_mismatches,
        }
    }

    /// Adds another snapshot into this one (all counters are additive).
    pub fn merge(&mut self, other: &RecoveryCounters) {
        self.tile_retries += other.tile_retries;
        self.deadline_stalls += other.deadline_stalls;
        self.partitions_quarantined += other.partitions_quarantined;
        self.fallback_reads += other.fallback_reads;
        self.crosscheck_reads += other.crosscheck_reads;
        self.crosscheck_mismatches += other.crosscheck_mismatches;
    }
}

/// A durable snapshot of streaming progress. See the module docs for the
/// file format and the fingerprint contract.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamCheckpoint {
    /// Hash of the run identity (config, fault plan, batch size, strand
    /// mode). A resume with a different fingerprint is rejected.
    pub fingerprint: u64,
    /// Batch size the watermark is counted in.
    pub batch_reads: u64,
    /// Batches fully processed *and* durably sunk. Resume replays
    /// everything from this watermark on.
    pub completed_batches: u64,
    /// Reads contained in the completed batches.
    pub completed_reads: u64,
    /// Durable sink positions (e.g. output-file byte offsets) reported by
    /// the sink for the last completed batch; empty until a batch
    /// completes. A resuming caller truncates its outputs to these.
    pub sink_offsets: Vec<u64>,
    /// Recovery counters accumulated over the completed batches.
    pub recovery: RecoveryCounters,
}

/// Why a checkpoint could not be saved, loaded, or matched to a session.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure reading or writing the checkpoint.
    Io(io::Error),
    /// The file is not a well-formed checkpoint (bad JSON, missing or
    /// mistyped fields, checksum mismatch — e.g. truncation or tampering).
    Corrupt {
        /// What was wrong, in human-readable form.
        what: String,
    },
    /// The file is a checkpoint of an unsupported format version.
    BadVersion {
        /// The version the file declared.
        found: u64,
    },
    /// The checkpoint belongs to a different run configuration; resuming
    /// from it could not reproduce the uninterrupted output.
    FingerprintMismatch {
        /// The fingerprint of the session trying to resume.
        expected: u64,
        /// The fingerprint stored in the checkpoint.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Corrupt { what } => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (expected {CHECKPOINT_VERSION})"
                )
            }
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found:016x} does not match this run ({expected:016x}); \
                 refusing to resume a different configuration"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

/// `Corrupt` constructor shorthand.
fn corrupt(what: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt { what: what.into() }
}

/// Reads a `u64` field that is stored as a JSON number.
fn u64_field(obj: &Value, key: &str) -> Result<u64, CheckpointError> {
    obj.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| corrupt(format!("missing or non-integer field {key:?}")))
}

/// Reads a `u64` field that is stored as a 16-digit hex string.
fn hex_field(obj: &Value, key: &str) -> Result<u64, CheckpointError> {
    let text = obj
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| corrupt(format!("missing or non-string field {key:?}")))?;
    u64::from_str_radix(text, 16).map_err(|_| corrupt(format!("field {key:?} is not a hex hash")))
}

impl StreamCheckpoint {
    /// The checkpoint body, in canonical key order.
    fn payload_value(&self) -> Value {
        json!({
            "fingerprint": format!("{:016x}", self.fingerprint),
            "batch_reads": self.batch_reads,
            "completed_batches": self.completed_batches,
            "completed_reads": self.completed_reads,
            "sink_offsets": self.sink_offsets.clone(),
            "recovery": {
                "tile_retries": self.recovery.tile_retries,
                "deadline_stalls": self.recovery.deadline_stalls,
                "partitions_quarantined": self.recovery.partitions_quarantined,
                "fallback_reads": self.recovery.fallback_reads,
                "crosscheck_reads": self.recovery.crosscheck_reads,
                "crosscheck_mismatches": self.recovery.crosscheck_mismatches,
            },
        })
    }

    /// Serializes the checkpoint to its file representation.
    pub fn to_json(&self) -> String {
        let payload = self.payload_value();
        let checksum = fnv64(payload.to_string().as_bytes());
        json!({
            "version": CHECKPOINT_VERSION,
            "checksum": format!("{checksum:016x}"),
            "payload": payload,
        })
        .to_string()
    }

    /// Parses and verifies a checkpoint from its file representation.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] for malformed JSON, missing fields, or
    /// a checksum mismatch; [`CheckpointError::BadVersion`] for a version
    /// this build does not understand.
    pub fn from_json(text: &str) -> Result<StreamCheckpoint, CheckpointError> {
        let root = serde_json::from_str(text).map_err(|e| corrupt(format!("bad json: {e}")))?;
        let version = u64_field(&root, "version")?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::BadVersion { found: version });
        }
        let declared = hex_field(&root, "checksum")?;
        let payload = root
            .get("payload")
            .ok_or_else(|| corrupt("missing payload"))?;
        let actual = fnv64(payload.to_string().as_bytes());
        if actual != declared {
            return Err(corrupt(format!(
                "checksum mismatch (declared {declared:016x}, computed {actual:016x})"
            )));
        }
        let sink_offsets = payload
            .get("sink_offsets")
            .and_then(Value::as_array)
            .ok_or_else(|| corrupt("missing or non-array field \"sink_offsets\""))?
            .iter()
            .map(|v| v.as_u64().ok_or_else(|| corrupt("non-integer sink offset")))
            .collect::<Result<Vec<u64>, _>>()?;
        let recovery = payload
            .get("recovery")
            .ok_or_else(|| corrupt("missing recovery counters"))?;
        Ok(StreamCheckpoint {
            fingerprint: hex_field(payload, "fingerprint")?,
            batch_reads: u64_field(payload, "batch_reads")?,
            completed_batches: u64_field(payload, "completed_batches")?,
            completed_reads: u64_field(payload, "completed_reads")?,
            sink_offsets,
            recovery: RecoveryCounters {
                tile_retries: u64_field(recovery, "tile_retries")?,
                deadline_stalls: u64_field(recovery, "deadline_stalls")?,
                partitions_quarantined: u64_field(recovery, "partitions_quarantined")?,
                fallback_reads: u64_field(recovery, "fallback_reads")?,
                crosscheck_reads: u64_field(recovery, "crosscheck_reads")?,
                crosscheck_mismatches: u64_field(recovery, "crosscheck_mismatches")?,
            },
        })
    }

    /// Writes the checkpoint atomically: serialize to `<path>.tmp`, sync,
    /// then rename over `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let file_name = path
            .file_name()
            .ok_or_else(|| corrupt("checkpoint path has no file name"))?
            .to_os_string();
        let mut tmp_name = file_name;
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(self.to_json().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads and verifies a checkpoint file.
    ///
    /// # Errors
    ///
    /// As [`StreamCheckpoint::from_json`], plus [`CheckpointError::Io`]
    /// if the file cannot be read (a missing file is an error — resuming
    /// without a checkpoint must be explicit, never silent).
    pub fn load(path: &Path) -> Result<StreamCheckpoint, CheckpointError> {
        StreamCheckpoint::from_json(&fs::read_to_string(path)?)
    }

    /// Checks this checkpoint against the fingerprint of the session that
    /// wants to resume from it.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::FingerprintMismatch`] when they differ.
    pub fn verify_fingerprint(&self, expected: u64) -> Result<(), CheckpointError> {
        if self.fingerprint != expected {
            return Err(CheckpointError::FingerprintMismatch {
                expected,
                found: self.fingerprint,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StreamCheckpoint {
        StreamCheckpoint {
            fingerprint: 0xdead_beef_cafe_f00d,
            batch_reads: 128,
            completed_batches: 7,
            completed_reads: 896,
            sink_offsets: vec![123_456, 789],
            recovery: RecoveryCounters {
                tile_retries: 3,
                deadline_stalls: 2,
                partitions_quarantined: 1,
                fallback_reads: 40,
                crosscheck_reads: 9,
                crosscheck_mismatches: 1,
            },
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let cp = sample();
        let back = StreamCheckpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn fingerprints_above_2_pow_53_survive_the_f64_json_numbers() {
        // The vendored serde_json stores numbers as f64; hashes ride
        // through as hex strings so no bits are lost.
        let cp = StreamCheckpoint {
            fingerprint: u64::MAX - 1,
            ..sample()
        };
        let back = StreamCheckpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(back.fingerprint, u64::MAX - 1);
    }

    #[test]
    fn save_is_atomic_and_loads_back() {
        let dir = std::env::temp_dir().join(format!("casa_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let first = sample();
        first.save(&path).unwrap();
        assert_eq!(StreamCheckpoint::load(&path).unwrap(), first);
        // Overwrite with a later watermark; the temp file must be gone.
        let second = StreamCheckpoint {
            completed_batches: 9,
            ..sample()
        };
        second.save(&path).unwrap();
        assert_eq!(StreamCheckpoint::load(&path).unwrap(), second);
        assert!(!dir.join("run.ckpt.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error_not_fresh_start() {
        let err = StreamCheckpoint::load(Path::new("/nonexistent/run.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn corrupt_json_and_missing_fields_are_typed_errors() {
        assert!(matches!(
            StreamCheckpoint::from_json("not json at all"),
            Err(CheckpointError::Corrupt { .. })
        ));
        assert!(matches!(
            StreamCheckpoint::from_json("{}"),
            Err(CheckpointError::Corrupt { .. })
        ));
        // Valid wrapper, payload field missing.
        let cp = sample();
        let text = cp.to_json().replace("\"completed_batches\"", "\"renamed\"");
        assert!(matches!(
            StreamCheckpoint::from_json(&text),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn flipped_payload_bytes_fail_the_checksum() {
        let text = sample().to_json();
        // Corrupt the watermark without touching the declared checksum.
        let tampered = text.replace("\"completed_batches\":7", "\"completed_batches\":8");
        assert_ne!(tampered, text, "tamper site must exist");
        match StreamCheckpoint::from_json(&tampered) {
            Err(CheckpointError::Corrupt { what }) => {
                assert!(what.contains("checksum"), "got {what:?}")
            }
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn future_versions_are_rejected_with_bad_version() {
        let text = sample().to_json().replace("\"version\":1", "\"version\":2");
        assert!(matches!(
            StreamCheckpoint::from_json(&text),
            Err(CheckpointError::BadVersion { found: 2 })
        ));
    }

    #[test]
    fn fingerprint_verification_catches_mismatches() {
        let cp = sample();
        assert!(cp.verify_fingerprint(cp.fingerprint).is_ok());
        match cp.verify_fingerprint(1) {
            Err(CheckpointError::FingerprintMismatch { expected, found }) => {
                assert_eq!(expected, 1);
                assert_eq!(found, cp.fingerprint);
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_point_fails_typed() {
        let text = sample().to_json();
        for cut in 0..text.len() {
            let prefix = &text[..cut];
            match StreamCheckpoint::from_json(prefix) {
                Err(
                    CheckpointError::Corrupt { .. }
                    | CheckpointError::BadVersion { .. }
                    | CheckpointError::Io(_),
                ) => {}
                Ok(_) => panic!("truncation at {cut} parsed successfully"),
                Err(other) => panic!("unexpected error at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn recovery_counters_merge_additively() {
        let mut a = RecoveryCounters {
            tile_retries: 1,
            deadline_stalls: 2,
            ..RecoveryCounters::default()
        };
        let b = RecoveryCounters {
            tile_retries: 10,
            fallback_reads: 5,
            ..RecoveryCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.tile_retries, 11);
        assert_eq!(a.deadline_stalls, 2);
        assert_eq!(a.fallback_reads, 5);
    }
}
