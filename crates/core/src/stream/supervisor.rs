//! Watchdog-guarded execution of tile attempts.
//!
//! Safe Rust cannot kill a thread, so a deadline is enforced by running
//! the attempt on a *detached* thread and abandoning it when
//! `recv_timeout` expires: the guarded job keeps running to completion in
//! the background, but its result is discarded (the channel send fails
//! silently) and the scheduler immediately moves on to the retry. This is
//! sound here because a tile attempt's only shared side effects are the
//! partition engine's cumulative activity counters, and the session's
//! delta-based accounting explicitly tolerates counters advanced by an
//! abandoned attempt (see the `session` module docs).
//!
//! # Guard-thread lifecycle
//!
//! Every guard thread registers itself in a process-wide registry for its
//! entire lifetime (RAII, so a panicking job still deregisters). A
//! draining server calls [`wait_for_guard_threads`] after cancelling its
//! sessions to prove that no detached guard survives shutdown: cancelled
//! jobs observe their session's `CancelToken` at the next tile boundary,
//! return early, and the guard exits. The watchdog's wait loop is itself
//! cancel-aware — it polls the token in short slices so a cancelled
//! request is abandoned within ~1 ms instead of holding its scheduler
//! slot until the full tile deadline expires.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::stream::CancelToken;

/// How long the watchdog waits between cancellation checks while a
/// guarded job is in flight.
const CANCEL_POLL_SLICE: Duration = Duration::from_millis(1);

/// The process-wide count of live guard threads, with a condvar so a
/// draining server can await zero.
struct GuardRegistry {
    live: Mutex<usize>,
    drained: Condvar,
}

fn registry() -> &'static GuardRegistry {
    static REGISTRY: OnceLock<GuardRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| GuardRegistry {
        live: Mutex::new(0),
        drained: Condvar::new(),
    })
}

/// RAII registration of one guard thread; drops on every exit path,
/// including a panic inside the guarded job.
struct GuardRegistration;

impl GuardRegistration {
    fn new() -> GuardRegistration {
        let reg = registry();
        *reg.live.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        GuardRegistration
    }
}

impl Drop for GuardRegistration {
    fn drop(&mut self) {
        let reg = registry();
        let mut live = reg.live.lock().unwrap_or_else(PoisonError::into_inner);
        *live = live.saturating_sub(1);
        if *live == 0 {
            reg.drained.notify_all();
        }
    }
}

/// Detached watchdog guard threads currently alive in this process.
pub fn live_guard_threads() -> usize {
    *registry()
        .live
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Blocks until every detached guard thread has exited, or `timeout`
/// elapses. Returns `true` when the count reached zero — the drained
/// server's proof that no guard outlives shutdown. Cancel the sessions
/// first (guards exit when their job observes the token), or the wait
/// can only succeed once in-flight tiles finish naturally.
pub fn wait_for_guard_threads(timeout: Duration) -> bool {
    let reg = registry();
    let deadline = Instant::now() + timeout;
    let mut live = reg.live.lock().unwrap_or_else(PoisonError::into_inner);
    while *live > 0 {
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        let (guard, _timeout) = reg
            .drained
            .wait_timeout(live, deadline - now)
            .unwrap_or_else(PoisonError::into_inner);
        live = guard;
    }
    true
}

/// How a guarded attempt ended.
pub(crate) enum GuardedOutcome<T> {
    /// The job returned within the deadline.
    Completed(T),
    /// The job panicked (or its thread could not be spawned).
    Panicked,
    /// The deadline expired; the job was abandoned mid-flight.
    TimedOut,
    /// The cancel token fired while the job was in flight; the job was
    /// abandoned (it observes the token itself and exits promptly).
    Cancelled,
}

/// Runs `job` on a detached thread and waits at most `deadline` for its
/// result, checking `cancel` between short waits. Panics inside `job`
/// are caught and mapped to [`GuardedOutcome::Panicked`], exactly like
/// the unguarded `catch_unwind` path.
pub(crate) fn run_with_deadline<T, F>(
    deadline: Duration,
    cancel: Option<&CancelToken>,
    job: F,
) -> GuardedOutcome<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (tx, rx) = mpsc::sync_channel(1);
    let spawned = std::thread::Builder::new()
        .name("casa-tile-guard".to_string())
        .spawn(move || {
            let _registration = GuardRegistration::new();
            // The buffered channel means this send never blocks; if the
            // watchdog already gave up, the result is silently dropped.
            let _ = tx.send(catch_unwind(AssertUnwindSafe(job)));
        });
    if spawned.is_err() {
        // Treat spawn exhaustion like a failed attempt: the caller retries
        // with backoff and ultimately falls back to the golden model.
        return GuardedOutcome::Panicked;
    }
    let expires = Instant::now() + deadline;
    loop {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return GuardedOutcome::Cancelled;
        }
        let now = Instant::now();
        if now >= expires {
            return GuardedOutcome::TimedOut;
        }
        let slice = if cancel.is_some() {
            CANCEL_POLL_SLICE.min(expires - now)
        } else {
            expires - now
        };
        match rx.recv_timeout(slice) {
            Ok(Ok(value)) => return GuardedOutcome::Completed(value),
            Ok(Err(_panic)) => return GuardedOutcome::Panicked,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return GuardedOutcome::Panicked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_jobs_complete() {
        match run_with_deadline(Duration::from_secs(5), None, || 41 + 1) {
            GuardedOutcome::Completed(v) => assert_eq!(v, 42),
            _ => panic!("expected completion"),
        }
    }

    #[test]
    fn slow_jobs_time_out() {
        let outcome = run_with_deadline(Duration::from_millis(5), None, || {
            std::thread::sleep(Duration::from_millis(200));
            0u8
        });
        assert!(matches!(outcome, GuardedOutcome::TimedOut));
    }

    #[test]
    fn panicking_jobs_are_reported_not_propagated() {
        crate::faults::silence_injected_panics();
        let outcome = run_with_deadline(Duration::from_secs(5), None, || {
            std::panic::panic_any(crate::faults::InjectedFault {
                partition: 0,
                tile: 0,
                attempt: 0,
            });
            #[allow(unreachable_code)]
            0u8
        });
        assert!(matches!(outcome, GuardedOutcome::Panicked));
    }

    #[test]
    fn cancellation_abandons_the_wait_promptly() {
        let token = CancelToken::new();
        token.cancel();
        let started = Instant::now();
        let outcome = run_with_deadline(Duration::from_secs(30), Some(&token), || {
            std::thread::sleep(Duration::from_millis(100));
            0u8
        });
        assert!(matches!(outcome, GuardedOutcome::Cancelled));
        // The watchdog must give up within poll slices, not the 30 s
        // deadline (generous bound for loaded CI machines).
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn guard_threads_register_and_drain() {
        // The guarded job blocks until we let it finish, so the registry
        // must report a live guard in the meantime.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let outcome = run_with_deadline(Duration::from_millis(5), None, move || {
            let _ = release_rx.recv_timeout(Duration::from_secs(10));
            0u8
        });
        assert!(matches!(outcome, GuardedOutcome::TimedOut));
        assert!(live_guard_threads() >= 1);
        assert!(!wait_for_guard_threads(Duration::from_millis(20)));
        release_tx.send(()).unwrap();
        // Other tests run guards concurrently, so wait for global zero
        // with a generous deadline rather than asserting an exact count
        // afterwards (a parallel test may spawn a new guard immediately).
        assert!(wait_for_guard_threads(Duration::from_secs(10)));
    }
}
