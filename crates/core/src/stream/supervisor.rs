//! Watchdog-guarded execution of tile attempts.
//!
//! Safe Rust cannot kill a thread, so a deadline is enforced by running
//! the attempt on a *detached* thread and abandoning it when
//! `recv_timeout` expires: the guarded job keeps running to completion in
//! the background, but its result is discarded (the channel send fails
//! silently) and the scheduler immediately moves on to the retry. This is
//! sound here because a tile attempt's only shared side effects are the
//! partition engine's cumulative activity counters, and the session's
//! delta-based accounting explicitly tolerates counters advanced by an
//! abandoned attempt (see the `session` module docs).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Duration;

/// How a guarded attempt ended.
pub(crate) enum GuardedOutcome<T> {
    /// The job returned within the deadline.
    Completed(T),
    /// The job panicked (or its thread could not be spawned).
    Panicked,
    /// The deadline expired; the job was abandoned mid-flight.
    TimedOut,
}

/// Runs `job` on a detached thread and waits at most `deadline` for its
/// result. Panics inside `job` are caught and mapped to
/// [`GuardedOutcome::Panicked`], exactly like the unguarded
/// `catch_unwind` path.
pub(crate) fn run_with_deadline<T, F>(deadline: Duration, job: F) -> GuardedOutcome<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (tx, rx) = mpsc::sync_channel(1);
    let spawned = std::thread::Builder::new()
        .name("casa-tile-guard".to_string())
        .spawn(move || {
            // The buffered channel means this send never blocks; if the
            // watchdog already gave up, the result is silently dropped.
            let _ = tx.send(catch_unwind(AssertUnwindSafe(job)));
        });
    if spawned.is_err() {
        // Treat spawn exhaustion like a failed attempt: the caller retries
        // with backoff and ultimately falls back to the golden model.
        return GuardedOutcome::Panicked;
    }
    match rx.recv_timeout(deadline) {
        Ok(Ok(value)) => GuardedOutcome::Completed(value),
        Ok(Err(_panic)) => GuardedOutcome::Panicked,
        Err(mpsc::RecvTimeoutError::Timeout) => GuardedOutcome::TimedOut,
        Err(mpsc::RecvTimeoutError::Disconnected) => GuardedOutcome::Panicked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_jobs_complete() {
        match run_with_deadline(Duration::from_secs(5), || 41 + 1) {
            GuardedOutcome::Completed(v) => assert_eq!(v, 42),
            _ => panic!("expected completion"),
        }
    }

    #[test]
    fn slow_jobs_time_out() {
        let outcome = run_with_deadline(Duration::from_millis(5), || {
            std::thread::sleep(Duration::from_millis(200));
            0u8
        });
        assert!(matches!(outcome, GuardedOutcome::TimedOut));
    }

    #[test]
    fn panicking_jobs_are_reported_not_propagated() {
        crate::faults::silence_injected_panics();
        let outcome = run_with_deadline(Duration::from_secs(5), || {
            std::panic::panic_any(crate::faults::InjectedFault {
                partition: 0,
                tile: 0,
                attempt: 0,
            });
            #[allow(unreachable_code)]
            0u8
        });
        assert!(matches!(outcome, GuardedOutcome::Panicked));
    }
}
