//! CASA accelerator configuration.

use casa_filter::FilterConfig;
use casa_genome::PartitionScheme;
use serde::{Deserialize, Serialize};

use crate::error::ConfigError;

/// Full configuration of a CASA instance.
///
/// [`CasaConfig::paper`] reproduces the published design point: k = 19
/// pre-seeding filter (m = 10), ten 1 MB computing CAMs with 40-base
/// entries in 20 groups, a 512-entry FIFO between the pipeline stages, and
/// 2 GHz controllers.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CasaConfig {
    /// Pre-seeding filter geometry (k, m, stride, groups).
    pub filter: FilterConfig,
    /// Minimum SMEM length reported as a seed. Must be ≥ `filter.k`
    /// (CASA sets both to 19).
    pub min_smem_len: usize,
    /// Number of SMEM computing CAMs, each seeding one read at a time
    /// (paper: 10).
    pub lanes: usize,
    /// FIFO depth between the pre-seeding and computing stages (paper:
    /// 512). Affects only the timing model.
    pub fifo_depth: usize,
    /// Concurrent pre-seeding filter banks (the paper multi-banks the
    /// filter so the pre-seeding stage outruns SMEM computing, §4.1).
    pub filter_banks: usize,
    /// Whether the exact-match read pre-processing of §4.3 is enabled.
    pub exact_match_preprocessing: bool,
    /// Whether the pre-seeding filter table is consulted at all. Disabling
    /// it yields the "naive" bar of Fig. 15 (every pivot triggers a CAM
    /// RMEM search).
    pub use_filter_table: bool,
    /// Whether Algorithm 1's pivot analyses (CRkM check + alignment check)
    /// run. Disabling them yields the "table" bar of Fig. 15.
    pub use_pivot_analysis: bool,
    /// How the reference is split across accelerator passes.
    pub partitioning: PartitionScheme,
}

impl CasaConfig {
    /// The published design point, with partitions sized for the given
    /// read length (overlap `read_len − 1` so no match window straddles a
    /// cut).
    ///
    /// The paper's hardware holds 4 M bases per 1 MB CAM; simulating
    /// 4 M-base partitions is possible but slow in unit tests, so the
    /// partition length is a parameter everywhere and experiments pick
    /// their scale.
    pub fn paper(part_len: usize, read_len: usize) -> CasaConfig {
        CasaConfig {
            filter: FilterConfig::default(),
            min_smem_len: 19,
            lanes: 10,
            fifo_depth: 512,
            filter_banks: 128,
            exact_match_preprocessing: true,
            use_filter_table: true,
            use_pivot_analysis: true,
            partitioning: PartitionScheme::new(part_len, read_len.saturating_sub(1)),
        }
    }

    /// A small geometry for unit tests: k = 6, m = 3, 8-base entries,
    /// 4 groups.
    pub fn small(part_len: usize) -> CasaConfig {
        CasaConfig {
            filter: FilterConfig::small(6, 3),
            min_smem_len: 6,
            lanes: 2,
            fifo_depth: 16,
            filter_banks: 8,
            exact_match_preprocessing: true,
            use_filter_table: true,
            use_pivot_analysis: true,
            partitioning: PartitionScheme::new(part_len, part_len / 2),
        }
    }

    /// Starts a [`CasaConfigBuilder`] seeded with the published design
    /// point (equivalent to [`CasaConfig::paper`] with a 1 Mbase partition
    /// and 101-base reads).
    pub fn builder() -> CasaConfigBuilder {
        CasaConfigBuilder::from_config(CasaConfig::paper(1 << 20, 101))
    }

    /// Checks every structural invariant and returns the config by value,
    /// ready to hand to a constructor.
    ///
    /// This is the non-panicking replacement for the removed
    /// `CasaConfig::validate`:
    /// the same invariants, reported as a [`ConfigError`] instead of an
    /// assertion failure. It also covers the partition-scheme and filter
    /// geometry invariants that the panicking path only enforced inside
    /// `PartitionScheme::new` / `FilterConfig::new`, so configs built via
    /// struct literals (or the builder) are fully checked here.
    pub fn validated(self) -> Result<CasaConfig, ConfigError> {
        if self.min_smem_len < self.filter.k {
            return Err(ConfigError::MinSmemShorterThanK {
                min_smem_len: self.min_smem_len,
                k: self.filter.k,
            });
        }
        if self.lanes == 0 {
            return Err(ConfigError::ZeroLanes);
        }
        if self.filter_banks == 0 {
            return Err(ConfigError::ZeroFilterBanks);
        }
        if self.partitioning.part_len == 0 {
            return Err(ConfigError::ZeroPartitionLen);
        }
        if self.partitioning.overlap >= self.partitioning.part_len {
            return Err(ConfigError::OverlapTooLarge {
                overlap: self.partitioning.overlap,
                part_len: self.partitioning.part_len,
            });
        }
        let f = self.filter;
        if f.m < 1 || f.m >= f.k {
            return Err(ConfigError::BadFilterGeometry {
                reason: "need 1 <= m < k",
            });
        }
        if f.k > 32 {
            return Err(ConfigError::BadFilterGeometry {
                reason: "k must fit a 64-bit code (k <= 32)",
            });
        }
        if f.stride > 64 {
            return Err(ConfigError::BadFilterGeometry {
                reason: "stride must fit the start mask (stride <= 64)",
            });
        }
        if f.groups < 1 || f.groups > 32 {
            return Err(ConfigError::BadFilterGeometry {
                reason: "groups must fit the indicator (1 <= groups <= 32)",
            });
        }
        Ok(self)
    }
}

/// Fluent construction of a [`CasaConfig`].
///
/// Starts from the published design point ([`CasaConfig::builder`]) and
/// lets callers override the knobs they care about; [`build`] validates
/// the result. The partition overlap tracks the last of `read_len` /
/// `overlap` to be set.
///
/// ```
/// use casa_core::CasaConfig;
/// let config = CasaConfig::builder()
///     .partition_len(50_000)
///     .read_len(101)
///     .lanes(4)
///     .build()?;
/// assert_eq!(config.partitioning.part_len, 50_000);
/// assert_eq!(config.partitioning.overlap, 100);
/// # Ok::<(), casa_core::ConfigError>(())
/// ```
///
/// [`build`]: CasaConfigBuilder::build
#[derive(Clone, Debug)]
pub struct CasaConfigBuilder {
    cfg: CasaConfig,
}

impl CasaConfigBuilder {
    fn from_config(cfg: CasaConfig) -> CasaConfigBuilder {
        CasaConfigBuilder { cfg }
    }

    /// Sets the partition length in bases.
    pub fn partition_len(mut self, part_len: usize) -> Self {
        self.cfg.partitioning.part_len = part_len;
        self
    }

    /// Sets the partition overlap directly, in bases.
    pub fn overlap(mut self, overlap: usize) -> Self {
        self.cfg.partitioning.overlap = overlap;
        self
    }

    /// Sets the partition overlap from a read length (`read_len - 1`, so
    /// no read-sized window straddles a partition cut).
    pub fn read_len(mut self, read_len: usize) -> Self {
        self.cfg.partitioning.overlap = read_len.saturating_sub(1);
        self
    }

    /// Sets the pre-seeding filter geometry (k, m, stride, groups).
    pub fn filter_geometry(mut self, k: usize, m: usize, stride: usize, groups: usize) -> Self {
        self.cfg.filter = FilterConfig {
            k,
            m,
            stride,
            groups,
        };
        self
    }

    /// Sets the minimum SMEM length reported as a seed.
    pub fn min_smem_len(mut self, min_smem_len: usize) -> Self {
        self.cfg.min_smem_len = min_smem_len;
        self
    }

    /// Sets the number of SMEM computing CAM lanes.
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.cfg.lanes = lanes;
        self
    }

    /// Sets the FIFO depth between the pipeline stages.
    pub fn fifo_depth(mut self, fifo_depth: usize) -> Self {
        self.cfg.fifo_depth = fifo_depth;
        self
    }

    /// Sets the number of concurrent pre-seeding filter banks.
    pub fn filter_banks(mut self, filter_banks: usize) -> Self {
        self.cfg.filter_banks = filter_banks;
        self
    }

    /// Enables or disables the §4.3 exact-match read pre-processing.
    pub fn exact_match_preprocessing(mut self, enabled: bool) -> Self {
        self.cfg.exact_match_preprocessing = enabled;
        self
    }

    /// Enables or disables the pre-seeding filter table.
    pub fn use_filter_table(mut self, enabled: bool) -> Self {
        self.cfg.use_filter_table = enabled;
        self
    }

    /// Enables or disables Algorithm 1's pivot analyses.
    pub fn use_pivot_analysis(mut self, enabled: bool) -> Self {
        self.cfg.use_pivot_analysis = enabled;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`ConfigError`].
    pub fn build(self) -> Result<CasaConfig, ConfigError> {
        self.cfg.validated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_published_numbers() {
        let c = CasaConfig::paper(1 << 20, 101);
        assert_eq!(c.filter.k, 19);
        assert_eq!(c.filter.m, 10);
        assert_eq!(c.filter.stride, 40);
        assert_eq!(c.filter.groups, 20);
        assert_eq!(c.lanes, 10);
        assert_eq!(c.fifo_depth, 512);
        assert_eq!(c.min_smem_len, 19);
        assert_eq!(c.partitioning.overlap, 100);
        c.validated().expect("paper config is valid");
    }

    #[test]
    fn rejects_short_min_smem() {
        let mut c = CasaConfig::paper(1000, 101);
        c.min_smem_len = 10;
        assert_eq!(
            c.validated(),
            Err(ConfigError::MinSmemShorterThanK {
                min_smem_len: 10,
                k: 19
            })
        );
    }

    #[test]
    fn builder_overrides_and_validates() {
        let c = CasaConfig::builder()
            .partition_len(8_192)
            .read_len(151)
            .lanes(4)
            .fifo_depth(64)
            .filter_banks(16)
            .filter_geometry(21, 11, 40, 20)
            .min_smem_len(21)
            .exact_match_preprocessing(false)
            .use_filter_table(true)
            .use_pivot_analysis(false)
            .build()
            .expect("valid override set");
        assert_eq!(c.partitioning.part_len, 8_192);
        assert_eq!(c.partitioning.overlap, 150);
        assert_eq!(c.lanes, 4);
        assert_eq!(c.filter.k, 21);
        assert!(!c.exact_match_preprocessing);
        assert!(!c.use_pivot_analysis);
    }

    #[test]
    fn builder_rejects_bad_geometry() {
        // Partition smaller than the overlap: the historical CLI panic
        // path, now a typed error.
        let err = CasaConfig::builder()
            .partition_len(50)
            .read_len(101)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::OverlapTooLarge {
                overlap: 100,
                part_len: 50
            }
        );
        assert!(matches!(
            CasaConfig::builder().lanes(0).build(),
            Err(ConfigError::ZeroLanes)
        ));
        assert!(matches!(
            CasaConfig::builder()
                .filter_geometry(40, 10, 40, 20)
                .min_smem_len(40)
                .build(),
            Err(ConfigError::BadFilterGeometry { .. })
        ));
        assert!(matches!(
            CasaConfig::builder().partition_len(0).build(),
            Err(ConfigError::ZeroPartitionLen)
        ));
    }
}
