//! CASA accelerator configuration.

use casa_filter::FilterConfig;
use casa_genome::PartitionScheme;
use serde::{Deserialize, Serialize};

/// Full configuration of a CASA instance.
///
/// [`CasaConfig::paper`] reproduces the published design point: k = 19
/// pre-seeding filter (m = 10), ten 1 MB computing CAMs with 40-base
/// entries in 20 groups, a 512-entry FIFO between the pipeline stages, and
/// 2 GHz controllers.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CasaConfig {
    /// Pre-seeding filter geometry (k, m, stride, groups).
    pub filter: FilterConfig,
    /// Minimum SMEM length reported as a seed. Must be ≥ `filter.k`
    /// (CASA sets both to 19).
    pub min_smem_len: usize,
    /// Number of SMEM computing CAMs, each seeding one read at a time
    /// (paper: 10).
    pub lanes: usize,
    /// FIFO depth between the pre-seeding and computing stages (paper:
    /// 512). Affects only the timing model.
    pub fifo_depth: usize,
    /// Concurrent pre-seeding filter banks (the paper multi-banks the
    /// filter so the pre-seeding stage outruns SMEM computing, §4.1).
    pub filter_banks: usize,
    /// Whether the exact-match read pre-processing of §4.3 is enabled.
    pub exact_match_preprocessing: bool,
    /// Whether the pre-seeding filter table is consulted at all. Disabling
    /// it yields the "naive" bar of Fig. 15 (every pivot triggers a CAM
    /// RMEM search).
    pub use_filter_table: bool,
    /// Whether Algorithm 1's pivot analyses (CRkM check + alignment check)
    /// run. Disabling them yields the "table" bar of Fig. 15.
    pub use_pivot_analysis: bool,
    /// How the reference is split across accelerator passes.
    pub partitioning: PartitionScheme,
}

impl CasaConfig {
    /// The published design point, with partitions sized for the given
    /// read length (overlap `read_len − 1` so no match window straddles a
    /// cut).
    ///
    /// The paper's hardware holds 4 M bases per 1 MB CAM; simulating
    /// 4 M-base partitions is possible but slow in unit tests, so the
    /// partition length is a parameter everywhere and experiments pick
    /// their scale.
    pub fn paper(part_len: usize, read_len: usize) -> CasaConfig {
        CasaConfig {
            filter: FilterConfig::default(),
            min_smem_len: 19,
            lanes: 10,
            fifo_depth: 512,
            filter_banks: 128,
            exact_match_preprocessing: true,
            use_filter_table: true,
            use_pivot_analysis: true,
            partitioning: PartitionScheme::new(part_len, read_len.saturating_sub(1)),
        }
    }

    /// A small geometry for unit tests: k = 6, m = 3, 8-base entries,
    /// 4 groups.
    pub fn small(part_len: usize) -> CasaConfig {
        CasaConfig {
            filter: FilterConfig::small(6, 3),
            min_smem_len: 6,
            lanes: 2,
            fifo_depth: 16,
            filter_banks: 8,
            exact_match_preprocessing: true,
            use_filter_table: true,
            use_pivot_analysis: true,
            partitioning: PartitionScheme::new(part_len, part_len / 2),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `min_smem_len < filter.k` (the pivot-filtering argument
    /// requires the filter k-mer to be no longer than the reported SMEMs)
    /// or `lanes == 0`.
    pub fn validate(&self) {
        assert!(
            self.min_smem_len >= self.filter.k,
            "min_smem_len ({}) must be >= filter k ({})",
            self.min_smem_len,
            self.filter.k
        );
        assert!(self.lanes > 0, "need at least one computing CAM lane");
        assert!(self.filter_banks > 0, "need at least one filter bank");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_published_numbers() {
        let c = CasaConfig::paper(1 << 20, 101);
        assert_eq!(c.filter.k, 19);
        assert_eq!(c.filter.m, 10);
        assert_eq!(c.filter.stride, 40);
        assert_eq!(c.filter.groups, 20);
        assert_eq!(c.lanes, 10);
        assert_eq!(c.fifo_depth, 512);
        assert_eq!(c.min_smem_len, 19);
        assert_eq!(c.partitioning.overlap, 100);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "min_smem_len")]
    fn rejects_short_min_smem() {
        let mut c = CasaConfig::paper(1000, 101);
        c.min_smem_len = 10;
        c.validate();
    }
}
