//! Per-partition seeding engine: Algorithm 1 (the filter-enabled SMEM
//! computing algorithm) plus the exact-match pre-processing of §4.3.

use casa_cam::KernelBackend;
use casa_filter::{PreSeedingFilter, SearchIndicator};
use casa_genome::PackedSeq;
use casa_index::Smem;

use crate::error::ConfigError;
use crate::profile::{Stage, StageTimer};
use crate::rmem::{CamSearcher, RmemResult};
use crate::stats::SeedingStats;
use crate::CasaConfig;

/// Controller cycles to evaluate one pivot's checks in the computing
/// stage.
const PIVOT_CHECK_CYCLES: u64 = 1;

/// Pivots collected per RMEM batch when Algorithm 1 pivot gating is off.
///
/// With gating **on** the block size is pinned to 1: whether a pivot
/// searches at all depends on the previous pivots' RMEM results (`last`),
/// so issuing speculative searches ahead of that decision would change the
/// search multiset — and with it the published activity figures. With
/// gating off every surviving pivot searches unconditionally (containment
/// only affects recording), so pivots batch freely.
const PIVOT_BLOCK: usize = casa_cam::MAX_BATCH;

/// One CASA lane bound to one reference partition.
///
/// ```
/// use casa_core::{CasaConfig, PartitionEngine};
/// use casa_core::stats::SeedingStats;
/// use casa_genome::PackedSeq;
///
/// let part = PackedSeq::from_ascii(&b"GATTACA".repeat(12))?;
/// let mut engine = PartitionEngine::new(&part, CasaConfig::small(64))?;
/// let mut stats = SeedingStats::default();
/// let read = part.subseq(5, 30);
/// let smems = engine.seed_read(&read, &mut stats);
/// assert_eq!(smems.len(), 1);
/// assert_eq!(smems[0].len(), 30);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct PartitionEngine {
    config: CasaConfig,
    filter: PreSeedingFilter,
    searcher: CamSearcher,
    /// Rolling k-mer codes of the read being seeded, for callers that do
    /// not precompute them (hot-path scratch: filled once per read,
    /// indexed per pivot). The session's tile path derives each tile's
    /// codes once and shares them across every partition engine via
    /// [`seed_read_with_codes_into`](Self::seed_read_with_codes_into)
    /// instead, leaving this buffer untouched.
    kmer_codes: Vec<u64>,
    /// Reusable RMEM result buffer.
    rmem_scratch: RmemResult,
    /// Filter-surviving pivots awaiting a batched RMEM (see
    /// [`PIVOT_BLOCK`]).
    pivot_block: Vec<(usize, SearchIndicator)>,
    /// Reusable per-pivot RMEM results of the current block.
    block_results: Vec<RmemResult>,
    /// Per-pivot indicators fetched by the batched filter pass (see
    /// [`set_batched_filter`](Self::set_batched_filter)).
    indicators: Vec<SearchIndicator>,
    /// Whether stage spans take wall-clock timestamps (see
    /// [`crate::profile`]). Off by default: timings are nondeterministic
    /// and excluded from the bit-identity contract.
    profiling: bool,
    /// Whether pivot lookups go through the batched
    /// [`lookup_codes_into`](PreSeedingFilter::lookup_codes_into) pass
    /// (default) or the per-pivot seed path. Outputs and stats are
    /// bit-identical either way; the switch exists so `stage_profile` can
    /// measure before/after.
    batched_filter: bool,
}

impl PartitionEngine {
    /// Builds the filter tables and loads the partition into the computing
    /// CAM.
    ///
    /// # Errors
    ///
    /// Returns the first violated configuration invariant (see
    /// [`CasaConfig::validated`]).
    pub fn new(partition: &PackedSeq, config: CasaConfig) -> Result<PartitionEngine, ConfigError> {
        let config = config.validated()?;
        // An invalid `CASA_KERNEL` must surface as a typed error, not a
        // panic (and not be silently ignored).
        let env_backend = casa_cam::kernel::backend_from_env()?;
        let mut searcher = CamSearcher::new(partition, config.filter.stride, config.filter.groups);
        if let Some(backend) = env_backend {
            searcher.set_kernel_backend(backend);
        }
        Ok(PartitionEngine {
            config,
            filter: PreSeedingFilter::build(partition, config.filter),
            searcher,
            kmer_codes: Vec::new(),
            rmem_scratch: RmemResult::default(),
            pivot_block: Vec::new(),
            block_results: Vec::new(),
            indicators: Vec::new(),
            profiling: false,
            batched_filter: true,
        })
    }

    /// Assembles an engine from a prebuilt filter and CAM — the zero-copy
    /// image-loading path. Behaves exactly like [`PartitionEngine::new`]
    /// on the same partition and config (including `CASA_KERNEL` backend
    /// selection), except that no tables are rebuilt.
    pub fn from_parts(
        filter: PreSeedingFilter,
        cam: casa_cam::Bcam,
        config: CasaConfig,
    ) -> Result<PartitionEngine, ConfigError> {
        let config = config.validated()?;
        let env_backend = casa_cam::kernel::backend_from_env()?;
        let mut searcher = CamSearcher::from_cam(cam, config.filter.groups);
        if let Some(backend) = env_backend {
            searcher.set_kernel_backend(backend);
        }
        Ok(PartitionEngine {
            config,
            filter,
            searcher,
            kmer_codes: Vec::new(),
            rmem_scratch: RmemResult::default(),
            pivot_block: Vec::new(),
            block_results: Vec::new(),
            indicators: Vec::new(),
            profiling: false,
            batched_filter: true,
        })
    }

    /// Enables wall-clock per-stage profiling (see [`crate::profile`]).
    /// Spans accumulate into the caller's
    /// [`SeedingStats::profile`](crate::SeedingStats). Default off; when
    /// off, no timestamps are taken at all.
    pub fn set_profiling(&mut self, enabled: bool) {
        self.profiling = enabled;
    }

    /// Whether per-stage profiling is enabled.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// Switches between the batched pre-seeding lookup pass (default) and
    /// the per-pivot seed path. Bit-identical outputs and stats either
    /// way; the `stage_profile` experiment flips this to measure the
    /// before/after of the batching optimization.
    pub fn set_batched_filter(&mut self, batched: bool) {
        self.batched_filter = batched;
    }

    /// Switches the computing CAM between the bit-parallel kernel
    /// (default) and the scalar oracle (see [`casa_cam::Bcam::search_scalar`]);
    /// hits and stats are bit-identical either way. Regression tests use
    /// this to run the oracle through the full seeding pipeline.
    pub fn set_scalar_search(&mut self, scalar: bool) {
        self.searcher.set_scalar_search(scalar);
    }

    /// Selects the word-level kernel backend of this engine's computing
    /// CAM (see [`casa_cam::KernelBackend`]); hits and stats are
    /// bit-identical across backends. Unsupported requests degrade to the
    /// best supported backend; the CLI and env paths validate support
    /// before calling this.
    pub fn set_kernel_backend(&mut self, backend: KernelBackend) {
        self.searcher.set_kernel_backend(backend);
    }

    /// The computing CAM's effective kernel backend.
    pub fn kernel_backend(&self) -> KernelBackend {
        self.searcher.kernel_backend()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &CasaConfig {
        &self.config
    }

    /// Whether this engine's reference-side arrays (filter tables and CAM
    /// entry bitplanes) are all borrowed from a mapped index image rather
    /// than owned heap allocations. Fault injection detaches the affected
    /// arrays copy-on-write, after which this reports `false`.
    pub fn storage_shared(&self) -> bool {
        self.filter.tables_shared() && self.searcher.cam().planes_shared()
    }

    /// Injects seeded hardware faults into this engine's computing CAM and
    /// filter tables, returning the chosen sites. Used by
    /// [`SeedingSession`](crate::SeedingSession) at construction when a
    /// fault plan is active.
    pub fn inject_faults(
        &mut self,
        cam: &casa_cam::CamFaultModel,
        filter: &casa_filter::FilterFaultModel,
    ) -> (casa_cam::CamFaultReport, casa_filter::FilterFaultReport) {
        (
            self.searcher.inject_faults(cam),
            self.filter.inject_faults(filter),
        )
    }

    /// Seeds one read against this partition. Returned SMEM hits are
    /// **partition-local**; the caller translates them to global
    /// coordinates and merges across partitions.
    ///
    /// Implements the paper's Algorithm 1 with all ablation switches, plus
    /// the §4.3 exact-match pre-processing.
    pub fn seed_read(&mut self, read: &PackedSeq, stats: &mut SeedingStats) -> Vec<Smem> {
        let mut out = Vec::new();
        self.seed_read_into(read, stats, &mut out);
        out
    }

    /// [`seed_read`](Self::seed_read) into a caller-owned buffer, cleared
    /// first — the allocation-free form the session's tile path uses
    /// end-to-end. Identical output and stats.
    pub fn seed_read_into(
        &mut self,
        read: &PackedSeq,
        stats: &mut SeedingStats,
        out: &mut Vec<Smem>,
    ) {
        let k = self.config.filter.k;
        if read.len() < k {
            self.seed_read_with_codes_into(read, &[], stats, out);
            return;
        }
        // Rolling k-mer codes, once per read: every pivot (and the CRkM
        // and exact-match lookups) reads its code in O(1) instead of
        // recomputing an O(k) `kmer_code`. The scratch is taken out of
        // `self` for the call so the codes can be borrowed alongside the
        // engine, then put back to keep the allocation pooled.
        let t = StageTimer::start(self.profiling);
        let mut codes = std::mem::take(&mut self.kmer_codes);
        codes.clear();
        codes.extend(read.kmers(k).map(|(_, code)| code));
        t.stop(&mut stats.profile, Stage::KmerCodes);
        self.seed_read_with_codes_into(read, &codes, stats, out);
        self.kmer_codes = codes;
    }

    /// [`seed_read_into`](Self::seed_read_into) with the read's rolling
    /// k-mer codes (window `config.filter.k`, in read order, exactly as
    /// [`PackedSeq::kmers`] produces them) already computed by the
    /// caller. The parallel session derives each tile's codes **once**
    /// and shares them across all partition engines, which would
    /// otherwise each re-derive the identical values per read. Output
    /// and statistics are bit-identical to `seed_read_into`; passing
    /// codes that are not the read's own is a logic error.
    pub fn seed_read_with_codes_into(
        &mut self,
        read: &PackedSeq,
        codes: &[u64],
        stats: &mut SeedingStats,
        out: &mut Vec<Smem>,
    ) {
        out.clear();
        stats.read_passes += 1;
        let filter_before = self.filter.stats();
        let cam_before = self.searcher.cam().stats();
        let mut computing_cycles = 0u64;

        if read.len() >= self.config.filter.k {
            debug_assert_eq!(codes.len(), read.len() - self.config.filter.k + 1);
            self.seed_read_body(read, codes, stats, &mut computing_cycles, out);
        }

        stats.smems_reported += out.len() as u64;

        // Activity deltas -> pipeline cycle model.
        let filter_after = self.filter.stats();
        let lookups = filter_after.lookups - filter_before.lookups;
        let data_reads = filter_after.data_reads - filter_before.data_reads;
        stats.filter_ops += lookups + data_reads;
        stats.computing_cycles += computing_cycles + 2;

        let cam_after = self.searcher.cam().stats();
        let mut filter_delta = filter_after;
        // store deltas, not absolutes
        filter_delta.lookups = lookups;
        filter_delta.mini_index_reads =
            filter_after.mini_index_reads - filter_before.mini_index_reads;
        filter_delta.tag_searches = filter_after.tag_searches - filter_before.tag_searches;
        filter_delta.tag_rows_enabled =
            filter_after.tag_rows_enabled - filter_before.tag_rows_enabled;
        filter_delta.tag_physical_rows =
            filter_after.tag_physical_rows - filter_before.tag_physical_rows;
        filter_delta.data_reads = data_reads;
        filter_delta.hits = filter_after.hits - filter_before.hits;
        stats.filter.merge(&filter_delta);
        stats.cam.merge(&casa_cam::CamStats {
            searches: cam_after.searches - cam_before.searches,
            rows_enabled: cam_after.rows_enabled - cam_before.rows_enabled,
            arrays_activated: cam_after.arrays_activated - cam_before.arrays_activated,
            matches: cam_after.matches - cam_before.matches,
        });
        // DRAM: seed records out. Read streaming is charged once per
        // batch by the accelerator (reads sit in the on-chip buffer while
        // partitions rotate); partition loads amortize over the
        // production-scale read volume and are excluded (DESIGN.md §3).
        stats.dram_bytes += out.iter().map(|s| 8 + 4 * s.hits.len() as u64).sum::<u64>();
    }

    /// Algorithm 1 proper: the pivot loop with all ablation switches, the
    /// §4.3 exact-match attempt, and the batched pre-seeding pass.
    fn seed_read_body(
        &mut self,
        read: &PackedSeq,
        codes: &[u64],
        stats: &mut SeedingStats,
        computing_cycles: &mut u64,
        out: &mut Vec<Smem>,
    ) {
        let k = self.config.filter.k;

        if self.config.exact_match_preprocessing
            && self.try_exact_match_into(read, codes, stats, computing_cycles, out)
        {
            stats.exact_match_reads += 1;
            return;
        }

        // Batched pre-seeding: fetch every pivot's indicator in one
        // memory-level-parallel pass before the pivot loop starts. Same
        // lookup multiset — and therefore the same FilterStats — as the
        // per-pivot path, which looks every pivot's k-mer up at the top
        // of its iteration anyway.
        let batched = self.config.use_filter_table && self.batched_filter;
        if batched {
            let t = StageTimer::start(self.profiling);
            self.filter.lookup_codes_into(codes, &mut self.indicators);
            t.stop(&mut stats.profile, Stage::FilterLookup);
        }

        // (start, end) of the last non-contained RMEM.
        let mut last: Option<(usize, usize)> = None;
        // Cached CRkM indicator for the current `last` value.
        let mut crkm: Option<(usize, SearchIndicator)> = None;

        // Pivot gating reads `last`, which a batched pivot's RMEM may
        // still change — so batching across pivots is only legal when
        // gating is off (see PIVOT_BLOCK).
        let block_cap = if self.config.use_pivot_analysis {
            1
        } else {
            PIVOT_BLOCK
        };
        self.pivot_block.clear();

        // Loop bookkeeping that is not a filter lookup, CAM search, or
        // containment record is the pivot-analysis stage; it is derived by
        // subtracting the inner spans from the loop wall so the stage
        // spans stay disjoint (sum of stages ≤ wall, never double
        // counted).
        let inner_before = stats.profile.total_nanos();
        let loop_timer = StageTimer::start(self.profiling);

        let pivot_count = read.len() - k + 1;
        stats.pivots_total += pivot_count as u64;
        for pivot in 0..pivot_count {
            let si = if self.config.use_filter_table {
                let si = if batched {
                    self.indicators[pivot]
                } else {
                    let t = StageTimer::start(self.profiling);
                    let si = self.filter.lookup_code(codes[pivot]);
                    t.stop(&mut stats.profile, Stage::FilterLookup);
                    si
                };
                if si.is_empty() {
                    // Dies in the pre-seeding stage; the computing
                    // controller never sees this pivot.
                    stats.pivots_filtered_table += 1;
                    continue;
                }
                si
            } else {
                self.searcher.full_indicator()
            };
            *computing_cycles += PIVOT_CHECK_CYCLES;

            if let Some((_start, end)) = last {
                // Pivots whose RMEM could only be contained in `last`
                // unless it crosses the closest right k-mer. In naive
                // mode `last` may be shorter than k; the analyses then
                // have no CRkM to reason about.
                let crkm_start = (end + 1).saturating_sub(k); // covers read[end]
                if self.config.use_pivot_analysis && end + 1 >= k && pivot <= crkm_start {
                    if end >= read.len() {
                        // `last` reaches the read end: nothing to the
                        // right can escape containment.
                        stats.pivots_filtered_crkm += 1;
                        continue;
                    }
                    let crkm_si = match crkm {
                        Some((s, si)) if s == crkm_start => si,
                        _ => {
                            // Deliberately a fresh lookup even in batched
                            // mode: the seed path issues one here too, so
                            // the FilterStats multisets stay identical.
                            let t = StageTimer::start(self.profiling);
                            let si = self.filter.lookup_code(codes[crkm_start]);
                            t.stop(&mut stats.profile, Stage::FilterLookup);
                            crkm = Some((crkm_start, si));
                            si
                        }
                    };
                    if crkm_si.is_empty() {
                        // Analysis 1: `last` is non-extendable.
                        stats.pivots_filtered_crkm += 1;
                        continue;
                    }
                    // Analysis 2: shifted-AND alignment estimate.
                    if !si.may_align_with(crkm_si, crkm_start - pivot, self.config.filter.stride) {
                        stats.pivots_filtered_align += 1;
                        continue;
                    }
                }
            }

            stats.rmem_searches += 1;
            self.pivot_block.push((pivot, si));
            if self.pivot_block.len() == block_cap {
                self.flush_pivot_block(read, out, &mut last, stats, computing_cycles);
            }
        }
        self.flush_pivot_block(read, out, &mut last, stats, computing_cycles);

        if loop_timer.enabled() {
            let inner = stats.profile.total_nanos() - inner_before;
            let wall = loop_timer.elapsed_nanos();
            stats
                .profile
                .add(Stage::PivotAnalysis, wall.saturating_sub(inner));
        }
    }

    /// Runs the collected pivots' RMEMs as one CAM batch, then records the
    /// results in pivot order: containment against `last`, `last` updates,
    /// and SMEM emission happen here exactly as the per-pivot code did.
    fn flush_pivot_block(
        &mut self,
        read: &PackedSeq,
        smems: &mut Vec<Smem>,
        last: &mut Option<(usize, usize)>,
        stats: &mut SeedingStats,
        computing_cycles: &mut u64,
    ) {
        let n = self.pivot_block.len();
        if n == 0 {
            return;
        }
        if self.block_results.len() < n {
            self.block_results.resize_with(n, RmemResult::default);
        }
        let t = StageTimer::start(self.profiling);
        self.searcher
            .rmem_batch_into(read, &self.pivot_block, &mut self.block_results[..n]);
        t.stop(&mut stats.profile, Stage::CamSearch);
        let t = StageTimer::start(self.profiling);
        for i in 0..n {
            let (pivot, _) = self.pivot_block[i];
            let rmem = &mut self.block_results[i];
            *computing_cycles += rmem.searches;
            if rmem.len == 0 {
                continue;
            }
            let end = pivot + rmem.len;
            if let Some((start, last_end)) = *last {
                debug_assert!(pivot > start);
                if end <= last_end {
                    stats.rmems_contained += 1;
                    continue;
                }
            }
            *last = Some((pivot, end));
            if rmem.len >= self.config.min_smem_len {
                smems.push(Smem {
                    read_start: pivot,
                    read_end: end,
                    hits: std::mem::take(&mut rmem.positions),
                });
            }
        }
        t.stop(&mut stats.profile, Stage::ContainMerge);
        self.pivot_block.clear();
    }

    /// §4.3: detect a read that matches the partition exactly. Aligns
    /// several non-overlapping m-mers via their indicators, and only if
    /// they are mutually consistent attempts the whole-read CAM match.
    /// Returns `true` (with the single whole-read SMEM pushed into `out`)
    /// when the read is settled here.
    fn try_exact_match_into(
        &mut self,
        read: &PackedSeq,
        codes: &[u64],
        stats: &mut SeedingStats,
        cycles: &mut u64,
        out: &mut Vec<Smem>,
    ) -> bool {
        let (k, m) = (self.config.filter.k, self.config.filter.m);
        if read.len() < self.config.min_smem_len {
            return false;
        }
        // Sample up to four spread, non-overlapping m-mers. Their codes are
        // sliced out of the rolling k-mer codes (MSB-first): the m-mer at
        // `off` sits `off - q` bases into the k-mer at `q`, where `q`
        // clamps `off` so a full k-mer fits.
        let mmask = (1u64 << (2 * m)) - 1;
        let last = read.len() - m;
        let offsets = [0usize, last / 3, 2 * last / 3, last];
        let mut first: Option<SearchIndicator> = None;
        let mut prev = usize::MAX;
        let mut consistent = true;
        let t = StageTimer::start(self.profiling);
        for &off in &offsets {
            if off == prev {
                continue; // offsets are non-decreasing; skip duplicates
            }
            prev = off;
            *cycles += 1;
            let q = off.min(read.len() - k);
            let shift = 2 * (k - (off - q) - m);
            let si = self.filter.lookup_mmer_code((codes[q] >> shift) & mmask);
            if si.is_empty() {
                consistent = false; // read cannot match this partition exactly
                break;
            }
            match first {
                None => first = Some(si),
                Some(f) => {
                    if !f.may_align_with(si, off, self.config.filter.stride) {
                        consistent = false; // m-mers misaligned: abort
                        break;
                    }
                }
            }
        }
        t.stop(&mut stats.profile, Stage::FilterLookup);
        if !consistent {
            return false;
        }
        // Whole-read match attempt from pivot 0 with the first m-mer's
        // indicator (superset of the true occurrence offsets).
        let si = first.expect("offsets is non-empty");
        let t = StageTimer::start(self.profiling);
        self.searcher
            .rmem_into(read, 0, &si, &mut self.rmem_scratch);
        t.stop(&mut stats.profile, Stage::CamSearch);
        *cycles += self.rmem_scratch.searches;
        if self.rmem_scratch.len == read.len() {
            out.push(Smem {
                read_start: 0,
                read_end: read.len(),
                hits: std::mem::take(&mut self.rmem_scratch.positions),
            });
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_genome::synth::{generate_reference, ReferenceProfile};
    use casa_genome::{ReadSimConfig, ReadSimulator};
    use casa_index::smem::smems_unidirectional;
    use casa_index::SuffixArray;

    fn engine_for(part: &PackedSeq) -> PartitionEngine {
        PartitionEngine::new(part, CasaConfig::small(part.len())).expect("valid config")
    }

    /// The headline correctness property: CASA's output equals the golden
    /// uni-directional SMEM set (paper: "CASA produces identical SMEMs to
    /// GenAx").
    #[test]
    fn casa_equals_golden_on_simulated_reads() {
        let part = generate_reference(&ReferenceProfile::human_like(), 6_000, 99);
        let sa = SuffixArray::build(&part);
        let mut engine = engine_for(&part);
        let sim = ReadSimulator::new(
            ReadSimConfig {
                read_len: 48,
                ..ReadSimConfig::default()
            },
            5,
        );
        let mut stats = SeedingStats::default();
        for read in sim.simulate(&part, 60) {
            let golden = smems_unidirectional(&sa, &read.seq, engine.config().min_smem_len);
            let casa = engine.seed_read(&read.seq, &mut stats);
            assert_eq!(casa, golden, "read {}", read.name);
        }
        assert!(stats.smems_reported > 0);
    }

    #[test]
    fn ablations_do_not_change_results() {
        let part = generate_reference(&ReferenceProfile::human_like(), 3_000, 7);
        let sa = SuffixArray::build(&part);
        let sim = ReadSimulator::new(
            ReadSimConfig {
                read_len: 40,
                ..ReadSimConfig::default()
            },
            6,
        );
        let reads = sim.simulate(&part, 25);
        let variants = [
            (true, true, true),
            (false, true, true),
            (true, false, true),
            (true, true, false),
            (false, false, false),
        ];
        let mut outputs: Vec<Vec<Vec<Smem>>> = Vec::new();
        for (exact, table, analysis) in variants {
            let mut cfg = CasaConfig::small(part.len());
            cfg.exact_match_preprocessing = exact;
            cfg.use_filter_table = table;
            cfg.use_pivot_analysis = analysis;
            let mut engine = PartitionEngine::new(&part, cfg).expect("valid config");
            let mut stats = SeedingStats::default();
            let out: Vec<Vec<Smem>> = reads
                .iter()
                .map(|r| engine.seed_read(&r.seq, &mut stats))
                .collect();
            outputs.push(out);
        }
        for (i, out) in outputs.iter().enumerate().skip(1) {
            assert_eq!(out, &outputs[0], "variant {i} diverged");
        }
        // And all equal golden.
        for (r, read) in reads.iter().enumerate() {
            let golden = smems_unidirectional(&sa, &read.seq, 6);
            assert_eq!(outputs[0][r], golden, "read {r}");
        }
    }

    #[test]
    fn filtering_reduces_rmem_searches() {
        let part = generate_reference(&ReferenceProfile::human_like(), 4_000, 11);
        let sim = ReadSimulator::new(
            ReadSimConfig {
                read_len: 48,
                ..ReadSimConfig::default()
            },
            9,
        );
        let reads = sim.simulate(&part, 30);
        let run = |table: bool, analysis: bool| {
            let mut cfg = CasaConfig::small(part.len());
            cfg.use_filter_table = table;
            cfg.use_pivot_analysis = analysis;
            cfg.exact_match_preprocessing = false;
            let mut engine = PartitionEngine::new(&part, cfg).expect("valid config");
            let mut stats = SeedingStats::default();
            for r in &reads {
                engine.seed_read(&r.seq, &mut stats);
            }
            stats.rmem_searches
        };
        let naive = run(false, false);
        let table = run(true, false);
        let both = run(true, true);
        assert!(table < naive, "table {table} !< naive {naive}");
        assert!(both <= table, "analysis {both} !<= table {table}");
    }

    #[test]
    fn exact_read_takes_fast_path() {
        let part = generate_reference(&ReferenceProfile::human_like(), 2_000, 3);
        let mut engine = engine_for(&part);
        let read = part.subseq(100, 60);
        let mut stats = SeedingStats::default();
        let smems = engine.seed_read(&read, &mut stats);
        assert_eq!(stats.exact_match_reads, 1);
        assert_eq!(smems.len(), 1);
        assert_eq!(smems[0].len(), 60);
        assert!(smems[0].hits.contains(&100));
    }

    #[test]
    fn short_read_yields_nothing() {
        let part = generate_reference(&ReferenceProfile::uniform(), 500, 1);
        let mut engine = engine_for(&part);
        let mut stats = SeedingStats::default();
        let read = part.subseq(0, 4); // shorter than k = 6
        assert!(engine.seed_read(&read, &mut stats).is_empty());
    }

    #[test]
    fn stats_accumulate_per_read() {
        let part = generate_reference(&ReferenceProfile::human_like(), 2_000, 13);
        let mut engine = engine_for(&part);
        let mut stats = SeedingStats::default();
        let read = part.subseq(50, 40);
        engine.seed_read(&read, &mut stats);
        assert_eq!(stats.read_passes, 1);
        assert!(stats.dram_bytes > 0);
        assert!(stats.filter_ops > 0);
        assert!(stats.computing_cycles > 0);
    }
}
