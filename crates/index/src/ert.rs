//! Enumerated radix trees (ERT index, paper §2.2 and Fig. 3a).
//!
//! The ERT index maps each k-mer present in the reference to the root of a
//! radix tree enumerating the continuations of that k-mer. Forward SMEM
//! extension walks the tree one base at a time; each visited node is a DRAM
//! fetch in the ASIC-ERT cost model (the index lives in a dedicated DRAM —
//! 62.1 GB for GRCh38 — which is exactly the bandwidth/power liability the
//! CASA paper targets).
//!
//! We store roots sparsely (only k-mers that occur), so the model scales to
//! the paper's k = 15 without a 4^15-entry dense table; the *modelled*
//! footprint reported by [`ErtIndex::footprint_bytes`] still charges the
//! dense index table, as the real ERT does.

use std::collections::HashMap;

use casa_genome::PackedSeq;

/// DRAM fetch granularity in bytes (one DDR4 burst).
pub const DRAM_FETCH_BYTES: usize = 64;

/// How many positions a node may hold before it must branch.
const LEAF_FANOUT: usize = 4;

#[derive(Clone, Debug)]
enum Node {
    /// Internal node: child per next base, plus positions whose suffix ends
    /// exactly here (reference ran out).
    Branch {
        children: [Option<u32>; 4],
        ended: Vec<u32>,
        /// Number of reference positions below this node (including
        /// `ended`), i.e. the hit count of the path so far.
        count: u32,
    },
    /// Leaf holding few positions; further matching compares directly
    /// against the reference (the real ERT stores a reference pointer).
    Leaf { positions: Vec<u32> },
}

/// Result of one forward walk through an ERT tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErtWalk {
    /// Total matched length including the k-mer itself.
    pub matched_len: usize,
    /// Reference start positions of the longest match, ascending.
    pub positions: Vec<u32>,
    /// Read offsets (relative to the walk start) where the hit count
    /// changed — the left extension points (LEPs) of the paper's Fig. 1a.
    pub lep_offsets: Vec<usize>,
    /// Number of DRAM fetches performed (index root + nodes + reference
    /// chunks at leaves).
    pub dram_fetches: u64,
}

/// An enumerated-radix-tree index over a reference.
///
/// ```
/// use casa_genome::PackedSeq;
/// use casa_index::ErtIndex;
///
/// let reference = PackedSeq::from_ascii(b"ACGTACGAACGT")?;
/// let ert = ErtIndex::build(&reference, 3);
/// let read = PackedSeq::from_ascii(b"ACGTAC")?;
/// let walk = ert.walk(&read, 0).expect("ACG occurs");
/// assert_eq!(walk.matched_len, 6);
/// assert_eq!(walk.positions, vec![0]);
/// # Ok::<(), casa_genome::ParseBaseError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ErtIndex {
    k: usize,
    roots: HashMap<u64, u32>,
    nodes: Vec<Node>,
    reference: PackedSeq,
}

impl ErtIndex {
    /// Builds the index for all k-mers of `reference`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=32`.
    pub fn build(reference: &PackedSeq, k: usize) -> ErtIndex {
        assert!((1..=32).contains(&k), "k must be in 1..=32, got {k}");
        let mut groups: HashMap<u64, Vec<u32>> = HashMap::new();
        for (pos, code) in reference.kmers(k) {
            groups.entry(code).or_default().push(pos as u32);
        }
        let mut index = ErtIndex {
            k,
            roots: HashMap::with_capacity(groups.len()),
            nodes: Vec::new(),
            reference: reference.clone(),
        };
        let mut codes: Vec<u64> = groups.keys().copied().collect();
        codes.sort_unstable();
        for code in codes {
            let positions = groups.remove(&code).expect("key exists");
            let root = index.build_node(positions, k);
            index.roots.insert(code, root);
        }
        index
    }

    fn build_node(&mut self, positions: Vec<u32>, depth: usize) -> u32 {
        if positions.len() <= LEAF_FANOUT {
            let id = self.nodes.len() as u32;
            self.nodes.push(Node::Leaf { positions });
            return id;
        }
        let count = positions.len() as u32;
        let mut by_base: [Vec<u32>; 4] = Default::default();
        let mut ended = Vec::new();
        for p in positions {
            match self.reference.get(p as usize + depth) {
                Some(b) => by_base[b.code() as usize].push(p),
                None => ended.push(p),
            }
        }
        // Reserve our slot first so children get higher ids.
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Leaf {
            positions: Vec::new(),
        }); // placeholder
        let mut children = [None; 4];
        for (c, group) in by_base.into_iter().enumerate() {
            if !group.is_empty() {
                children[c] = Some(self.build_node(group, depth + 1));
            }
        }
        self.nodes[id as usize] = Node::Branch {
            children,
            ended,
            count,
        };
        id
    }

    /// The k-mer size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of tree nodes across all k-mers.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the k-mer starting at `read[from..from+k]` exists in the
    /// index (one index-table fetch).
    pub fn contains_kmer(&self, read: &PackedSeq, from: usize) -> bool {
        read.kmer_code(from, self.k)
            .is_some_and(|code| self.roots.contains_key(&code))
    }

    /// Forward walk: the longest exact right-extension of the k-mer at
    /// `read[from..]`, with hit positions, LEPs, and DRAM fetch count.
    ///
    /// Returns `None` when the k-mer is absent (this still costs one index
    /// fetch, which the caller accounts).
    pub fn walk(&self, read: &PackedSeq, from: usize) -> Option<ErtWalk> {
        let code = read.kmer_code(from, self.k)?;
        let root = *self.roots.get(&code)?;
        let mut fetches: u64 = 1; // index-table root fetch
        let mut leps = Vec::new();
        let mut node_id = root;
        let mut depth = self.k; // matched bases so far
        let mut last_count = u32::MAX;
        loop {
            fetches += 1; // node fetch
            match &self.nodes[node_id as usize] {
                Node::Branch {
                    children,
                    ended,
                    count,
                } => {
                    if *count != last_count {
                        if last_count != u32::MAX {
                            leps.push(depth);
                        }
                        last_count = *count;
                    }
                    let next = read
                        .get(from + depth)
                        .and_then(|b| children[b.code() as usize]);
                    match next {
                        Some(child) => {
                            node_id = child;
                            depth += 1;
                        }
                        None => {
                            // No continuation in the tree: the match ends
                            // here; hits are every position below this node.
                            let mut positions = ended.clone();
                            self.collect_positions(node_id, &mut positions);
                            positions.sort_unstable();
                            positions.dedup();
                            return Some(ErtWalk {
                                matched_len: depth,
                                positions,
                                lep_offsets: leps,
                                dram_fetches: fetches,
                            });
                        }
                    }
                }
                Node::Leaf { positions } => {
                    // Compare directly against the reference from here on.
                    let mut best = 0usize;
                    let mut best_positions = Vec::new();
                    for &p in positions {
                        let already = depth; // includes path matched so far
                        let more = self.reference.common_prefix_len(
                            p as usize + already,
                            read,
                            from + already,
                        );
                        // Reference fetches for the comparison, one burst
                        // per 256 bases (64 B of 2-bit codes).
                        fetches += 1 + (more / (DRAM_FETCH_BYTES * 4)) as u64;
                        let total = already + more;
                        if total > best {
                            if best != 0 {
                                leps.push(best);
                            }
                            best = total;
                            best_positions.clear();
                        }
                        if total == best {
                            best_positions.push(p);
                        }
                    }
                    best_positions.sort_unstable();
                    return Some(ErtWalk {
                        matched_len: best,
                        positions: best_positions,
                        lep_offsets: leps,
                        dram_fetches: fetches,
                    });
                }
            }
        }
    }

    fn collect_positions(&self, node_id: u32, out: &mut Vec<u32>) {
        match &self.nodes[node_id as usize] {
            Node::Leaf { positions } => out.extend_from_slice(positions),
            Node::Branch {
                children, ended, ..
            } => {
                out.extend_from_slice(ended);
                for child in children.iter().flatten() {
                    self.collect_positions(*child, out);
                }
            }
        }
    }

    /// Modelled DRAM footprint in bytes: a dense 4^k-entry index table of
    /// 8 B pointers plus 16 B per tree node (pointer-compressed children or
    /// leaf positions). For k = 15 on a 3.1 Gbp genome this lands in the
    /// tens of gigabytes, matching the paper's 62.1 GB figure in spirit.
    pub fn footprint_bytes(&self) -> u128 {
        (1u128 << (2 * self.k as u32)) * 8 + self.nodes.len() as u128 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuffixArray;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn walk_matches_suffix_array_longest_match() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let reference: PackedSeq = (0..600)
            .map(|_| casa_genome::Base::from_code(rng.gen_range(0..4)))
            .collect();
        let k = 4;
        let ert = ErtIndex::build(&reference, k);
        let sa = SuffixArray::build(&reference);
        for _ in 0..200 {
            // Half reference-derived reads, half random.
            let read: PackedSeq = if rng.gen_bool(0.5) {
                let s = rng.gen_range(0..reference.len() - 40);
                reference.subseq(s, 40)
            } else {
                (0..40)
                    .map(|_| casa_genome::Base::from_code(rng.gen_range(0..4)))
                    .collect()
            };
            let from = rng.gen_range(0..read.len() - k);
            let (sa_len, sa_iv) = sa.longest_match(&read, from);
            match ert.walk(&read, from) {
                None => assert!(sa_len < k, "ERT missed a k-mer that exists"),
                Some(walk) => {
                    assert_eq!(walk.matched_len, sa_len);
                    let mut sa_hits: Vec<u32> = sa.positions(sa_iv).map(|p| p as u32).collect();
                    sa_hits.sort_unstable();
                    assert_eq!(walk.positions, sa_hits);
                    assert!(walk.dram_fetches >= 2);
                }
            }
        }
    }

    #[test]
    fn absent_kmer_returns_none() {
        let ert = ErtIndex::build(&seq("AAAACCCC"), 3);
        assert!(ert.walk(&seq("GGGG"), 0).is_none());
        assert!(!ert.contains_kmer(&seq("GGGG"), 0));
        assert!(ert.contains_kmer(&seq("AAAA"), 0));
    }

    #[test]
    fn repetitive_reference_has_multi_hits() {
        let reference = seq(&"GATTACA".repeat(10));
        let ert = ErtIndex::build(&reference, 3);
        let walk = ert.walk(&seq("GATTACAGATTACA"), 0).unwrap();
        assert_eq!(walk.matched_len, 14);
        // matches at starts 0, 7, ..., 56 (need 14 bases => up to 56)
        assert_eq!(walk.positions.len(), 9);
    }

    #[test]
    fn lep_offsets_are_recorded_where_counts_drop() {
        // Reference: "ACGT" x4 then "ACGG". Walking "ACGTACGG...":
        // count drops as the extension disambiguates.
        let reference = seq("ACGTACGTACGTACGTACGG");
        let ert = ErtIndex::build(&reference, 2);
        let walk = ert.walk(&seq("ACGTACGG"), 0).unwrap();
        assert_eq!(walk.matched_len, 8);
        assert!(!walk.lep_offsets.is_empty());
        assert!(walk.lep_offsets.iter().all(|&o| (2..8).contains(&o)));
    }

    #[test]
    fn footprint_has_exponential_index_term() {
        let r = seq(&"ACGT".repeat(50));
        let f4 = ErtIndex::build(&r, 4).footprint_bytes();
        let f8 = ErtIndex::build(&r, 8).footprint_bytes();
        // The dense 4^k index-table term dominates: +4 in k is a 256x
        // larger table, though tree nodes soften the total ratio.
        assert!(f8 > f4 * 20, "f4={f4} f8={f8}");
        assert!(f8 >= (1u128 << 16) * 8);
    }

    #[test]
    fn walk_to_reference_end() {
        let reference = seq("ACGTACGT");
        let ert = ErtIndex::build(&reference, 2);
        // Read extends past the reference end.
        let walk = ert.walk(&seq("ACGTACGTAA"), 0).unwrap();
        assert_eq!(walk.matched_len, 8);
        assert_eq!(walk.positions, vec![0]);
    }
}
