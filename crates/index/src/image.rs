//! Zero-copy on-disk **index images**: one relocatable, versioned,
//! checksummed, page-aligned artifact holding every reference-side array
//! the seeding stack needs (packed reference text, per-partition CAM
//! entry bitplanes, pre-seeding filter tables, suffix arrays).
//!
//! This extends [`crate::serial`] (which persists a single suffix array
//! with eager deserialization) to the full multi-section, mmap-first
//! design: a loaded [`IndexImage`] keeps the file mapped read-only and
//! hands out [`SharedSlice`] views directly into the mapping, so cold
//! start is O(page-fault) instead of O(rebuild) and concurrent processes
//! share the arrays through the page cache.
//!
//! # Layout (version 1)
//!
//! All integers little-endian. Payload sections are aligned to
//! `page_size` (4096) so mapped views are always 8-byte aligned and
//! whole pages are shareable.
//!
//! ```text
//! offset 0        magic           b"CASAIMG1"
//!        8        version         u32  (=1)
//!        12       page_size       u32  (=4096)
//!        16       fingerprint     u64  (FNV-1a of config blob + reference bytes)
//!        24       total_len       u64  (file length in bytes)
//!        32       meta_off        u64  (=64)
//!        40       meta_len        u64
//!        48       section_count   u64
//!        56       header_checksum u64  (FNV-1a of bytes 0..56)
//! meta_off        config_len      u64, then config blob (opaque bytes)
//!        …        section table   section_count × 48-byte entries:
//!                   kind u32, partition u32, byte_off u64, byte_len u64,
//!                   elem_count u64, reserved u64, section_checksum u64
//!        …        meta_checksum   u64  (FNV-1a of the meta block before it)
//! page-aligned    payload sections, each zero-padded to the next page
//! ```
//!
//! Section checksums are computed **word-wise** — FNV-1a over the
//! section's little-endian `u64` words (payload zero-padded to an 8-byte
//! multiple) — so load-time verification runs at memory bandwidth over
//! the mapped words rather than byte-at-a-time.
//!
//! Every parse is bounds-checked and every mismatch is a typed
//! [`ImageError`]; corrupt input can never panic or read out of bounds
//! (property-tested in `tests/index_image.rs`).

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use casa_genome::shared::{SharedSlice, SliceView};
use memmap2::{cast, Mmap};

/// Image format magic.
pub const MAGIC: &[u8; 8] = b"CASAIMG1";
/// Current image format version.
pub const VERSION: u32 = 1;
/// Payload alignment: one small page.
pub const PAGE_SIZE: u32 = 4096;

const HEADER_LEN: usize = 64;
const ENTRY_LEN: usize = 48;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over bytes (matches [`crate::serial`]'s checksum primitive).
fn fnv1a_bytes(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Word-wise FNV-1a: one absorb per little-endian `u64`, trailing bytes
/// zero-padded. ~8× fewer multiplies than the byte-wise variant, which
/// is what keeps load-time verification far cheaper than a rebuild.
fn fnv1a_words_of_bytes(bytes: &[u8]) -> u64 {
    let mut state = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        state ^= u64::from_le_bytes(c.try_into().expect("chunk of 8"));
        state = state.wrapping_mul(FNV_PRIME);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut last = [0u8; 8];
        last[..rest.len()].copy_from_slice(rest);
        state ^= u64::from_le_bytes(last);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Same checksum computed straight over mapped words (zero-copy path).
fn fnv1a_words(words: &[u64]) -> u64 {
    let mut state = FNV_OFFSET;
    for &w in words {
        state ^= w;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// How much of an image to verify at open time.
///
/// Header and metadata checksums, section bounds, and alignment are
/// verified in every mode — a [`VerifyMode::Meta`] open can still never
/// read out of bounds or misalign a view. What `Meta` skips is the
/// payload word checksums, which cost a full sequential read of the
/// file (paging in every section) and defeat the O(ms) mmap cold start;
/// [`IndexImage::verify_payloads`] runs them on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// Verify everything, including every section's payload checksum.
    Full,
    /// Verify header + metadata + structure only; trust payload bytes.
    Meta,
}

/// What a payload section holds. Stored as a `u32` on disk; unknown
/// codes load fine (forward compatibility) but have no typed accessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum SectionKind {
    /// The 2-bit packed reference text (whole reference, partition 0).
    RefText = 0,
    /// One partition's CAM entry bitplanes (`u64` words).
    CamPlanes = 1,
    /// One partition's filter mini-index prefix sums (`u32`).
    FilterMini = 2,
    /// One partition's filter tag array (`u32` restmer codes).
    FilterTag = 3,
    /// One partition's filter indicators, two `u64` words per record:
    /// `words[2i]` = start mask, `words[2i+1]` low 32 bits = group mask.
    FilterData = 4,
    /// One partition's suffix array ranks (`u32`).
    Sa = 5,
}

impl SectionKind {
    /// Decodes a stored kind code.
    pub fn from_code(code: u32) -> Option<SectionKind> {
        match code {
            0 => Some(SectionKind::RefText),
            1 => Some(SectionKind::CamPlanes),
            2 => Some(SectionKind::FilterMini),
            3 => Some(SectionKind::FilterTag),
            4 => Some(SectionKind::FilterData),
            5 => Some(SectionKind::Sa),
            _ => None,
        }
    }

    /// Human-readable name for `index inspect`.
    pub fn name(code: u32) -> &'static str {
        match SectionKind::from_code(code) {
            Some(SectionKind::RefText) => "ref-text",
            Some(SectionKind::CamPlanes) => "cam-planes",
            Some(SectionKind::FilterMini) => "filter-mini",
            Some(SectionKind::FilterTag) => "filter-tag",
            Some(SectionKind::FilterData) => "filter-data",
            Some(SectionKind::Sa) => "suffix-array",
            None => "unknown",
        }
    }
}

/// Typed failure modes for writing, opening and verifying an image.
#[derive(Debug)]
pub enum ImageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file declares a format version this build cannot read.
    BadVersion(u32),
    /// The file is shorter than a declared structure.
    Truncated(&'static str),
    /// A stored checksum did not match the named region.
    BadChecksum(&'static str),
    /// A structural invariant failed (named).
    Corrupt(&'static str),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Io(e) => write!(f, "index image I/O error: {e}"),
            ImageError::BadMagic => write!(f, "not a CASA index image (bad magic)"),
            ImageError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported index image version {v} (supported: {VERSION})"
                )
            }
            ImageError::Truncated(what) => write!(f, "index image truncated: {what}"),
            ImageError::BadChecksum(what) => write!(f, "index image checksum mismatch: {what}"),
            ImageError::Corrupt(what) => write!(f, "index image corrupt: {what}"),
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ImageError {
    fn from(e: io::Error) -> Self {
        ImageError::Io(e)
    }
}

/// One pending payload section while building an image.
struct PendingSection {
    kind: u32,
    partition: u32,
    bytes: Vec<u8>,
    elem_count: u64,
}

/// Builds an index image in memory-light streaming fashion and writes it
/// with [`ImageBuilder::write_file`]. Section payloads are supplied as
/// already-little-endian bytes via the typed `add_*` helpers.
pub struct ImageBuilder {
    config: Vec<u8>,
    sections: Vec<PendingSection>,
}

impl ImageBuilder {
    /// Starts an image carrying an opaque config blob (the seeding
    /// config serialized as JSON by the caller; this layer never parses
    /// it, which keeps the format crate-dependency-free).
    pub fn new(config_blob: &[u8]) -> ImageBuilder {
        ImageBuilder {
            config: config_blob.to_vec(),
            sections: Vec::new(),
        }
    }

    /// Adds a section of raw bytes (used for the packed reference text).
    pub fn add_bytes(&mut self, kind: SectionKind, partition: u32, bytes: &[u8], elem_count: u64) {
        self.sections.push(PendingSection {
            kind: kind as u32,
            partition,
            bytes: bytes.to_vec(),
            elem_count,
        });
    }

    /// Adds a section of `u64` words.
    pub fn add_u64s(&mut self, kind: SectionKind, partition: u32, words: &[u64]) {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.sections.push(PendingSection {
            kind: kind as u32,
            partition,
            bytes,
            elem_count: words.len() as u64,
        });
    }

    /// Adds a section of `u32` words.
    pub fn add_u32s(&mut self, kind: SectionKind, partition: u32, words: &[u32]) {
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.sections.push(PendingSection {
            kind: kind as u32,
            partition,
            bytes,
            elem_count: words.len() as u64,
        });
    }

    /// The fingerprint this image will carry: FNV-1a over the config
    /// blob followed by the reference-text section bytes (if present).
    /// Two images agree on the fingerprint iff they were built from the
    /// same reference and config.
    pub fn fingerprint(&self) -> u64 {
        let mut state = fnv1a_bytes(FNV_OFFSET, &self.config);
        if let Some(s) = self
            .sections
            .iter()
            .find(|s| s.kind == SectionKind::RefText as u32)
        {
            state = fnv1a_bytes(state, &s.bytes);
        }
        state
    }

    /// Serializes the image to `w`. Returns the fingerprint.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<u64, ImageError> {
        let page = PAGE_SIZE as u64;
        let meta_off = HEADER_LEN as u64;

        // Metadata block: config, section table, meta checksum.
        let meta_body_len =
            8 + self.config.len() as u64 + self.sections.len() as u64 * ENTRY_LEN as u64;
        let meta_len = meta_body_len + 8;

        // Assign page-aligned payload offsets.
        let mut next = (meta_off + meta_len).div_ceil(page) * page;
        let mut offsets = Vec::with_capacity(self.sections.len());
        for s in &self.sections {
            offsets.push(next);
            next += (s.bytes.len() as u64).div_ceil(page) * page;
        }
        let total_len = next.max(meta_off + meta_len);

        let fingerprint = self.fingerprint();

        // Header.
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&PAGE_SIZE.to_le_bytes());
        header.extend_from_slice(&fingerprint.to_le_bytes());
        header.extend_from_slice(&total_len.to_le_bytes());
        header.extend_from_slice(&meta_off.to_le_bytes());
        header.extend_from_slice(&meta_len.to_le_bytes());
        header.extend_from_slice(&(self.sections.len() as u64).to_le_bytes());
        let header_checksum = fnv1a_bytes(FNV_OFFSET, &header);
        header.extend_from_slice(&header_checksum.to_le_bytes());
        w.write_all(&header)?;

        // Metadata.
        let mut meta = Vec::with_capacity(meta_body_len as usize);
        meta.extend_from_slice(&(self.config.len() as u64).to_le_bytes());
        meta.extend_from_slice(&self.config);
        for (s, &off) in self.sections.iter().zip(&offsets) {
            meta.extend_from_slice(&s.kind.to_le_bytes());
            meta.extend_from_slice(&s.partition.to_le_bytes());
            meta.extend_from_slice(&off.to_le_bytes());
            meta.extend_from_slice(&(s.bytes.len() as u64).to_le_bytes());
            meta.extend_from_slice(&s.elem_count.to_le_bytes());
            meta.extend_from_slice(&0u64.to_le_bytes());
            meta.extend_from_slice(&fnv1a_words_of_bytes(&s.bytes).to_le_bytes());
        }
        let meta_checksum = fnv1a_bytes(FNV_OFFSET, &meta);
        meta.extend_from_slice(&meta_checksum.to_le_bytes());
        w.write_all(&meta)?;

        // Payload sections, zero-padded to page boundaries.
        let mut pos = meta_off + meta_len;
        let zeros = vec![0u8; PAGE_SIZE as usize];
        for (s, &off) in self.sections.iter().zip(&offsets) {
            let mut pad = (off - pos) as usize;
            while pad > 0 {
                let n = pad.min(zeros.len());
                w.write_all(&zeros[..n])?;
                pad -= n;
            }
            w.write_all(&s.bytes)?;
            pos = off + s.bytes.len() as u64;
        }
        let mut tail = (total_len - pos) as usize;
        while tail > 0 {
            let n = tail.min(zeros.len());
            w.write_all(&zeros[..n])?;
            tail -= n;
        }
        Ok(fingerprint)
    }

    /// Writes the image to `path` (atomically: temp file + rename).
    pub fn write_file<P: AsRef<Path>>(&self, path: P) -> Result<u64, ImageError> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp-image");
        let fingerprint = {
            let file = File::create(&tmp)?;
            let mut w = BufWriter::new(file);
            let fp = self.write_to(&mut w)?;
            w.flush()?;
            w.into_inner()
                .map_err(|e| io::Error::from(e.error().kind()))?
                .sync_all()?;
            fp
        };
        std::fs::rename(&tmp, path)?;
        Ok(fingerprint)
    }
}

/// One verified payload section of an open image.
#[derive(Debug, Clone)]
pub struct SectionInfo {
    /// Raw kind code (decode with [`SectionKind::from_code`]).
    pub kind: u32,
    /// Partition index this section belongs to (0 for whole-reference
    /// sections).
    pub partition: u32,
    /// Logical element count (bases, words, records — kind-dependent).
    pub elem_count: u64,
    byte_off: usize,
    byte_len: usize,
    checksum: u64,
}

impl SectionInfo {
    /// Section payload offset in the file.
    pub fn byte_off(&self) -> usize {
        self.byte_off
    }

    /// Section payload length in bytes.
    pub fn byte_len(&self) -> usize {
        self.byte_len
    }

    /// Stored word-wise FNV-1a checksum.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }
}

/// A map-backed typed view: keeps the `Arc<Mmap>` alive and
/// reinterprets a verified byte range on each access.
struct MapWords<T> {
    map: Arc<Mmap>,
    off: usize,
    byte_len: usize,
    _elem: std::marker::PhantomData<fn() -> T>,
}

impl SliceView<u64> for MapWords<u64> {
    fn view(&self) -> &[u64] {
        cast::u64s(&self.map[self.off..self.off + self.byte_len])
            .expect("alignment and length verified when the image was opened")
    }
}

impl SliceView<u32> for MapWords<u32> {
    fn view(&self) -> &[u32] {
        cast::u32s(&self.map[self.off..self.off + self.byte_len])
            .expect("alignment and length verified when the image was opened")
    }
}

/// An open, fully verified index image.
///
/// Opening mmaps the file read-only, validates header, metadata and
/// every section checksum, then hands out zero-copy [`SharedSlice`]
/// views. The mapping stays alive for as long as any view does (each
/// view clones the internal `Arc<Mmap>`), so an `IndexImage` can be
/// dropped once the index structures have been constructed from it.
pub struct IndexImage {
    map: Arc<Mmap>,
    path: PathBuf,
    fingerprint: u64,
    config: Vec<u8>,
    sections: Vec<SectionInfo>,
    /// Whether typed views can borrow the map directly (8-byte-aligned
    /// base). False only on the non-mmap fallback path, where views are
    /// decoded into owned buffers instead.
    aligned: bool,
    /// Whether payload checksums were verified (at open or on demand).
    payloads_verified: bool,
}

impl fmt::Debug for IndexImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IndexImage")
            .field("path", &self.path)
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint))
            .field("len", &self.map.len())
            .field("sections", &self.sections.len())
            .finish()
    }
}

fn read_u32(bytes: &[u8], off: usize, what: &'static str) -> Result<u32, ImageError> {
    let raw = bytes.get(off..off + 4).ok_or(ImageError::Truncated(what))?;
    Ok(u32::from_le_bytes(raw.try_into().expect("4 bytes")))
}

fn read_u64(bytes: &[u8], off: usize, what: &'static str) -> Result<u64, ImageError> {
    let raw = bytes.get(off..off + 8).ok_or(ImageError::Truncated(what))?;
    Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
}

impl IndexImage {
    /// Opens and fully verifies the image at `path` (every payload
    /// checksum; equivalent to [`VerifyMode::Full`]).
    pub fn open<P: AsRef<Path>>(path: P) -> Result<IndexImage, ImageError> {
        IndexImage::open_with(path, VerifyMode::Full)
    }

    /// Opens the image at `path`, verifying as much as `verify` asks.
    pub fn open_with<P: AsRef<Path>>(
        path: P,
        verify: VerifyMode,
    ) -> Result<IndexImage, ImageError> {
        let path = path.as_ref();
        let file = File::open(path)?;
        let map = Mmap::map(&file)?;
        IndexImage::from_map(Arc::new(map), path.to_path_buf(), verify)
    }

    fn from_map(
        map: Arc<Mmap>,
        path: PathBuf,
        verify: VerifyMode,
    ) -> Result<IndexImage, ImageError> {
        let bytes: &[u8] = &map;

        // Header.
        if bytes.len() < HEADER_LEN {
            return Err(ImageError::Truncated("header"));
        }
        if &bytes[..8] != MAGIC {
            return Err(ImageError::BadMagic);
        }
        let version = read_u32(bytes, 8, "header")?;
        if version != VERSION {
            return Err(ImageError::BadVersion(version));
        }
        let page_size = read_u32(bytes, 12, "header")?;
        if page_size == 0 || !page_size.is_power_of_two() {
            return Err(ImageError::Corrupt("page size is not a power of two"));
        }
        let fingerprint = read_u64(bytes, 16, "header")?;
        let total_len = read_u64(bytes, 24, "header")?;
        let meta_off = read_u64(bytes, 32, "header")?;
        let meta_len = read_u64(bytes, 40, "header")?;
        let section_count = read_u64(bytes, 48, "header")?;
        let header_checksum = read_u64(bytes, 56, "header")?;
        if fnv1a_bytes(FNV_OFFSET, &bytes[..56]) != header_checksum {
            return Err(ImageError::BadChecksum("header"));
        }
        if total_len != bytes.len() as u64 {
            return Err(ImageError::Truncated("file shorter than declared length"));
        }

        // Metadata block.
        let meta_end = meta_off
            .checked_add(meta_len)
            .ok_or(ImageError::Corrupt("metadata range overflows"))?;
        if meta_len < 16 || meta_end > total_len {
            return Err(ImageError::Truncated("metadata block"));
        }
        let meta = &bytes[meta_off as usize..meta_end as usize];
        let (meta_body, stored) = meta.split_at(meta.len() - 8);
        let meta_checksum = u64::from_le_bytes(stored.try_into().expect("8 bytes"));
        if fnv1a_bytes(FNV_OFFSET, meta_body) != meta_checksum {
            return Err(ImageError::BadChecksum("metadata"));
        }
        let config_len = read_u64(meta_body, 0, "config length")? as usize;
        let table_off = 8usize
            .checked_add(config_len)
            .ok_or(ImageError::Corrupt("config length overflows"))?;
        let config = meta_body
            .get(8..table_off)
            .ok_or(ImageError::Truncated("config blob"))?
            .to_vec();
        let expected_table = (section_count as usize)
            .checked_mul(ENTRY_LEN)
            .ok_or(ImageError::Corrupt("section count overflows"))?;
        if meta_body.len() != table_off + expected_table {
            return Err(ImageError::Corrupt("section table length mismatch"));
        }

        // Section table + per-section verification.
        let mut sections = Vec::with_capacity(section_count as usize);
        for i in 0..section_count as usize {
            let e = table_off + i * ENTRY_LEN;
            let kind = read_u32(meta_body, e, "section entry")?;
            let partition = read_u32(meta_body, e + 4, "section entry")?;
            let byte_off = read_u64(meta_body, e + 8, "section entry")?;
            let byte_len = read_u64(meta_body, e + 16, "section entry")?;
            let elem_count = read_u64(meta_body, e + 24, "section entry")?;
            let checksum = read_u64(meta_body, e + 40, "section entry")?;
            if byte_off % 8 != 0 {
                return Err(ImageError::Corrupt("section payload not 8-byte aligned"));
            }
            // The checksummed region is the payload padded to a u64
            // multiple; the padding is guaranteed in-file by the
            // page-rounded layout, and must be in range.
            let padded = byte_len
                .checked_add(7)
                .map(|v| v / 8 * 8)
                .ok_or(ImageError::Corrupt("section length overflows"))?;
            let end = byte_off
                .checked_add(padded)
                .ok_or(ImageError::Corrupt("section range overflows"))?;
            if end > total_len {
                return Err(ImageError::Truncated("section payload"));
            }
            if verify == VerifyMode::Full {
                let region = &bytes[byte_off as usize..(byte_off + padded) as usize];
                let computed = match cast::u64s(region) {
                    Some(words) => fnv1a_words(words),
                    None => fnv1a_words_of_bytes(region),
                };
                if computed != checksum {
                    return Err(ImageError::BadChecksum("section payload"));
                }
            }
            sections.push(SectionInfo {
                kind,
                partition,
                elem_count,
                byte_off: byte_off as usize,
                byte_len: byte_len as usize,
                checksum,
            });
        }

        let aligned = (bytes.as_ptr() as usize).is_multiple_of(8);
        Ok(IndexImage {
            map,
            path,
            fingerprint,
            config,
            sections,
            aligned,
            payloads_verified: verify == VerifyMode::Full,
        })
    }

    /// Runs the payload checksums a [`VerifyMode::Meta`] open skipped
    /// (idempotent; a no-op after a [`VerifyMode::Full`] open).
    ///
    /// # Errors
    ///
    /// [`ImageError::BadChecksum`] naming the first mismatching section.
    pub fn verify_payloads(&mut self) -> Result<(), ImageError> {
        if self.payloads_verified {
            return Ok(());
        }
        let bytes: &[u8] = &self.map;
        for s in &self.sections {
            let padded = s.byte_len.div_ceil(8) * 8;
            let region = &bytes[s.byte_off..s.byte_off + padded];
            let computed = match cast::u64s(region) {
                Some(words) => fnv1a_words(words),
                None => fnv1a_words_of_bytes(region),
            };
            if computed != s.checksum {
                return Err(ImageError::BadChecksum("section payload"));
            }
        }
        self.payloads_verified = true;
        Ok(())
    }

    /// Whether payload checksums have been verified.
    pub fn payloads_verified(&self) -> bool {
        self.payloads_verified
    }

    /// Path the image was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Image fingerprint (config + reference content hash).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Total image size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.map.len()
    }

    /// The opaque config blob the image was built with.
    pub fn config_bytes(&self) -> &[u8] {
        &self.config
    }

    /// All verified sections, in file order.
    pub fn sections(&self) -> &[SectionInfo] {
        &self.sections
    }

    /// Number of partitions covered by per-partition sections.
    pub fn partitions(&self) -> usize {
        self.sections
            .iter()
            .filter(|s| s.kind != SectionKind::RefText as u32)
            .map(|s| s.partition as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Finds a section by kind and partition.
    pub fn find(&self, kind: SectionKind, partition: u32) -> Option<&SectionInfo> {
        self.sections
            .iter()
            .find(|s| s.kind == kind as u32 && s.partition == partition)
    }

    /// Raw payload bytes of a section (zero-copy).
    pub fn section_bytes(&self, section: &SectionInfo) -> &[u8] {
        &self.map[section.byte_off..section.byte_off + section.byte_len]
    }

    /// A zero-copy shared `u64` view of a section. Falls back to an
    /// owned decode when the backing memory is not 8-byte aligned
    /// (non-mmap platforms only).
    pub fn u64_view(&self, kind: SectionKind, partition: u32) -> Option<SharedSlice<u64>> {
        let s = self.find(kind, partition)?;
        if s.byte_len % 8 != 0 {
            return None;
        }
        if self.aligned {
            Some(SharedSlice::new(Arc::new(MapWords::<u64> {
                map: Arc::clone(&self.map),
                off: s.byte_off,
                byte_len: s.byte_len,
                _elem: std::marker::PhantomData,
            })))
        } else {
            let words: Vec<u64> = self
                .section_bytes(s)
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            Some(SharedSlice::new(Arc::new(words)))
        }
    }

    /// A zero-copy shared `u32` view of a section (owned-decode fallback
    /// as for [`IndexImage::u64_view`]).
    pub fn u32_view(&self, kind: SectionKind, partition: u32) -> Option<SharedSlice<u32>> {
        let s = self.find(kind, partition)?;
        if s.byte_len % 4 != 0 {
            return None;
        }
        if self.aligned {
            Some(SharedSlice::new(Arc::new(MapWords::<u32> {
                map: Arc::clone(&self.map),
                off: s.byte_off,
                byte_len: s.byte_len,
                _elem: std::marker::PhantomData,
            })))
        } else {
            let words: Vec<u32> = self
                .section_bytes(s)
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect();
            Some(SharedSlice::new(Arc::new(words)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("casa_image_{}_{}", std::process::id(), name))
    }

    fn sample_builder() -> ImageBuilder {
        let mut b = ImageBuilder::new(br#"{"k":19}"#);
        b.add_bytes(SectionKind::RefText, 0, &[0xAC, 0x1B, 0x33], 12);
        b.add_u64s(SectionKind::CamPlanes, 0, &[1, 2, 3, u64::MAX]);
        b.add_u32s(SectionKind::FilterMini, 0, &[0, 1, 1, 4]);
        b.add_u32s(SectionKind::Sa, 0, &[3, 1, 0, 2]);
        b
    }

    #[test]
    fn roundtrip_preserves_sections_and_fingerprint() {
        let path = tmp("roundtrip.img");
        let b = sample_builder();
        let fp = b.write_file(&path).unwrap();
        let img = IndexImage::open(&path).unwrap();
        assert_eq!(img.fingerprint(), fp);
        assert_eq!(img.config_bytes(), br#"{"k":19}"#);
        assert_eq!(img.sections().len(), 4);
        assert_eq!(img.partitions(), 1);
        let planes = img.u64_view(SectionKind::CamPlanes, 0).unwrap();
        assert_eq!(planes.as_slice(), &[1, 2, 3, u64::MAX]);
        let mini = img.u32_view(SectionKind::FilterMini, 0).unwrap();
        assert_eq!(mini.as_slice(), &[0, 1, 1, 4]);
        let text = img.find(SectionKind::RefText, 0).unwrap();
        assert_eq!(img.section_bytes(text), &[0xAC, 0x1B, 0x33]);
        assert_eq!(text.elem_count, 12);
        // Payloads are page-aligned.
        for s in img.sections() {
            assert_eq!(s.byte_off() % PAGE_SIZE as usize, 0);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn views_outlive_the_image_handle() {
        let path = tmp("outlive.img");
        sample_builder().write_file(&path).unwrap();
        let planes = {
            let img = IndexImage::open(&path).unwrap();
            img.u64_view(SectionKind::CamPlanes, 0).unwrap()
        };
        // The image handle is gone; the view keeps the mapping alive.
        assert_eq!(planes.as_slice(), &[1, 2, 3, u64::MAX]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_truncation_are_typed_errors() {
        let path = tmp("badmagic.img");
        sample_builder().write_file(&path).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[0] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(IndexImage::open(&path), Err(ImageError::BadMagic)));

        raw[0] ^= 0xFF; // restore
        std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        assert!(matches!(
            IndexImage::open(&path),
            Err(ImageError::Truncated(_))
        ));
        std::fs::write(&path, &raw[..40]).unwrap();
        assert!(matches!(
            IndexImage::open(&path),
            Err(ImageError::Truncated(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn payload_bit_flip_fails_section_checksum() {
        let path = tmp("flip.img");
        let b = sample_builder();
        b.write_file(&path).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        // Flip a bit inside the first payload page.
        let off = PAGE_SIZE as usize + 2;
        raw[off] ^= 0x10;
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            IndexImage::open(&path),
            Err(ImageError::BadChecksum(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_bit_flip_fails_header_checksum() {
        let path = tmp("hdrflip.img");
        sample_builder().write_file(&path).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[17] ^= 0x01; // inside the fingerprint field
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            IndexImage::open(&path),
            Err(ImageError::BadChecksum("header"))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn meta_open_defers_payload_checksums_but_catches_them_on_demand() {
        let path = tmp("metamode.img");
        sample_builder().write_file(&path).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let off = PAGE_SIZE as usize + 2;
        raw[off] ^= 0x10; // corrupt a payload byte
        std::fs::write(&path, &raw).unwrap();
        // Full open rejects; Meta open succeeds (structure intact) but
        // an on-demand payload verification still catches the flip.
        assert!(matches!(
            IndexImage::open(&path),
            Err(ImageError::BadChecksum(_))
        ));
        let mut img = IndexImage::open_with(&path, VerifyMode::Meta).unwrap();
        assert!(!img.payloads_verified());
        assert!(matches!(
            img.verify_payloads(),
            Err(ImageError::BadChecksum(_))
        ));
        // Header/meta damage is rejected even in Meta mode.
        raw[off] ^= 0x10; // restore payload
        raw[17] ^= 0x01; // corrupt the header fingerprint field
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            IndexImage::open_with(&path, VerifyMode::Meta),
            Err(ImageError::BadChecksum("header"))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let path = tmp("version.img");
        sample_builder().write_file(&path).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[8] = 0xFE; // version field
                       // Re-seal the header checksum so only the version check fires.
        let sum = super::fnv1a_bytes(super::FNV_OFFSET, &raw[..56]);
        raw[56..64].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            IndexImage::open(&path),
            Err(ImageError::BadVersion(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
