//! Bidirectional FM-index.
//!
//! BWA-MEM2's SMEM search extends matches in both directions (paper §2.1,
//! Fig. 1a). A bidirectional index maintains, for the current pattern `P`,
//! the SA interval of `P` in the forward text *and* the SA interval of
//! `reverse(P)` in the reversed text, so it can extend `P` by one base on
//! either side in O(1) rank queries (Lam et al. 2009; the same machinery
//! underlies Li's FMD-index).

use std::ops::Range;

use casa_genome::{Base, PackedSeq};

use crate::{FmIndex, SuffixArray};

/// Synchronized intervals of a pattern in the forward and reversed text.
///
/// Both ranges always have the same length (the occurrence count of the
/// pattern).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BiInterval {
    /// Interval of `P` in the suffix array of the forward text.
    pub fwd: Range<usize>,
    /// Interval of `reverse(P)` in the suffix array of the reversed text.
    pub rev: Range<usize>,
}

impl BiInterval {
    /// Number of occurrences of the pattern.
    pub fn size(&self) -> usize {
        self.fwd.len()
    }

    /// Whether the pattern does not occur.
    pub fn is_empty(&self) -> bool {
        self.fwd.is_empty()
    }
}

/// A bidirectional FM-index over a DNA text.
///
/// ```
/// use casa_genome::{Base, PackedSeq};
/// use casa_index::BiFmIndex;
///
/// let text = PackedSeq::from_ascii(b"GATTACAGATTACA")?;
/// let bi = BiFmIndex::build(&text);
/// // Grow "TT" -> "ATT" -> "ATTA" alternating directions.
/// let mut iv = bi.init(Base::T);
/// iv = bi.extend_right(&iv, Base::T);
/// iv = bi.extend_left(&iv, Base::A);
/// iv = bi.extend_right(&iv, Base::A);
/// assert_eq!(iv.size(), 2); // ATTA occurs twice
/// # Ok::<(), casa_genome::ParseBaseError>(())
/// ```
#[derive(Debug)]
pub struct BiFmIndex {
    fwd: FmIndex,
    rev: FmIndex,
    text: PackedSeq,
}

impl BiFmIndex {
    /// Builds the bidirectional index (two suffix arrays + two FM-indexes).
    pub fn build(text: &PackedSeq) -> BiFmIndex {
        let reversed: PackedSeq = (0..text.len()).rev().map(|i| text.base(i)).collect();
        BiFmIndex {
            fwd: FmIndex::from_suffix_array(&SuffixArray::build(text)),
            rev: FmIndex::from_suffix_array(&SuffixArray::build(&reversed)),
            text: text.clone(),
        }
    }

    /// The indexed text.
    pub fn text(&self) -> &PackedSeq {
        &self.text
    }

    /// The forward FM-index (op counters live there).
    pub fn forward(&self) -> &FmIndex {
        &self.fwd
    }

    /// The reverse FM-index.
    pub fn reverse(&self) -> &FmIndex {
        &self.rev
    }

    /// Bi-interval of the single-base pattern `c`.
    pub fn init(&self, c: Base) -> BiInterval {
        let lo = self.fwd.c_of(c);
        let hi = if c.code() == 3 {
            self.fwd.text_len() + 1
        } else {
            self.fwd.c_of(Base::from_code(c.code() + 1))
        };
        BiInterval {
            fwd: lo..hi,
            rev: lo..hi,
        }
    }

    /// Bi-interval of the empty pattern (all rows).
    pub fn full(&self) -> BiInterval {
        BiInterval {
            fwd: self.fwd.full_interval(),
            rev: self.rev.full_interval(),
        }
    }

    /// Extends the pattern `P` to `c · P`.
    pub fn extend_left(&self, iv: &BiInterval, c: Base) -> BiInterval {
        let new_fwd = self.fwd.extend_left(&iv.fwd, c);
        // Occurrences of P preceded by the sentinel (P at text start) or by
        // a character smaller than c shift the reverse interval's start.
        let mut smaller = self.fwd.occ_sentinel(iv.fwd.end) - self.fwd.occ_sentinel(iv.fwd.start);
        for code in 0..c.code() {
            let cc = Base::from_code(code);
            smaller += self.fwd.occ(cc, iv.fwd.end) - self.fwd.occ(cc, iv.fwd.start);
        }
        let rev_lo = iv.rev.start + smaller;
        BiInterval {
            rev: rev_lo..rev_lo + new_fwd.len(),
            fwd: new_fwd,
        }
    }

    /// Extends the pattern `P` to `P · c`.
    pub fn extend_right(&self, iv: &BiInterval, c: Base) -> BiInterval {
        let new_rev = self.rev.extend_left(&iv.rev, c);
        let mut smaller = self.rev.occ_sentinel(iv.rev.end) - self.rev.occ_sentinel(iv.rev.start);
        for code in 0..c.code() {
            let cc = Base::from_code(code);
            smaller += self.rev.occ(cc, iv.rev.end) - self.rev.occ(cc, iv.rev.start);
        }
        let fwd_lo = iv.fwd.start + smaller;
        BiInterval {
            fwd: fwd_lo..fwd_lo + new_rev.len(),
            rev: new_rev,
        }
    }

    /// Text positions of the pattern occurrences described by `iv`.
    pub fn locate(&self, iv: &BiInterval) -> Vec<usize> {
        self.fwd.locate(iv.fwd.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes()).unwrap()
    }

    /// Builds the bi-interval of `pat` by left extensions only.
    fn by_left(bi: &BiFmIndex, pat: &PackedSeq) -> BiInterval {
        let mut iv = bi.full();
        for i in (0..pat.len()).rev() {
            iv = bi.extend_left(&iv, pat.base(i));
        }
        iv
    }

    /// Builds the bi-interval of `pat` by right extensions only.
    fn by_right(bi: &BiFmIndex, pat: &PackedSeq) -> BiInterval {
        let mut iv = bi.full();
        for i in 0..pat.len() {
            iv = bi.extend_right(&iv, pat.base(i));
        }
        iv
    }

    #[test]
    fn left_and_right_extension_agree() {
        let text = seq("GATTACAGATTACACCGGAATTC");
        let bi = BiFmIndex::build(&text);
        let sa = SuffixArray::build(&text);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..300 {
            let len = rng.gen_range(1..=8);
            let pat: PackedSeq = (0..len)
                .map(|_| Base::from_code(rng.gen_range(0..4)))
                .collect();
            let l = by_left(&bi, &pat);
            let r = by_right(&bi, &pat);
            assert_eq!(l.size(), r.size(), "pattern {pat}");
            assert_eq!(l.fwd, r.fwd, "pattern {pat}");
            assert_eq!(l.rev, r.rev, "pattern {pat}");
            // FM rows are offset by one against SA ranks (row 0 is the
            // sentinel suffix).
            let expect = sa.interval_of(&pat, 0, pat.len());
            assert_eq!(l.fwd, expect.start + 1..expect.end + 1, "pattern {pat}");
        }
    }

    #[test]
    fn mixed_direction_growth_counts_occurrences() {
        let text = seq("ACGTACGTACGTTTTACG");
        let bi = BiFmIndex::build(&text);
        // Build "ACGT" as A -> AC -> TAC? No: grow outward from C.
        let mut iv = bi.init(Base::C);
        iv = bi.extend_right(&iv, Base::G); // CG
        iv = bi.extend_left(&iv, Base::A); // ACG
        assert_eq!(iv.size(), 4);
        iv = bi.extend_right(&iv, Base::T); // ACGT
        assert_eq!(iv.size(), 3);
        let mut hits = bi.locate(&iv);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 4, 8]);
    }

    #[test]
    fn pattern_at_text_start_handles_sentinel() {
        // P occurring at position 0 exercises the occ_sentinel path in
        // extend_left.
        let text = seq("ACGGACG");
        let bi = BiFmIndex::build(&text);
        let iv = by_right(&bi, &seq("ACG"));
        assert_eq!(iv.size(), 2);
        // Extending left with every base keeps totals consistent: GACG once,
        // others zero.
        let g = bi.extend_left(&iv, Base::G);
        assert_eq!(g.size(), 1);
        for c in [Base::A, Base::C, Base::T] {
            assert_eq!(bi.extend_left(&iv, c).size(), 0);
        }
    }

    #[test]
    fn init_matches_single_base_interval() {
        let text = seq("AACCGGTT");
        let bi = BiFmIndex::build(&text);
        for c in Base::ALL {
            let iv = bi.init(c);
            assert_eq!(iv.size(), 2, "{c}");
            let pat: PackedSeq = [c].into_iter().collect();
            assert_eq!(iv.fwd, by_left(&bi, &pat).fwd);
        }
    }

    #[test]
    fn empty_interval_stays_empty() {
        let text = seq("AAAA");
        let bi = BiFmIndex::build(&text);
        let iv = bi.init(Base::G);
        assert!(iv.is_empty());
        assert!(bi.extend_left(&iv, Base::A).is_empty());
        assert!(bi.extend_right(&iv, Base::A).is_empty());
    }
}
