//! Linear-time suffix-array construction (SA-IS).
//!
//! Implements the induced-sorting algorithm of Nong, Zhang & Chan (2009).
//! The public entry point [`suffix_array_u32`] works on any integer text; the
//! [`crate::SuffixArray`] wrapper feeds it 2-bit DNA codes. A virtual
//! sentinel smaller than every character is assumed at the end of the text
//! (it is *not* part of the input slice and never appears in the output).

/// Computes the suffix array of `text` over the alphabet `0..alphabet`.
///
/// Returns `sa` with `sa.len() == text.len()`, where `sa[i]` is the start
/// of the `i`-th smallest suffix. Suffix comparison treats the text as
/// implicitly terminated by a unique sentinel smaller than all characters.
///
/// # Panics
///
/// Panics if any character is `>= alphabet` or the text length exceeds
/// `u32::MAX - 1`.
pub fn suffix_array_u32(text: &[u32], alphabet: usize) -> Vec<u32> {
    assert!(
        text.len() < u32::MAX as usize,
        "text too long for u32 suffix array"
    );
    debug_assert!(text.iter().all(|&c| (c as usize) < alphabet));
    let mut sa = vec![u32::MAX; text.len()];
    sais(text, &mut sa, alphabet);
    sa
}

/// Recursive SA-IS worker. `sa` must have the same length as `text`.
fn sais(text: &[u32], sa: &mut [u32], alphabet: usize) {
    let n = text.len();
    match n {
        0 => return,
        1 => {
            sa[0] = 0;
            return;
        }
        2 => {
            // With the sentinel, suffix order of a 2-char text is decided by
            // a single comparison: text[1..] < text[0..] iff
            // (text[1], $) < (text[0], text[1], $).
            if text[1] <= text[0] {
                sa[0] = 1;
                sa[1] = 0;
            } else {
                sa[0] = 0;
                sa[1] = 1;
            }
            return;
        }
        _ => {}
    }

    // 1. Classify suffixes: S-type (true) or L-type (false).
    // The virtual sentinel is S-type; text[n-1] is L-type (it is greater
    // than the sentinel).
    let mut is_s = vec![false; n];
    is_s[n - 1] = false;
    for i in (0..n - 1).rev() {
        is_s[i] = text[i] < text[i + 1] || (text[i] == text[i + 1] && is_s[i + 1]);
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];

    // 2. Bucket boundaries by character.
    let mut bucket_sizes = vec![0u32; alphabet];
    for &c in text {
        bucket_sizes[c as usize] += 1;
    }
    let bucket_heads = |sizes: &[u32]| {
        let mut heads = vec![0u32; alphabet];
        let mut sum = 0;
        for (h, &s) in heads.iter_mut().zip(sizes) {
            *h = sum;
            sum += s;
        }
        heads
    };
    let bucket_tails = |sizes: &[u32]| {
        let mut tails = vec![0u32; alphabet];
        let mut sum = 0;
        for (t, &s) in tails.iter_mut().zip(sizes) {
            sum += s;
            *t = sum;
        }
        tails
    };

    // Induced sort: given LMS positions placed at bucket tails, produce the
    // full (approximate or final) suffix order.
    let induce = |sa: &mut [u32], lms_seed: &dyn Fn(&mut [u32], &mut [u32])| {
        sa.fill(u32::MAX);
        let mut tails = bucket_tails(&bucket_sizes);
        lms_seed(sa, &mut tails);
        // Induce L-type from left to right.
        let mut heads = bucket_heads(&bucket_sizes);
        // The sentinel's predecessor text[n-1] is induced first.
        {
            let c = text[n - 1] as usize;
            sa[heads[c] as usize] = (n - 1) as u32;
            heads[c] += 1;
        }
        for i in 0..n {
            let pos = sa[i];
            if pos == u32::MAX || pos == 0 {
                continue;
            }
            let j = pos as usize - 1;
            if !is_s[j] {
                let c = text[j] as usize;
                sa[heads[c] as usize] = j as u32;
                heads[c] += 1;
            }
        }
        // Induce S-type from right to left.
        let mut tails = bucket_tails(&bucket_sizes);
        for i in (0..n).rev() {
            let pos = sa[i];
            if pos == u32::MAX || pos == 0 {
                continue;
            }
            let j = pos as usize - 1;
            if is_s[j] {
                let c = text[j] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = j as u32;
            }
        }
    };

    // 3. First pass: place LMS suffixes in text order at bucket tails and
    // induce to get them approximately sorted.
    let lms_positions: Vec<u32> = (0..n).filter(|&i| is_lms(i)).map(|i| i as u32).collect();
    induce(sa, &{
        let lms = lms_positions.clone();
        move |sa: &mut [u32], tails: &mut [u32]| {
            for &p in lms.iter().rev() {
                let c = text[p as usize] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = p;
            }
        }
    });

    // 4. Extract sorted LMS substrings and name them.
    let mut sorted_lms: Vec<u32> = sa
        .iter()
        .copied()
        .filter(|&p| p != u32::MAX && is_lms(p as usize))
        .collect();
    let lms_count = sorted_lms.len();
    let mut names = vec![u32::MAX; n];
    let mut name_count: u32 = 0;
    let mut prev: Option<usize> = None;
    for &p in &sorted_lms {
        let p = p as usize;
        let equal = match prev {
            None => false,
            Some(q) => lms_substring_eq(text, &is_s, p, q),
        };
        if !equal {
            name_count += 1;
        }
        names[p] = name_count - 1;
        prev = Some(p);
    }

    if (name_count as usize) < lms_count {
        // 5. Names are not unique: recurse on the reduced text.
        let reduced: Vec<u32> = (0..n).filter(|&i| is_lms(i)).map(|i| names[i]).collect();
        let mut reduced_sa = vec![u32::MAX; reduced.len()];
        sais(&reduced, &mut reduced_sa, name_count as usize);
        for (rank, &r) in reduced_sa.iter().enumerate() {
            sorted_lms[rank] = lms_positions[r as usize];
        }
    } else {
        // Names unique: LMS order is already exact (it is `sorted_lms`).
    }

    // 6. Final induced sort seeded with the exactly-sorted LMS suffixes.
    induce(sa, &{
        let lms = sorted_lms;
        move |sa: &mut [u32], tails: &mut [u32]| {
            for &p in lms.iter().rev() {
                let c = text[p as usize] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = p;
            }
        }
    });
}

/// Compares the LMS substrings starting at `a` and `b` for equality.
fn lms_substring_eq(text: &[u32], is_s: &[bool], a: usize, b: usize) -> bool {
    let n = text.len();
    if a == b {
        return true;
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];
    let mut i = 0;
    loop {
        let (pa, pb) = (a + i, b + i);
        if pa == n || pb == n {
            // One substring ran into the sentinel; equal only if both did,
            // which cannot happen for a != b.
            return false;
        }
        if text[pa] != text[pb] || is_s[pa] != is_s[pb] {
            return false;
        }
        if i > 0 && (is_lms(pa) || is_lms(pb)) {
            return is_lms(pa) && is_lms(pb);
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sa(text: &[u32]) -> Vec<u32> {
        let mut sa: Vec<u32> = (0..text.len() as u32).collect();
        sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        sa
    }

    fn check(text: &[u32], alphabet: usize) {
        assert_eq!(
            suffix_array_u32(text, alphabet),
            naive_sa(text),
            "text {text:?}"
        );
    }

    #[test]
    fn empty_and_tiny() {
        check(&[], 4);
        check(&[2], 4);
        check(&[1, 0], 4);
        check(&[0, 1], 4);
        check(&[1, 1], 4);
    }

    #[test]
    fn classic_examples() {
        // banana over a=0,b=1,n=2
        check(&[1, 0, 2, 0, 2, 0], 3);
        // mississippi over i=0,m=1,p=2,s=3
        check(&[1, 0, 3, 3, 0, 3, 3, 0, 2, 2, 0], 4);
    }

    #[test]
    fn runs_and_periodic() {
        check(&[0, 0, 0, 0, 0], 2);
        check(&[3, 3, 3, 3], 4);
        check(&[0, 1, 0, 1, 0, 1], 2);
        check(&[1, 0, 1, 0, 1], 2);
        check(&[2, 1, 0, 2, 1, 0, 2, 1, 0], 3);
    }

    #[test]
    fn random_dna_matches_naive() {
        // xorshift for determinism without pulling rand into this module
        let mut x = 0x12345678u64;
        for len in [10usize, 50, 200, 1000] {
            for _ in 0..8 {
                let text: Vec<u32> = (0..len)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        (x % 4) as u32
                    })
                    .collect();
                check(&text, 4);
            }
        }
    }

    #[test]
    fn random_binary_worst_cases() {
        let mut x = 0xDEADBEEFu64;
        for _ in 0..20 {
            let len = 1 + (x % 300) as usize;
            let text: Vec<u32> = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((x >> 33) % 2) as u32
                })
                .collect();
            check(&text, 2);
        }
    }
}
