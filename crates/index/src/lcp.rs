//! Longest-common-prefix (LCP) arrays via Kasai's algorithm.
//!
//! `lcp[i]` is the length of the longest common prefix of the suffixes at
//! suffix-array ranks `i − 1` and `i` (`lcp[0] = 0`). The LCP array turns
//! a suffix array into a full suffix tree substitute: repeat statistics,
//! maximal-repeat enumeration, and the distinct-k-mer counts used to size
//! CASA's pre-seeding filter all fall out of it in linear time.

use crate::SuffixArray;

/// Computes the LCP array of `sa` in O(n) (Kasai et al. 2001).
///
/// ```
/// use casa_genome::PackedSeq;
/// use casa_index::{SuffixArray, lcp::lcp_array};
///
/// let text = PackedSeq::from_ascii(b"ACGTACGT")?;
/// let sa = SuffixArray::build(&text);
/// let lcp = lcp_array(&sa);
/// assert_eq!(lcp.len(), 8);
/// // The two "ACGT..." suffixes share a 4-base prefix.
/// assert!(lcp.iter().any(|&l| l == 4));
/// # Ok::<(), casa_genome::ParseBaseError>(())
/// ```
#[allow(clippy::needless_range_loop)] // pos is a text cursor, not a slice index walk
pub fn lcp_array(sa: &SuffixArray) -> Vec<u32> {
    let text = sa.text();
    let n = text.len();
    let mut rank = vec![0u32; n];
    for (r, &p) in sa.sa().iter().enumerate() {
        rank[p as usize] = r as u32;
    }
    let mut lcp = vec![0u32; n];
    let mut h = 0usize;
    for pos in 0..n {
        let r = rank[pos] as usize;
        if r == 0 {
            h = 0;
            continue;
        }
        let prev = sa.sa()[r - 1] as usize;
        // Kasai invariant: this position's LCP is at least the previous
        // position's minus one, so extend from that inherited overlap.
        h = h.saturating_sub(usize::from(h > 0));
        h += text.common_prefix_len(prev + h, text, pos + h);
        lcp[r] = h as u32;
    }
    lcp
}

/// Statistics over an LCP array, used by the synthetic-genome validation
/// and the filter-sizing analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LcpStats {
    /// Maximum LCP value (longest repeated substring length).
    pub max: u32,
    /// Mean LCP value.
    pub mean: f64,
    /// Number of ranks with `lcp >= k` (i.e. `total k-mers − distinct
    /// k-mers` for that k).
    pub ge_k: usize,
}

/// Summarizes `lcp` relative to a k-mer size `k`.
pub fn lcp_stats(lcp: &[u32], k: u32) -> LcpStats {
    if lcp.is_empty() {
        return LcpStats::default();
    }
    LcpStats {
        max: lcp.iter().copied().max().unwrap_or(0),
        mean: lcp.iter().map(|&x| f64::from(x)).sum::<f64>() / lcp.len() as f64,
        ge_k: lcp.iter().filter(|&&x| x >= k).count(),
    }
}

/// Number of distinct k-mers in the text, computed from the LCP array in
/// O(n): every rank whose LCP is below `k` starts a new k-mer.
pub fn distinct_kmers(sa: &SuffixArray, lcp: &[u32], k: usize) -> usize {
    let n = sa.len();
    if n < k {
        return 0;
    }
    sa.sa()
        .iter()
        .zip(lcp)
        .filter(|(&pos, &l)| pos as usize + k <= n && (l as usize) < k)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_genome::synth::{generate_reference, ReferenceProfile};
    use casa_genome::PackedSeq;
    use std::collections::HashSet;

    #[allow(clippy::needless_range_loop)]
    fn naive_lcp(sa: &SuffixArray) -> Vec<u32> {
        let text = sa.text();
        let mut out = vec![0u32; sa.len()];
        for r in 1..sa.len() {
            let a = sa.sa()[r - 1] as usize;
            let b = sa.sa()[r] as usize;
            out[r] = text.common_prefix_len(a, text, b) as u32;
        }
        out
    }

    #[test]
    fn matches_naive_on_random_texts() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let len = rng.gen_range(2..400);
            let text: PackedSeq = (0..len)
                .map(|_| casa_genome::Base::from_code(rng.gen_range(0..4)))
                .collect();
            let sa = SuffixArray::build(&text);
            assert_eq!(lcp_array(&sa), naive_lcp(&sa), "text {text}");
        }
    }

    #[test]
    fn repetitive_text_has_long_lcps() {
        let text = PackedSeq::from_ascii(&b"GATTACA".repeat(20)).unwrap();
        let sa = SuffixArray::build(&text);
        let lcp = lcp_array(&sa);
        let stats = lcp_stats(&lcp, 19);
        assert!(stats.max >= 7 * 19 / 7); // long overlaps exist
        assert!(stats.ge_k > 0);
    }

    #[test]
    fn distinct_kmers_matches_hashset() {
        let text = generate_reference(&ReferenceProfile::human_like(), 5_000, 12);
        let sa = SuffixArray::build(&text);
        let lcp = lcp_array(&sa);
        for k in [4usize, 9, 19] {
            let expect: HashSet<u64> = text.kmers(k).map(|(_, c)| c).collect();
            assert_eq!(distinct_kmers(&sa, &lcp, k), expect.len(), "k={k}");
        }
    }

    #[test]
    fn empty_and_unit_texts() {
        let sa = SuffixArray::build(&PackedSeq::new());
        assert!(lcp_array(&sa).is_empty());
        assert_eq!(lcp_stats(&[], 5), LcpStats::default());
        let one = PackedSeq::from_ascii(b"A").unwrap();
        let sa = SuffixArray::build(&one);
        assert_eq!(lcp_array(&sa), vec![0]);
    }
}
