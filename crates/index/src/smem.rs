//! Super-maximal exact matches (SMEMs): types and golden algorithms.
//!
//! A *maximal exact match* (MEM) is a read substring that matches the
//! reference exactly and cannot be extended in either direction; a *SMEM*
//! is a MEM not fully contained (in read coordinates) in any other MEM
//! (paper §2.1). BWA-MEM2 reports SMEMs of length ≥ 19 as seeds.
//!
//! Three independent implementations are provided and cross-checked:
//!
//! * [`smems_unidirectional`] — GenAx's strategy (paper Fig. 1b): compute
//!   the right-maximal exact match (RMEM) at every pivot via suffix-array
//!   longest-match queries, then discard contained RMEMs;
//! * [`smems_bidirectional`] — BWA-MEM2's strategy (paper Fig. 1a; Li 2012,
//!   Algorithm 2) on a bidirectional FM-index, recording left extension
//!   points during the forward pass;
//! * [`smems_brute_force`] — an O(n·m) oracle for tests.
//!
//! The containment argument for the unidirectional version: a surviving
//! RMEM `[x, e)` is right-maximal by construction, and it is left-maximal
//! because if `read[x-1..e)` matched somewhere, the RMEM at `x − 1` would
//! end at or beyond `e` and would have swallowed `[x, e)`.

use casa_genome::PackedSeq;
use serde::{Deserialize, Serialize};

use crate::{BiFmIndex, BiInterval, SuffixArray};

/// BWA-MEM2's default minimum SMEM length reported as a seed.
pub const MIN_SMEM_LEN: usize = 19;

/// A super-maximal exact match between a read and a reference.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Smem {
    /// Start position on the read (inclusive).
    pub read_start: usize,
    /// End position on the read (exclusive).
    pub read_end: usize,
    /// Sorted reference start positions of the match (the seeding *hits*).
    pub hits: Vec<u32>,
}

impl Smem {
    /// Match length in bases.
    pub fn len(&self) -> usize {
        self.read_end - self.read_start
    }

    /// Whether the match is empty (never true for algorithm outputs).
    pub fn is_empty(&self) -> bool {
        self.read_end == self.read_start
    }

    /// Whether `self` is fully contained in `other` on the read.
    pub fn contained_in(&self, other: &Smem) -> bool {
        other.read_start <= self.read_start && self.read_end <= other.read_end
    }
}

/// Computes SMEMs by uni-directional RMEM search on a suffix array
/// (GenAx's formulation). Only matches of at least `min_len` bases are
/// reported, mirroring BWA-MEM2's seed-length threshold.
///
/// Returned SMEMs are sorted by `read_start` and their `hits` are sorted.
///
/// ```
/// use casa_genome::PackedSeq;
/// use casa_index::{SuffixArray, smem::smems_unidirectional};
///
/// let reference = PackedSeq::from_ascii(b"CATCAATCGTTATC")?;
/// let read = PackedSeq::from_ascii(b"AGTCAATCGGAC")?; // paper Fig. 6a
/// let sa = SuffixArray::build(&reference);
/// let smems = smems_unidirectional(&sa, &read, 5);
/// assert_eq!(smems.len(), 1);
/// assert_eq!((smems[0].read_start, smems[0].read_end), (2, 9)); // TCAATCG
/// assert_eq!(smems[0].hits, vec![2]);
/// # Ok::<(), casa_genome::ParseBaseError>(())
/// ```
pub fn smems_unidirectional(sa: &SuffixArray, read: &PackedSeq, min_len: usize) -> Vec<Smem> {
    let mut out = Vec::new();
    let mut max_end = 0usize;
    for pivot in 0..read.len() {
        let (len, interval) = sa.longest_match(read, pivot);
        if len == 0 {
            continue;
        }
        let end = pivot + len;
        if end <= max_end {
            continue; // contained in an earlier RMEM
        }
        max_end = end;
        if len >= min_len {
            let mut hits: Vec<u32> = sa.positions(interval).map(|p| p as u32).collect();
            hits.sort_unstable();
            out.push(Smem {
                read_start: pivot,
                read_end: end,
                hits,
            });
        }
    }
    out
}

/// Computes SMEMs with the bidirectional algorithm of BWA-MEM2
/// (Li 2012, Algorithm 2) on a [`BiFmIndex`].
///
/// Returned SMEMs are sorted by `read_start` and their `hits` are sorted.
/// Cross-checked against [`smems_unidirectional`] in tests.
pub fn smems_bidirectional(bi: &BiFmIndex, read: &PackedSeq, min_len: usize) -> Vec<Smem> {
    let mut candidates: Vec<(usize, usize, BiInterval)> = Vec::new();
    let mut x = 0usize;
    while x < read.len() {
        x = collect_mems_covering(bi, read, x, &mut candidates);
    }
    // Containment filter across pivot batches, then length filter.
    candidates.sort_by_key(|&(s, e, _)| (s, std::cmp::Reverse(e)));
    let mut out = Vec::new();
    let mut max_end = 0usize;
    let mut last_start = usize::MAX;
    for (s, e, iv) in candidates {
        if s == last_start || e <= max_end {
            continue;
        }
        last_start = s;
        max_end = e;
        if e - s >= min_len {
            let mut hits: Vec<u32> = bi.locate(&iv).into_iter().map(|p| p as u32).collect();
            hits.sort_unstable();
            out.push(Smem {
                read_start: s,
                read_end: e,
                hits,
            });
        }
    }
    out.sort_by_key(|s| s.read_start);
    out
}

/// One round of Li's algorithm: finds all MEMs covering pivot `x` and
/// returns the next pivot (the end of the longest match through `x`).
fn collect_mems_covering(
    bi: &BiFmIndex,
    read: &PackedSeq,
    x: usize,
    out: &mut Vec<(usize, usize, BiInterval)>,
) -> usize {
    let init = bi.init(read.base(x));
    if init.is_empty() {
        return x + 1;
    }

    // Forward pass: extend right from x, recording an interval every time
    // the occurrence count drops (these are the left-extension points of
    // Fig. 1a, viewed from the right).
    let mut curr: Vec<(BiInterval, usize)> = Vec::new();
    let mut iv = init;
    let mut i = x + 1;
    while i < read.len() {
        let next = bi.extend_right(&iv, read.base(i));
        if next.size() != iv.size() {
            curr.push((iv.clone(), i));
        }
        if next.is_empty() {
            break;
        }
        iv = next;
        i += 1;
    }
    if i == read.len() {
        curr.push((iv, read.len()));
    }
    let next_pivot = curr.last().expect("non-empty: init interval existed").1;

    // Backward pass: Prev holds intervals in decreasing end order; extend
    // all of them left simultaneously, emitting a MEM whenever the
    // longest-ending interval can no longer grow.
    let mut prev: Vec<(BiInterval, usize)> = curr.into_iter().rev().collect();
    let mut i = x as isize - 1;
    loop {
        let c = if i >= 0 {
            Some(read.base(i as usize))
        } else {
            None
        };
        let mut next_list: Vec<(BiInterval, usize)> = Vec::new();
        let mut last_size = usize::MAX;
        for (p_iv, end) in &prev {
            let ok = c.map(|c| bi.extend_left(p_iv, c));
            let dead = ok.as_ref().is_none_or(BiInterval::is_empty);
            if dead && next_list.is_empty() {
                // First failure at this left boundary: [i+1, end) is a MEM.
                out.push(((i + 1) as usize, *end, p_iv.clone()));
            }
            if let Some(ok) = ok {
                if !ok.is_empty() && ok.size() != last_size {
                    last_size = ok.size();
                    next_list.push((ok, *end));
                }
            }
        }
        if next_list.is_empty() {
            break;
        }
        prev = next_list;
        i -= 1;
    }
    next_pivot
}

/// O(n·m) SMEM oracle used by tests: computes the longest match at every
/// pivot by scanning the whole reference, then applies the containment and
/// length filters.
pub fn smems_brute_force(reference: &PackedSeq, read: &PackedSeq, min_len: usize) -> Vec<Smem> {
    let mut out = Vec::new();
    let mut max_end = 0usize;
    for pivot in 0..read.len() {
        let mut best = 0usize;
        for start in 0..reference.len() {
            best = best.max(reference.common_prefix_len(start, read, pivot));
        }
        if best == 0 {
            continue;
        }
        let end = pivot + best;
        if end <= max_end {
            continue;
        }
        max_end = end;
        if best >= min_len {
            let hits: Vec<u32> = (0..reference.len())
                .filter(|&s| reference.matches(s, read, pivot, best))
                .map(|s| s as u32)
                .collect();
            out.push(Smem {
                read_start: pivot,
                read_end: end,
                hits,
            });
        }
    }
    out
}

/// Merges per-partition SMEM results (with hits already translated to
/// global coordinates) into the final SMEM set for the whole reference:
/// unions hits of identical read intervals, then drops intervals contained
/// in longer ones.
///
/// This is the software counterpart of CASA's result-buffer merge across
/// the reference parts streamed through the accelerator.
pub fn merge_partition_smems(mut per_part: Vec<Vec<Smem>>) -> Vec<Smem> {
    let mut all: Vec<Smem> = per_part.drain(..).flatten().collect();
    merge_flat_smems(&mut all)
}

/// [`merge_partition_smems`] over one pre-flattened buffer, which it
/// drains — the allocation-free form for callers that own a reusable
/// scratch vector (the session's batch assembly path).
///
/// After sorting by `(read_start asc, read_end desc)`, every earlier
/// entry starts at or before the current one, so "contained in some
/// earlier interval" collapses to `read_end <= max_end` over the entries
/// kept so far — a running maximum instead of a quadratic rescan.
/// Identical intervals sort adjacent, so the hit-union branch only ever
/// needs to look at the last kept entry.
pub fn merge_flat_smems(all: &mut Vec<Smem>) -> Vec<Smem> {
    all.sort_unstable_by_key(|s| (s.read_start, std::cmp::Reverse(s.read_end)));
    let mut merged: Vec<Smem> = Vec::new();
    let mut max_end = 0usize;
    for mut smem in all.drain(..) {
        if let Some(last) = merged.last_mut() {
            if last.read_start == smem.read_start && last.read_end == smem.read_end {
                last.hits.append(&mut smem.hits);
                continue;
            }
        }
        if smem.read_end <= max_end {
            continue;
        }
        max_end = smem.read_end;
        merged.push(smem);
    }
    for m in &mut merged {
        m.hits.sort_unstable();
        m.hits.dedup();
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_genome::synth::{generate_reference, ReferenceProfile};
    use casa_genome::{ReadSimConfig, ReadSimulator};

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn paper_figure6_example() {
        // Fig. 6a: read AGTCAATCGGAC vs reference CATCAATCGTTATC,
        // the SMEM is TCAATCG starting at read index 2 (0-based).
        let reference = seq("CATCAATCGTTATC");
        let read = seq("AGTCAATCGGAC");
        let sa = SuffixArray::build(&reference);
        let smems = smems_unidirectional(&sa, &read, 5);
        assert_eq!(smems.len(), 1);
        assert_eq!(smems[0].read_start, 2);
        assert_eq!(smems[0].read_end, 9);
        assert_eq!(smems[0].hits, vec![2]);
    }

    #[test]
    fn containment_is_filtered() {
        // Reference contains ABCDE and BCDEF-style overlaps so shorter
        // right-matches are swallowed.
        let reference = seq("ACGTACGTTTGGAACC");
        let read = seq("ACGTACGT");
        let sa = SuffixArray::build(&reference);
        let smems = smems_unidirectional(&sa, &read, 1);
        // whole read matches at 0, so single SMEM covering everything
        assert_eq!(smems.len(), 1);
        assert_eq!((smems[0].read_start, smems[0].read_end), (0, 8));
    }

    #[test]
    fn unidirectional_matches_brute_force_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        for trial in 0..40 {
            let ref_len = 200 + (trial % 5) * 100;
            let reference: PackedSeq = (0..ref_len)
                .map(|_| casa_genome::Base::from_code(rng.gen_range(0..4)))
                .collect();
            let read: PackedSeq = (0..60)
                .map(|i| {
                    if rng.gen_bool(0.7) && i < 50 {
                        reference.base(rng.gen_range(0..ref_len - 60) + i)
                    } else {
                        casa_genome::Base::from_code(rng.gen_range(0..4))
                    }
                })
                .collect();
            let sa = SuffixArray::build(&reference);
            for min_len in [1, 5, 10] {
                assert_eq!(
                    smems_unidirectional(&sa, &read, min_len),
                    smems_brute_force(&reference, &read, min_len),
                    "trial {trial} min_len {min_len}"
                );
            }
        }
    }

    #[test]
    fn bidirectional_matches_unidirectional_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4096);
        for trial in 0..30 {
            let reference: PackedSeq = (0..400)
                .map(|_| casa_genome::Base::from_code(rng.gen_range(0..4)))
                .collect();
            // Reads stitched from reference chunks to create multi-SMEM
            // structure.
            let mut read = PackedSeq::new();
            for _ in 0..4 {
                let s = rng.gen_range(0..reference.len() - 20);
                read.extend(reference.subseq(s, rng.gen_range(8..20)).iter());
            }
            let sa = SuffixArray::build(&reference);
            let bi = BiFmIndex::build(&reference);
            for min_len in [1, 6, 12] {
                let uni = smems_unidirectional(&sa, &read, min_len);
                let bid = smems_bidirectional(&bi, &read, min_len);
                assert_eq!(uni, bid, "trial {trial} min_len {min_len} read {read}");
            }
        }
    }

    #[test]
    fn realistic_reads_on_synthetic_genome() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 30_000, 3);
        let sa = SuffixArray::build(&reference);
        let bi = BiFmIndex::build(&reference);
        let reads = ReadSimulator::new(ReadSimConfig::default(), 8).simulate(&reference, 30);
        for read in &reads {
            let uni = smems_unidirectional(&sa, &read.seq, MIN_SMEM_LEN);
            let bid = smems_bidirectional(&bi, &read.seq, MIN_SMEM_LEN);
            assert_eq!(uni, bid, "read {}", read.name);
            if read.is_exact() && !read.reverse {
                // an exact forward read yields one full-length SMEM
                assert_eq!(uni.len(), 1);
                assert_eq!(uni[0].len(), read.seq.len());
                assert!(uni[0].hits.contains(&(read.origin as u32)));
            }
        }
    }

    #[test]
    fn min_len_filters_short_matches() {
        let reference = seq("ACGTACGTTTGGAACCACGT");
        let read = seq("ACGTTTGG");
        let sa = SuffixArray::build(&reference);
        assert!(!smems_unidirectional(&sa, &read, 5).is_empty());
        assert!(smems_unidirectional(&sa, &read, 9).is_empty());
    }

    #[test]
    fn merge_unions_hits_and_drops_contained() {
        let a = Smem {
            read_start: 0,
            read_end: 30,
            hits: vec![10],
        };
        let a2 = Smem {
            read_start: 0,
            read_end: 30,
            hits: vec![500],
        };
        let contained = Smem {
            read_start: 5,
            read_end: 25,
            hits: vec![900],
        };
        let separate = Smem {
            read_start: 20,
            read_end: 55,
            hits: vec![700],
        };
        let merged = merge_partition_smems(vec![vec![a, contained], vec![a2, separate]]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].hits, vec![10, 500]);
        assert_eq!(merged[1].hits, vec![700]);
    }

    #[test]
    fn flat_merge_handles_deep_containment_and_duplicate_hits() {
        let smem = |s: usize, e: usize, hits: Vec<u32>| Smem {
            read_start: s,
            read_end: e,
            hits,
        };
        // Containment in an *earlier, non-adjacent* survivor: (20, 28)
        // must be swallowed by (0, 30) even though (10, 40) sits between
        // them in sorted order — the running-max_end case that the
        // quadratic scan used to cover.
        let mut flat = vec![
            smem(20, 28, vec![3]),
            smem(0, 30, vec![9, 1]),
            smem(10, 40, vec![5]),
            smem(0, 30, vec![1, 2]), // identical interval: union + dedup
            smem(35, 38, vec![4]),   // contained in (10, 40)
        ];
        let merged = merge_flat_smems(&mut flat);
        assert!(flat.is_empty(), "input scratch is drained");
        assert_eq!(merged.len(), 2);
        assert_eq!((merged[0].read_start, merged[0].read_end), (0, 30));
        assert_eq!(merged[0].hits, vec![1, 2, 9]);
        assert_eq!((merged[1].read_start, merged[1].read_end), (10, 40));
        assert_eq!(merged[1].hits, vec![5]);
    }

    #[test]
    fn empty_read_yields_nothing() {
        let sa = SuffixArray::build(&seq("ACGT"));
        assert!(smems_unidirectional(&sa, &PackedSeq::new(), 1).is_empty());
        let bi = BiFmIndex::build(&seq("ACGT"));
        assert!(smems_bidirectional(&bi, &PackedSeq::new(), 1).is_empty());
    }
}
