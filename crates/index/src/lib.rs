//! Index substrate for the CASA reproduction.
//!
//! Every data structure the paper's seeding landscape is built on
//! (§2.2, Table 1), implemented from scratch:
//!
//! * [`sais`] / [`SuffixArray`] — linear-time suffix-array construction
//!   with interval and longest-match queries (the golden lookup machinery);
//! * [`lcp`] — Kasai LCP arrays (repeat statistics, distinct-k-mer
//!   counting);
//! * [`FmIndex`] — BWT + C + checkpointed Occ backward search, with
//!   operation counters for the BWA-MEM2 software baseline;
//! * [`BiFmIndex`] — bidirectional FM-index for BWA-MEM2-style two-sided
//!   SMEM extension;
//! * [`smem`] — the SMEM definition and three cross-checked golden
//!   algorithms (uni-directional, bidirectional, brute force);
//! * [`SeedPositionTable`] — GenAx's seed & position tables;
//! * [`ErtIndex`] — enumerated radix trees with DRAM-fetch accounting;
//! * [`serial`] — versioned, checksummed on-disk index serialization;
//! * [`image`] — page-aligned multi-section index images with a
//!   zero-copy mmap loader (reference text, CAM bitplanes, filter
//!   tables, suffix arrays in one relocatable artifact).
//!
//! # Example
//!
//! ```
//! use casa_genome::PackedSeq;
//! use casa_index::{SuffixArray, smem::{smems_unidirectional, MIN_SMEM_LEN}};
//!
//! let reference = PackedSeq::from_ascii(&b"GATTACA".repeat(6))?;
//! let sa = SuffixArray::build(&reference);
//! let read = reference.subseq(3, 25);
//! let smems = smems_unidirectional(&sa, &read, MIN_SMEM_LEN);
//! assert_eq!(smems.len(), 1);
//! assert_eq!(smems[0].len(), 25);
//! # Ok::<(), casa_genome::ParseBaseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bifm;
pub mod ert;
pub mod fm;
pub mod image;
pub mod lcp;
pub mod sais;
pub mod seedpos;
pub mod serial;
pub mod smem;
pub mod suffix_array;

pub use bifm::{BiFmIndex, BiInterval};
pub use ert::{ErtIndex, ErtWalk};
pub use fm::{FmIndex, FmOpCounts};
pub use seedpos::SeedPositionTable;
pub use smem::{Smem, MIN_SMEM_LEN};
pub use suffix_array::SuffixArray;
