//! Seed & position tables (Darwin / GenAx style, paper Fig. 3b).
//!
//! The seed table is indexed by the k-mer code and points into a position
//! table holding every reference occurrence of that k-mer. GenAx keeps both
//! tables on chip and computes RMEMs by striding k bases at a time and
//! intersecting position sets (paper §2.2). Lookup and intersection counts
//! are reported so the GenAx baseline model can convert them into cycles.

use std::ops::Range;

use casa_genome::PackedSeq;

/// Seed table + position table for a fixed k.
///
/// Memory footprint is `O(4^k + n)` — the exponential dependence on `k`
/// that motivates CASA's pre-seeding filter (which is `O(4^m + n)` for a
/// small `m`).
///
/// ```
/// use casa_genome::PackedSeq;
/// use casa_index::SeedPositionTable;
///
/// let reference = PackedSeq::from_ascii(b"ACGTACGTAC")?;
/// let table = SeedPositionTable::build(&reference, 4);
/// let q = PackedSeq::from_ascii(b"ACGT")?;
/// let hits = table.lookup(q.kmer_code(0, 4).unwrap());
/// assert_eq!(hits, &[0, 4]);
/// # Ok::<(), casa_genome::ParseBaseError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SeedPositionTable {
    k: usize,
    /// `seed_index[code]..seed_index[code+1]` bounds that k-mer's slice of
    /// `positions`. Length `4^k + 1`.
    seed_index: Vec<u32>,
    /// Reference start positions grouped by k-mer code, ascending within
    /// each group.
    positions: Vec<u32>,
}

impl SeedPositionTable {
    /// Builds the tables for all k-mers of `reference`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=16` (a 16-mer table already has 4 G
    /// entries; GenAx uses k = 12).
    pub fn build(reference: &PackedSeq, k: usize) -> SeedPositionTable {
        assert!((1..=16).contains(&k), "k must be in 1..=16, got {k}");
        let slots = 1usize << (2 * k);
        let mut counts = vec![0u32; slots + 1];
        for (_, code) in reference.kmers(k) {
            counts[code as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let seed_index = counts.clone();
        let mut cursor = counts;
        let total = reference.len().saturating_sub(k - 1);
        let mut positions = vec![0u32; total];
        for (pos, code) in reference.kmers(k) {
            positions[cursor[code as usize] as usize] = pos as u32;
            cursor[code as usize] += 1;
        }
        SeedPositionTable {
            k,
            seed_index,
            positions,
        }
    }

    /// The k-mer size of the table.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of position entries (== number of k-mers in the reference).
    pub fn position_count(&self) -> usize {
        self.positions.len()
    }

    /// Reference positions of the k-mer `code`, ascending. One seed-table
    /// fetch in the GenAx cost model.
    ///
    /// # Panics
    ///
    /// Panics if `code >= 4^k`.
    pub fn lookup(&self, code: u64) -> &[u32] {
        let range = self.slice_of(code);
        &self.positions[range]
    }

    /// Whether the k-mer occurs at all (a seed-table fetch without the
    /// position-table read).
    pub fn contains(&self, code: u64) -> bool {
        !self.slice_of(code).is_empty()
    }

    fn slice_of(&self, code: u64) -> Range<usize> {
        let code = code as usize;
        assert!(
            code + 1 < self.seed_index.len(),
            "k-mer code {code} out of range for k={}",
            self.k
        );
        self.seed_index[code] as usize..self.seed_index[code + 1] as usize
    }

    /// Modelled memory footprint in bytes: 4 B per seed-table slot plus
    /// 4 B per position (paper §2.2: `O(4^k + n)`).
    pub fn footprint_bytes(&self) -> usize {
        self.seed_index.len() * 4 + self.positions.len() * 4
    }

    /// Intersects hit set `a` (positions of a k-mer at read offset 0) with
    /// hit set `b` (positions of a k-mer `delta` bases later on the read):
    /// keeps `p ∈ a` such that `p + delta ∈ b`. This is GenAx's position
    /// intersection primitive; the caller counts invocations.
    pub fn intersect(a: &[u32], b: &[u32], delta: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let want = a[i] + delta;
            if b[j] < want {
                j += 1;
            } else if b[j] > want {
                i += 1;
            } else {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn lookup_returns_all_occurrences_sorted() {
        let r = seq("ACGTACGTACGA");
        let t = SeedPositionTable::build(&r, 3);
        let code = seq("ACG").kmer_code(0, 3).unwrap();
        assert_eq!(t.lookup(code), &[0, 4, 8]);
        let missing = seq("GGG").kmer_code(0, 3).unwrap();
        assert_eq!(t.lookup(missing), &[] as &[u32]);
        assert!(!t.contains(missing));
        assert!(t.contains(code));
    }

    #[test]
    fn position_count_matches_kmer_count() {
        let r = seq("ACGTACGT");
        let t = SeedPositionTable::build(&r, 4);
        assert_eq!(t.position_count(), 5);
        // every kmer accounted for exactly once
        let total: usize = (0..(1u64 << 8)).map(|c| t.lookup(c).len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn agrees_with_scan_on_random_text() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let r: PackedSeq = (0..500)
            .map(|_| casa_genome::Base::from_code(rng.gen_range(0..4)))
            .collect();
        let k = 5;
        let t = SeedPositionTable::build(&r, k);
        for _ in 0..100 {
            let code = rng.gen_range(0..(1u64 << (2 * k)));
            let expect: Vec<u32> = (0..=r.len() - k)
                .filter(|&p| r.kmer_code(p, k) == Some(code))
                .map(|p| p as u32)
                .collect();
            assert_eq!(t.lookup(code), expect.as_slice());
        }
    }

    #[test]
    fn intersect_offsets_positions() {
        let a = vec![0, 10, 20, 30];
        let b = vec![14, 24, 99];
        assert_eq!(SeedPositionTable::intersect(&a, &b, 4), vec![10, 20]);
        assert_eq!(SeedPositionTable::intersect(&a, &[], 4), Vec::<u32>::new());
        assert_eq!(SeedPositionTable::intersect(&a, &a, 0), a);
    }

    #[test]
    fn footprint_scales_exponentially_with_k() {
        let r = seq(&"ACGT".repeat(100));
        let f8 = SeedPositionTable::build(&r, 8).footprint_bytes();
        let f10 = SeedPositionTable::build(&r, 10).footprint_bytes();
        assert!(f10 > f8 * 10, "4^k term must dominate: {f8} vs {f10}");
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=16")]
    fn rejects_oversized_k() {
        SeedPositionTable::build(&seq("ACGT"), 17);
    }
}
