//! FM-index: BWT, C table, checkpointed Occ table, backward search.
//!
//! This is the data structure behind BWA-MEM2's seeding (paper §2.2,
//! Fig. 2). Every rank query is counted so the BWA-MEM2 software baseline
//! can translate algorithmic work into modelled CPU time — the paper's
//! critique of the FM-index is precisely its "one-base-at-a-time lookup,
//! leading to frequent, irregular, and unpredictable memory access".

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use casa_genome::{Base, PackedSeq};

use crate::SuffixArray;

/// Code used for the sentinel character in the BWT byte vector.
const SENTINEL: u8 = 4;
/// Occ checkpoint spacing, in BWT positions.
const CHECKPOINT: usize = 128;

/// Operation counters exposed by [`FmIndex`], used by the baseline CPU
/// model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FmOpCounts {
    /// Number of `Occ(c, i)` rank queries performed.
    pub occ_queries: u64,
    /// Number of suffix-array lookups (hit location).
    pub sa_lookups: u64,
}

/// An FM-index over a DNA text.
///
/// The index consists of the BWT of `text$`, the `C` table, a checkpointed
/// `Occ` table, and the plain suffix array for locating hits.
///
/// ```
/// use casa_genome::PackedSeq;
/// use casa_index::FmIndex;
///
/// let text = PackedSeq::from_ascii(b"ATCTC")?;
/// let fm = FmIndex::build(&text);
/// let q = PackedSeq::from_ascii(b"TC")?;
/// let interval = fm.backward_search(&q, 0, 2);
/// assert_eq!(interval.len(), 2);
/// let mut hits: Vec<usize> = fm.locate(interval).collect();
/// hits.sort_unstable();
/// assert_eq!(hits, vec![1, 3]);
/// # Ok::<(), casa_genome::ParseBaseError>(())
/// ```
#[derive(Debug)]
pub struct FmIndex {
    /// BWT over codes 0..=3, with [`SENTINEL`] for `$`. Length `n + 1`.
    bwt: Vec<u8>,
    /// Rank of the sentinel row in the BWT.
    sentinel_rank: usize,
    /// `c_table[c]` = 1 + number of text characters strictly smaller than
    /// `c` (the `+1` accounts for the sentinel). Indexed by code, with a
    /// final entry equal to `n + 1`.
    c_table: [usize; 5],
    /// Occ checkpoints every [`CHECKPOINT`] BWT positions (exclusive
    /// prefix counts), one `[u32; 4]` per checkpoint.
    checkpoints: Vec<[u32; 4]>,
    /// Suffix array of the text (without the sentinel row).
    sa: Vec<u32>,
    occ_queries: AtomicU64,
    sa_lookups: AtomicU64,
}

impl FmIndex {
    /// Builds the FM-index of `text` (computes a suffix array internally).
    pub fn build(text: &PackedSeq) -> FmIndex {
        FmIndex::from_suffix_array(&SuffixArray::build(text))
    }

    /// Builds the FM-index from an existing suffix array, reusing its
    /// sorted order.
    pub fn from_suffix_array(sa: &SuffixArray) -> FmIndex {
        let text = sa.text();
        let n = text.len();
        // Row 0 of the conceptual BW matrix is the sentinel suffix, whose
        // preceding character is text[n-1]. Row i >= 1 is suffix sa[i-1].
        let mut bwt = Vec::with_capacity(n + 1);
        let mut sentinel_rank = 0;
        if n == 0 {
            bwt.push(SENTINEL);
        } else {
            bwt.push(text.base(n - 1).code());
            for (i, &p) in sa.sa().iter().enumerate() {
                if p == 0 {
                    bwt.push(SENTINEL);
                    sentinel_rank = i + 1;
                } else {
                    bwt.push(text.base(p as usize - 1).code());
                }
            }
        }

        let mut counts = [0usize; 4];
        for i in 0..n {
            counts[text.base(i).code() as usize] += 1;
        }
        let mut c_table = [0usize; 5];
        let mut sum = 1; // sentinel
        for c in 0..4 {
            c_table[c] = sum;
            sum += counts[c];
        }
        c_table[4] = sum;
        debug_assert_eq!(sum, n + 1);

        let mut checkpoints = Vec::with_capacity(bwt.len() / CHECKPOINT + 1);
        let mut running = [0u32; 4];
        for (i, &b) in bwt.iter().enumerate() {
            if i % CHECKPOINT == 0 {
                checkpoints.push(running);
            }
            if b != SENTINEL {
                running[b as usize] += 1;
            }
        }

        FmIndex {
            bwt,
            sentinel_rank,
            c_table,
            checkpoints,
            sa: sa.sa().to_vec(),
            occ_queries: AtomicU64::new(0),
            sa_lookups: AtomicU64::new(0),
        }
    }

    /// Length of the indexed text (excluding the sentinel).
    pub fn text_len(&self) -> usize {
        self.bwt.len() - 1
    }

    /// `Occ(c, i)`: occurrences of `c` in `bwt[0..i]`. Counted as one rank
    /// query.
    pub fn occ(&self, c: Base, i: usize) -> usize {
        self.occ_queries.fetch_add(1, Ordering::Relaxed);
        self.occ_uncounted(c.code(), i)
    }

    fn occ_uncounted(&self, code: u8, i: usize) -> usize {
        debug_assert!(i <= self.bwt.len());
        let cp = i / CHECKPOINT;
        let mut count = self.checkpoints[cp][code as usize] as usize;
        for &b in &self.bwt[cp * CHECKPOINT..i] {
            if b == code {
                count += 1;
            }
        }
        count
    }

    /// Occurrences of the sentinel in `bwt[0..i]` (0 or 1). Free of charge
    /// in the op model: hardware keeps the single sentinel rank in a
    /// register.
    pub fn occ_sentinel(&self, i: usize) -> usize {
        usize::from(self.sentinel_rank < i)
    }

    /// `C(c)`: 1 + number of text characters strictly smaller than `c`.
    pub fn c_of(&self, c: Base) -> usize {
        self.c_table[c.code() as usize]
    }

    /// The full-text SA interval (rows `0..=n`), the starting point of a
    /// backward search.
    pub fn full_interval(&self) -> Range<usize> {
        0..self.bwt.len()
    }

    /// One backward-extension step: the interval of `c · P` given the
    /// interval of `P`.
    ///
    /// Costs two rank queries, exactly the memory behaviour the paper's
    /// Fig. 2 sketches (`s = C(q) + Occ(s-1, q)`).
    pub fn extend_left(&self, interval: &Range<usize>, c: Base) -> Range<usize> {
        let lo = self.c_of(c) + self.occ(c, interval.start);
        let hi = self.c_of(c) + self.occ(c, interval.end);
        lo..hi
    }

    /// Backward search of `query[from..from+len]`, right to left.
    ///
    /// Returns the interval of rows prefixed by the pattern (empty if
    /// absent).
    ///
    /// # Panics
    ///
    /// Panics if `from + len > query.len()`.
    pub fn backward_search(&self, query: &PackedSeq, from: usize, len: usize) -> Range<usize> {
        assert!(from + len <= query.len(), "pattern range out of bounds");
        let mut interval = self.full_interval();
        for i in (from..from + len).rev() {
            interval = self.extend_left(&interval, query.base(i));
            if interval.is_empty() {
                break;
            }
        }
        interval
    }

    /// Text positions of the rows in `interval`. Each yielded position is
    /// one SA lookup in the op model.
    ///
    /// # Panics
    ///
    /// Panics if the interval is out of bounds.
    pub fn locate(&self, interval: Range<usize>) -> impl Iterator<Item = usize> + '_ {
        interval.map(move |row| {
            self.sa_lookups.fetch_add(1, Ordering::Relaxed);
            assert!(row < self.bwt.len(), "row {row} out of bounds");
            if row == 0 {
                self.text_len() // the sentinel suffix "starts" at n
            } else {
                self.sa[row - 1] as usize
            }
        })
    }

    /// The BWT character code at `row` (4 for the sentinel).
    fn bwt_at(&self, row: usize) -> u8 {
        self.bwt[row]
    }

    /// LF mapping: the row of the suffix starting one text position
    /// earlier. Costs one rank query.
    ///
    /// # Panics
    ///
    /// Panics if `row` is the sentinel row (its suffix starts at text
    /// position 0; there is nothing earlier).
    pub fn lf(&self, row: usize) -> usize {
        let code = self.bwt_at(row);
        assert_ne!(code, SENTINEL, "LF is undefined at the sentinel row");
        let c = Base::from_code(code);
        self.c_of(c) + self.occ(c, row)
    }

    /// Text position of `row`'s suffix via a *sampled* suffix array: walk
    /// LF until a position divisible by `rate` is reached, as BWA's
    /// compressed index does (the full SA stays internal; only every
    /// `rate`-th text position is considered "stored"). Returns the
    /// position and the LF steps walked (each an extra rank query, which
    /// the op counters capture).
    ///
    /// # Panics
    ///
    /// Panics if `rate == 0` or `row` is out of bounds.
    pub fn locate_sampled(&self, row: usize, rate: usize) -> (usize, u32) {
        assert!(rate > 0, "sampling rate must be positive");
        assert!(row < self.bwt.len(), "row {row} out of bounds");
        let mut row = row;
        let mut steps = 0u32;
        loop {
            let pos = self.sa_value(row);
            if pos.is_multiple_of(rate) {
                self.sa_lookups.fetch_add(1, Ordering::Relaxed);
                return (pos + steps as usize, steps);
            }
            row = self.lf(row);
            steps += 1;
        }
    }

    /// Raw SA value of a row (sentinel row maps to the text length).
    fn sa_value(&self, row: usize) -> usize {
        if row == 0 {
            self.text_len()
        } else {
            self.sa[row - 1] as usize
        }
    }

    /// Snapshot of the operation counters.
    pub fn op_counts(&self) -> FmOpCounts {
        FmOpCounts {
            occ_queries: self.occ_queries.load(Ordering::Relaxed),
            sa_lookups: self.sa_lookups.load(Ordering::Relaxed),
        }
    }

    /// Resets the operation counters to zero.
    pub fn reset_op_counts(&self) {
        self.occ_queries.store(0, Ordering::Relaxed);
        self.sa_lookups.store(0, Ordering::Relaxed);
    }

    /// The BWT as characters (sentinel rendered as `$`), mainly for tests
    /// and documentation examples.
    pub fn bwt_string(&self) -> String {
        self.bwt
            .iter()
            .map(|&b| {
                if b == SENTINEL {
                    '$'
                } else {
                    Base::from_code(b).to_char()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn bwt_matches_paper_example() {
        // Paper Fig. 2: reference ATCTC, BWT = C$TTCA.
        let fm = FmIndex::build(&seq("ATCTC"));
        assert_eq!(fm.bwt_string(), "C$TTCA");
    }

    #[test]
    fn backward_search_matches_paper_example() {
        // Paper Fig. 2 walks query "TC" on ATCTC.
        let fm = FmIndex::build(&seq("ATCTC"));
        let iv = fm.backward_search(&seq("TC"), 0, 2);
        let mut hits: Vec<_> = fm.locate(iv).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 3]);
    }

    #[test]
    fn missing_pattern_yields_empty_interval() {
        let fm = FmIndex::build(&seq("AAAA"));
        assert!(fm.backward_search(&seq("G"), 0, 1).is_empty());
        assert!(fm.backward_search(&seq("AT"), 0, 2).is_empty());
    }

    #[test]
    fn agrees_with_suffix_array_on_random_text() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let text: PackedSeq = (0..800)
            .map(|_| Base::from_code(rng.gen_range(0..4)))
            .collect();
        let sa = SuffixArray::build(&text);
        let fm = FmIndex::from_suffix_array(&sa);
        for _ in 0..200 {
            let start = rng.gen_range(0..text.len() - 12);
            let len = rng.gen_range(1..=12);
            let mut pat = text.subseq(start, len);
            if rng.gen_bool(0.3) {
                // corrupt one base to also test misses
                let i = rng.gen_range(0..pat.len());
                let mut bases: Vec<Base> = pat.iter().collect();
                bases[i] = Base::from_code(bases[i].code().wrapping_add(1));
                pat = bases.into_iter().collect();
            }
            let mut fm_hits: Vec<_> = fm.locate(fm.backward_search(&pat, 0, pat.len())).collect();
            let mut sa_hits: Vec<_> = sa.positions(sa.interval_of(&pat, 0, pat.len())).collect();
            fm_hits.sort_unstable();
            sa_hits.sort_unstable();
            assert_eq!(fm_hits, sa_hits);
        }
    }

    #[test]
    fn occ_is_prefix_count() {
        let fm = FmIndex::build(&seq("ACGTACGTTGCA"));
        let bwt = fm.bwt_string();
        for c in Base::ALL {
            for i in 0..=bwt.len() {
                let expect = bwt[..i].chars().filter(|&x| x == c.to_char()).count();
                assert_eq!(fm.occ(c, i), expect, "c={c} i={i}");
            }
        }
    }

    #[test]
    fn sentinel_occ() {
        let fm = FmIndex::build(&seq("GATTACA"));
        let rank = fm.bwt_string().find('$').unwrap();
        assert_eq!(fm.occ_sentinel(rank), 0);
        assert_eq!(fm.occ_sentinel(rank + 1), 1);
        assert_eq!(fm.occ_sentinel(fm.text_len() + 1), 1);
    }

    #[test]
    fn op_counters_track_queries() {
        let fm = FmIndex::build(&seq("ACGTACGT"));
        fm.reset_op_counts();
        let iv = fm.backward_search(&seq("ACG"), 0, 3);
        assert_eq!(fm.op_counts().occ_queries, 6); // 2 per extension
        let _ = fm.locate(iv).count();
        assert_eq!(fm.op_counts().sa_lookups, 2);
        fm.reset_op_counts();
        assert_eq!(fm.op_counts(), FmOpCounts::default());
    }

    #[test]
    fn sampled_locate_matches_full_locate() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let text: PackedSeq = (0..500)
            .map(|_| Base::from_code(rng.gen_range(0..4)))
            .collect();
        let fm = FmIndex::build(&text);
        for rate in [1usize, 4, 16, 32] {
            for _ in 0..100 {
                let row = rng.gen_range(0..=text.len());
                let full = fm.locate(row..row + 1).next().unwrap();
                let (sampled, steps) = fm.locate_sampled(row, rate);
                assert_eq!(sampled, full, "row {row} rate {rate}");
                assert!((steps as usize) < rate.max(1), "walk bounded by rate");
            }
        }
    }

    #[test]
    fn lf_walks_one_position_left() {
        let text = seq("GATTACA");
        let fm = FmIndex::build(&text);
        // Find the row of the suffix at position 3 ("TACA"), LF to 2.
        for row in 0..=text.len() {
            let pos = fm.locate(row..row + 1).next().unwrap();
            if pos == 0 || pos == text.len() {
                continue;
            }
            let prev = fm.locate(fm.lf(row)..fm.lf(row) + 1).next().unwrap();
            assert_eq!(prev, pos - 1, "LF from row {row}");
        }
    }

    #[test]
    #[should_panic(expected = "undefined at the sentinel")]
    fn lf_at_sentinel_row_panics() {
        let fm = FmIndex::build(&seq("ACGT"));
        let sentinel_row = fm.bwt_string().find('$').unwrap();
        fm.lf(sentinel_row);
    }

    #[test]
    fn full_interval_covers_all_rows() {
        let fm = FmIndex::build(&seq("ACG"));
        assert_eq!(fm.full_interval(), 0..4);
        let all: Vec<_> = fm.locate(fm.full_interval()).collect();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn long_text_checkpoint_path() {
        let text = seq(&"ACGGTTA".repeat(100)); // 700 bases, > CHECKPOINT
        let fm = FmIndex::build(&text);
        let pat = seq("GGTTAAC");
        let hits: Vec<_> = fm.locate(fm.backward_search(&pat, 0, 7)).collect();
        assert_eq!(hits.len(), 99);
    }
}
