//! On-disk serialization of the suffix array ("index once, seed many
//! times" — the workflow every production aligner uses; BWA-MEM2 ships a
//! separate `index` subcommand for exactly this reason).
//!
//! The format is a small, versioned, little-endian binary container with a
//! checksum over the payload:
//!
//! ```text
//! magic   "CASA-SA1"           8 bytes
//! text_len                     u64 LE
//! packed text                  ceil(text_len / 4) bytes (2-bit bases)
//! sa values                    text_len × u32 LE
//! checksum (FNV-1a over all payload bytes)   u64 LE
//! ```

use std::fmt;
use std::io::{self, Read, Write};

use casa_genome::PackedSeq;

use crate::SuffixArray;

const MAGIC: &[u8; 8] = b"CASA-SA1";

/// Errors produced when loading a serialized index.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Missing or wrong magic/version header.
    BadMagic,
    /// Payload checksum mismatch (truncated or corrupted file).
    BadChecksum,
    /// Structurally invalid payload (e.g. SA values out of range).
    Corrupt(&'static str),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error loading index: {e}"),
            LoadError::BadMagic => f.write_str("not a CASA suffix-array file (bad magic)"),
            LoadError::BadChecksum => f.write_str("index file corrupted (checksum mismatch)"),
            LoadError::Corrupt(what) => write!(f, "index file corrupted ({what})"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> LoadError {
        LoadError::Io(e)
    }
}

fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Writes `sa` to `writer` in the container format above.
///
/// A mutable reference to a writer can be passed as well (`&mut w`).
///
/// # Errors
///
/// Propagates IO errors.
pub fn write_suffix_array<W: Write>(mut writer: W, sa: &SuffixArray) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    let len = sa.text().len() as u64;
    let len_bytes = len.to_le_bytes();
    checksum = fnv1a(checksum, &len_bytes);
    writer.write_all(&len_bytes)?;
    let text_bytes = sa.text().to_packed_bytes();
    checksum = fnv1a(checksum, &text_bytes);
    writer.write_all(&text_bytes)?;
    for &v in sa.sa() {
        let b = v.to_le_bytes();
        checksum = fnv1a(checksum, &b);
        writer.write_all(&b)?;
    }
    writer.write_all(&checksum.to_le_bytes())?;
    Ok(())
}

/// Reads a suffix array previously written by [`write_suffix_array`].
///
/// # Errors
///
/// Returns [`LoadError`] on IO failures, bad magic, checksum mismatch, or
/// structurally invalid content.
pub fn read_suffix_array<R: Read>(mut reader: R) -> Result<SuffixArray, LoadError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(LoadError::BadMagic);
    }
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    let mut len_bytes = [0u8; 8];
    reader.read_exact(&mut len_bytes)?;
    checksum = fnv1a(checksum, &len_bytes);
    let len = u64::from_le_bytes(len_bytes) as usize;

    let mut text_bytes = vec![0u8; len.div_ceil(4)];
    reader.read_exact(&mut text_bytes)?;
    checksum = fnv1a(checksum, &text_bytes);
    let text = PackedSeq::from_packed_bytes(&text_bytes, len)
        .ok_or(LoadError::Corrupt("short text payload"))?;

    let mut sa_bytes = vec![0u8; len * 4];
    reader.read_exact(&mut sa_bytes)?;
    checksum = fnv1a(checksum, &sa_bytes);
    let sa: Vec<u32> = sa_bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();

    let mut stored = [0u8; 8];
    reader.read_exact(&mut stored)?;
    if u64::from_le_bytes(stored) != checksum {
        return Err(LoadError::BadChecksum);
    }

    // Structural validation: a permutation of 0..len.
    let mut seen = vec![false; len];
    for &v in &sa {
        let v = v as usize;
        if v >= len || seen[v] {
            return Err(LoadError::Corrupt("suffix array is not a permutation"));
        }
        seen[v] = true;
    }
    Ok(SuffixArray::from_parts(text, sa))
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_genome::synth::{generate_reference, ReferenceProfile};

    fn sample() -> SuffixArray {
        let text = generate_reference(&ReferenceProfile::human_like(), 3_000, 55);
        SuffixArray::build(&text)
    }

    #[test]
    fn round_trips_in_memory() {
        let sa = sample();
        let mut buf = Vec::new();
        write_suffix_array(&mut buf, &sa).unwrap();
        let back = read_suffix_array(buf.as_slice()).unwrap();
        assert_eq!(back.text(), sa.text());
        assert_eq!(back.sa(), sa.sa());
        // And it still answers queries.
        let q = sa.text().subseq(100, 25);
        assert_eq!(back.interval_of(&q, 0, 25), sa.interval_of(&q, 0, 25));
    }

    #[test]
    fn round_trips_through_a_file() {
        let sa = sample();
        let path = std::env::temp_dir().join(format!("casa_sa_{}.bin", std::process::id()));
        write_suffix_array(std::fs::File::create(&path).unwrap(), &sa).unwrap();
        let back = read_suffix_array(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(back.sa(), sa.sa());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_suffix_array(&b"NOTCASA!rest"[..]).unwrap_err();
        assert!(matches!(err, LoadError::BadMagic));
    }

    #[test]
    fn detects_corruption() {
        let sa = sample();
        let mut buf = Vec::new();
        write_suffix_array(&mut buf, &sa).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        let err = read_suffix_array(buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, LoadError::BadChecksum | LoadError::Corrupt(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn detects_truncation() {
        let sa = sample();
        let mut buf = Vec::new();
        write_suffix_array(&mut buf, &sa).unwrap();
        buf.truncate(buf.len() - 9);
        assert!(matches!(
            read_suffix_array(buf.as_slice()).unwrap_err(),
            LoadError::Io(_)
        ));
    }

    #[test]
    fn empty_text_round_trips() {
        let sa = SuffixArray::build(&PackedSeq::new());
        let mut buf = Vec::new();
        write_suffix_array(&mut buf, &sa).unwrap();
        let back = read_suffix_array(buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }
}
