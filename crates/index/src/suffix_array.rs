//! Suffix array over a DNA sequence, with interval search and
//! longest-match queries.

use std::ops::Range;

use casa_genome::shared::{SharedSlice, SliceStore};
use casa_genome::PackedSeq;

use crate::sais::suffix_array_u32;

/// A suffix array over a [`PackedSeq`], the golden lookup structure of this
/// reproduction.
///
/// Construction uses the linear-time SA-IS algorithm ([`crate::sais`]).
/// Queries return **SA intervals**: half-open ranges of suffix-array ranks
/// whose suffixes share the queried prefix. The interval size is the
/// occurrence count and [`SuffixArray::positions`] maps it to text
/// coordinates.
///
/// ```
/// use casa_genome::PackedSeq;
/// use casa_index::SuffixArray;
///
/// let text = PackedSeq::from_ascii(b"GATTACAGATTACA")?;
/// let sa = SuffixArray::build(&text);
/// let q = PackedSeq::from_ascii(b"ATTA")?;
/// let interval = sa.interval_of(&q, 0, q.len());
/// let mut hits: Vec<usize> = sa.positions(interval).collect();
/// hits.sort_unstable();
/// assert_eq!(hits, vec![1, 8]);
/// # Ok::<(), casa_genome::ParseBaseError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SuffixArray {
    text: PackedSeq,
    sa: SliceStore<u32>,
}

impl SuffixArray {
    /// Builds the suffix array of `text` in linear time.
    ///
    /// # Panics
    ///
    /// Panics if `text.len() >= u32::MAX`.
    pub fn build(text: &PackedSeq) -> SuffixArray {
        let codes: Vec<u32> = text.iter().map(|b| u32::from(b.code())).collect();
        let sa = suffix_array_u32(&codes, 4);
        SuffixArray {
            text: text.clone(),
            sa: sa.into(),
        }
    }

    /// Reassembles a suffix array from its parts (the deserialization
    /// path; see [`crate::serial`]).
    ///
    /// # Panics
    ///
    /// Panics if `sa.len() != text.len()`. Content validity (being the
    /// sorted suffix order) is the caller's responsibility; the serial
    /// reader checks it is at least a permutation.
    pub fn from_parts(text: PackedSeq, sa: Vec<u32>) -> SuffixArray {
        assert_eq!(sa.len(), text.len(), "suffix array length must match text");
        SuffixArray {
            text,
            sa: sa.into(),
        }
    }

    /// Like [`SuffixArray::from_parts`] but over shared (e.g. mmap-backed)
    /// rank storage — the zero-copy image-loading path.
    ///
    /// # Panics
    ///
    /// Panics if `sa.as_slice().len() != text.len()`.
    pub fn from_shared(text: PackedSeq, sa: SharedSlice<u32>) -> SuffixArray {
        assert_eq!(
            sa.as_slice().len(),
            text.len(),
            "suffix array length must match text"
        );
        SuffixArray {
            text,
            sa: sa.into(),
        }
    }

    /// The indexed text.
    pub fn text(&self) -> &PackedSeq {
        &self.text
    }

    /// Number of suffixes (== text length).
    pub fn len(&self) -> usize {
        self.sa.len()
    }

    /// Whether the text is empty.
    pub fn is_empty(&self) -> bool {
        self.sa.is_empty()
    }

    /// The raw suffix array: `sa()[rank]` is the text position of the
    /// `rank`-th smallest suffix.
    pub fn sa(&self) -> &[u32] {
        self.sa.as_slice()
    }

    /// Whether the ranks are backed by shared (mapped) storage.
    pub fn is_shared(&self) -> bool {
        self.sa.is_shared()
    }

    /// Text positions of the suffixes in an SA interval.
    pub fn positions(&self, interval: Range<usize>) -> impl Iterator<Item = usize> + '_ {
        self.sa[interval].iter().map(|&p| p as usize)
    }

    /// SA interval of the suffixes starting with `query[from..from+len]`.
    ///
    /// Returns an empty range if the pattern does not occur.
    ///
    /// # Panics
    ///
    /// Panics if `from + len > query.len()`.
    pub fn interval_of(&self, query: &PackedSeq, from: usize, len: usize) -> Range<usize> {
        assert!(from + len <= query.len(), "pattern range out of bounds");
        let mut interval = 0..self.sa.len();
        for i in 0..len {
            interval = self.refine(interval, i, query.base(from + i).code());
            if interval.is_empty() {
                return interval;
            }
        }
        interval
    }

    /// Longest prefix of `query[from..]` that occurs in the text, together
    /// with its SA interval.
    ///
    /// This is the primitive behind the uni-directional RMEM search: the
    /// returned length is the right-maximal exact-match length at pivot
    /// `from`, and the interval enumerates its hits.
    ///
    /// Returns `(0, 0..len)` when even the first base does not occur.
    ///
    /// # Panics
    ///
    /// Panics if `from > query.len()`.
    pub fn longest_match(&self, query: &PackedSeq, from: usize) -> (usize, Range<usize>) {
        assert!(from <= query.len(), "pivot out of bounds");
        let mut interval = 0..self.sa.len();
        let mut matched = 0;
        while from + matched < query.len() {
            let next = self.refine(interval.clone(), matched, query.base(from + matched).code());
            if next.is_empty() {
                break;
            }
            interval = next;
            matched += 1;
        }
        (matched, interval)
    }

    /// Narrows `interval` (whose suffixes share a prefix of length `depth`)
    /// to those whose next character equals `code`.
    fn refine(&self, interval: Range<usize>, depth: usize, code: u8) -> Range<usize> {
        // Binary search the first suffix whose char at `depth` is >= code,
        // and the first whose char is > code. Suffixes shorter than depth+1
        // (i.e. hitting the sentinel) sort before every code.
        let char_at = |rank: usize| -> i8 {
            let pos = self.sa[rank] as usize + depth;
            if pos >= self.text.len() {
                -1
            } else {
                self.text.base(pos).code() as i8
            }
        };
        let lo = partition_point_in(&interval, |rank| char_at(rank) < code as i8);
        let hi = partition_point_in(&interval, |rank| char_at(rank) <= code as i8);
        lo..hi
    }
}

/// `partition_point` over an arbitrary rank range.
fn partition_point_in(range: &Range<usize>, pred: impl Fn(usize) -> bool) -> usize {
    let mut lo = range.start;
    let mut hi = range.end;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn suffixes_are_sorted() {
        let t = seq("GATTACAGATTACACCGGTT");
        let sa = SuffixArray::build(&t);
        for w in sa.sa().windows(2) {
            let a = t.subseq(w[0] as usize, t.len() - w[0] as usize).to_string();
            let b = t.subseq(w[1] as usize, t.len() - w[1] as usize).to_string();
            assert!(a < b, "{a} !< {b}");
        }
    }

    #[test]
    fn interval_of_finds_all_occurrences() {
        let t = seq("ACGTACGTACGT");
        let sa = SuffixArray::build(&t);
        let q = seq("ACGT");
        let mut hits: Vec<_> = sa.positions(sa.interval_of(&q, 0, 4)).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 4, 8]);
    }

    #[test]
    fn interval_of_missing_pattern_is_empty() {
        let t = seq("AAAACCCC");
        let sa = SuffixArray::build(&t);
        let q = seq("GG");
        assert!(sa.interval_of(&q, 0, 2).is_empty());
    }

    #[test]
    fn interval_of_respects_from_offset() {
        let t = seq("TTTTGGGG");
        let sa = SuffixArray::build(&t);
        let q = seq("AAGG");
        assert_eq!(sa.interval_of(&q, 2, 2).len(), 3); // "GG" occurs 3x
    }

    #[test]
    fn longest_match_full_and_partial() {
        let t = seq("GATTACA");
        let sa = SuffixArray::build(&t);
        // whole read present
        let (len, iv) = sa.longest_match(&seq("TTAC"), 0);
        assert_eq!(len, 4);
        assert_eq!(sa.positions(iv).collect::<Vec<_>>(), vec![2]);
        // prefix present, then diverges: "TTAG" matches "TTA"
        let (len, _) = sa.longest_match(&seq("TTAG"), 0);
        assert_eq!(len, 3);
        // nothing matches at all — impossible over ACGT of this text?
        // 'C' occurs, so use pivot beyond: empty suffix
        let q = seq("A");
        assert_eq!(sa.longest_match(&q, 1).0, 0);
    }

    #[test]
    fn longest_match_agrees_with_brute_force() {
        let t = seq("ACGGTTACGATCGATCGGATCGTTAGCAACGGTT");
        let sa = SuffixArray::build(&t);
        let q = seq("TTACGATCAAACGGTTXXX".replace('X', "A").as_str());
        for from in 0..q.len() {
            let (len, iv) = sa.longest_match(&q, from);
            // brute force longest match
            let mut best = 0;
            for start in 0..t.len() {
                best = best.max(t.common_prefix_len(start, &q, from).min(q.len() - from));
            }
            assert_eq!(len, best, "pivot {from}");
            if len > 0 {
                for pos in sa.positions(iv) {
                    assert!(t.matches(pos, &q, from, len));
                }
            }
        }
    }

    #[test]
    fn empty_text() {
        let sa = SuffixArray::build(&PackedSeq::new());
        assert!(sa.is_empty());
        assert_eq!(sa.longest_match(&seq("ACG"), 0).0, 0);
    }
}
