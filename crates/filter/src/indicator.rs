//! Search indicators: the per-k-mer metadata stored in the pre-seeding
//! filter's data array.
//!
//! A *search indicator* (paper §3) combines, for all occurrences of a k-mer
//! in the current reference partition:
//!
//! * the **start positions** — a one-hot mask over `x mod s` (s = CAM entry
//!   stride), telling the computing CAM how many wildcard bases to pad;
//! * the **group indicator** — a one-hot mask over CAM groups, so only
//!   groups that contain the k-mer are powered during the search.

use casa_cam::EntryMask;
use casa_genome::shared::SharedSlice;
use serde::{Deserialize, Serialize};

/// Aggregated search indicator of one k-mer in one reference partition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SearchIndicator {
    /// One-hot over in-entry start offsets: bit `p` set means some
    /// occurrence starts at `x` with `x mod stride == p`.
    pub start_mask: u64,
    /// One-hot over CAM groups containing the k-mer.
    pub groups: u32,
}

impl SearchIndicator {
    /// The empty indicator (k-mer absent from the partition).
    pub const EMPTY: SearchIndicator = SearchIndicator {
        start_mask: 0,
        groups: 0,
    };

    /// Indicator of a single occurrence at partition offset `x`.
    ///
    /// # Panics
    ///
    /// Panics if `stride > 64` or `groups > 32` (hardware mask widths; the
    /// paper uses 40 and 20).
    pub fn of_occurrence(x: usize, stride: usize, groups: usize) -> SearchIndicator {
        assert!(stride <= 64, "stride must fit a 64-bit start mask");
        assert!(groups <= 32, "group count must fit a 32-bit indicator");
        SearchIndicator {
            start_mask: 1u64 << (x % stride),
            groups: 1u32 << ((x / stride) % groups),
        }
    }

    /// Whether the k-mer has no occurrence (filterable pivot).
    pub fn is_empty(&self) -> bool {
        self.start_mask == 0
    }

    /// ORs another indicator into this one (same k-mer, another
    /// occurrence).
    pub fn merge(&mut self, other: SearchIndicator) {
        self.start_mask |= other.start_mask;
        self.groups |= other.groups;
    }

    /// Number of distinct in-entry start offsets (padded searches the
    /// computing CAM will issue).
    pub fn start_count(&self) -> u32 {
        self.start_mask.count_ones()
    }

    /// Number of groups that must be powered.
    pub fn group_count(&self) -> u32 {
        self.groups.count_ones()
    }

    /// Rebuilds `out` as the union of the group masks this indicator
    /// powers: `out = ⋃ { group_masks[g] : bit g of groups set }`.
    ///
    /// `group_masks[g]` must be the precomputed [`EntryMask`] of group `g`
    /// (all masks the same length); the union runs through the
    /// word-vectorized [`EntryMask::union_with`] kernel. Group bits at or
    /// above `group_masks.len()` are ignored (an indicator can name more
    /// groups than a small partition realizes). This is the enable-mask
    /// construction of the seeding hot path (§3 CAM grouping).
    ///
    /// # Panics
    ///
    /// Panics if the mask lengths differ.
    pub fn enabled_mask_into(&self, group_masks: &[EntryMask], out: &mut EntryMask) {
        let len = group_masks.first().map_or(0, EntryMask::len);
        out.reset(len);
        let mut groups = self.groups;
        while groups != 0 {
            let g = groups.trailing_zeros() as usize;
            groups &= groups - 1;
            if let Some(mask) = group_masks.get(g) {
                out.union_with(mask);
            }
        }
    }

    /// The paper's shifted-AND alignment test (§4.2, Analysis 2): whether a
    /// k-mer with indicator `self` *may* be aligned with a k-mer with
    /// indicator `other` that lies `read_distance` bases later on the read.
    ///
    /// Two hits at reference offsets `a` (self) and `b` (other) are aligned
    /// iff `b − a == read_distance`; a necessary condition is
    /// `(b − a) mod s == read_distance mod s`, checked here on the start
    /// masks alone. The test over-approximates (may say "aligned" for
    /// unaligned pairs) but never under-approximates, so discarding pivots
    /// on a `false` result is always safe.
    pub fn may_align_with(
        &self,
        other: SearchIndicator,
        read_distance: usize,
        stride: usize,
    ) -> bool {
        assert!(stride <= 64, "stride must fit a 64-bit start mask");
        if self.is_empty() || other.is_empty() {
            return false;
        }
        let d = read_distance % stride;
        // Rotate other's mask right by d: bit (a) of self aligns with bit
        // ((a + d) mod s) of other.
        let rotated = rotate_right_mod(other.start_mask, d, stride);
        self.start_mask & rotated != 0
    }
}

/// Borrowed-or-owned storage for a data array of [`SearchIndicator`]s.
///
/// The in-process build owns a `Vec<SearchIndicator>`. A filter loaded
/// from an index image instead shares the image's `u64` words, **two per
/// record**: `words[2i]` is the start mask and the low 32 bits of
/// `words[2i + 1]` are the group mask (the canonical wire encoding —
/// `SearchIndicator` itself has no stable layout). [`IndicatorStore::get`]
/// decodes on access, which costs nothing measurable next to the data-SRAM
/// read it models; mutation ([`IndicatorStore::to_mut`]) decodes the whole
/// array once, copy-on-write.
#[derive(Clone, Debug)]
pub enum IndicatorStore {
    /// Heap-owned records.
    Owned(Vec<SearchIndicator>),
    /// Image-backed words, two per record.
    Shared(SharedSlice<u64>),
}

impl IndicatorStore {
    /// Number of records.
    pub fn len(&self) -> usize {
        match self {
            IndicatorStore::Owned(v) => v.len(),
            IndicatorStore::Shared(s) => s.as_slice().len() / 2,
        }
    }

    /// Whether the store has no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the records are backed by shared (mapped) storage.
    pub fn is_shared(&self) -> bool {
        matches!(self, IndicatorStore::Shared(_))
    }

    /// The record at `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= len()`.
    pub fn get(&self, row: usize) -> SearchIndicator {
        match self {
            IndicatorStore::Owned(v) => v[row],
            IndicatorStore::Shared(s) => {
                let words = s.as_slice();
                SearchIndicator {
                    start_mask: words[2 * row],
                    groups: words[2 * row + 1] as u32,
                }
            }
        }
    }

    /// Encodes the records as wire words (two `u64` per record), the form
    /// the image writer persists.
    pub fn to_words(&self) -> Vec<u64> {
        match self {
            IndicatorStore::Owned(v) => {
                let mut words = Vec::with_capacity(v.len() * 2);
                for si in v {
                    words.push(si.start_mask);
                    words.push(u64::from(si.groups));
                }
                words
            }
            IndicatorStore::Shared(s) => s.as_slice().to_vec(),
        }
    }

    /// Mutable access, decoding shared storage into owned records first
    /// (copy-on-write).
    pub fn to_mut(&mut self) -> &mut Vec<SearchIndicator> {
        if let IndicatorStore::Shared(_) = self {
            let decoded: Vec<SearchIndicator> = (0..self.len()).map(|i| self.get(i)).collect();
            *self = IndicatorStore::Owned(decoded);
        }
        match self {
            IndicatorStore::Owned(v) => v,
            IndicatorStore::Shared(_) => unreachable!("shared store was just converted to owned"),
        }
    }
}

impl From<Vec<SearchIndicator>> for IndicatorStore {
    fn from(v: Vec<SearchIndicator>) -> Self {
        IndicatorStore::Owned(v)
    }
}

impl From<SharedSlice<u64>> for IndicatorStore {
    fn from(s: SharedSlice<u64>) -> Self {
        IndicatorStore::Shared(s)
    }
}

/// Rotates the low `width` bits of `mask` right by `by`.
fn rotate_right_mod(mask: u64, by: usize, width: usize) -> u64 {
    debug_assert!(by < width && width <= 64);
    let keep = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mask = mask & keep;
    if by == 0 {
        mask
    } else {
        ((mask >> by) | (mask << (width - by))) & keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indicator_store_shared_decodes_and_detaches() {
        use std::sync::Arc;
        let records = vec![
            SearchIndicator {
                start_mask: 0b1010,
                groups: 0b11,
            },
            SearchIndicator::EMPTY,
            SearchIndicator {
                start_mask: u64::MAX,
                groups: u32::MAX,
            },
        ];
        let owned: IndicatorStore = records.clone().into();
        let words = owned.to_words();
        assert_eq!(words.len(), 6);
        let shared: IndicatorStore =
            SharedSlice::new(Arc::new(words.clone()) as Arc<dyn casa_genome::SliceView<u64>>)
                .into();
        assert!(shared.is_shared());
        assert_eq!(shared.len(), 3);
        for (i, &r) in records.iter().enumerate() {
            assert_eq!(shared.get(i), r, "row {i}");
        }
        assert_eq!(shared.to_words(), words);
        let mut detached = shared.clone();
        detached.to_mut()[1].start_mask = 7;
        assert!(!detached.is_shared());
        assert_eq!(shared.get(1), SearchIndicator::EMPTY);
        assert_eq!(detached.get(1).start_mask, 7);
    }

    #[test]
    fn occurrence_sets_expected_bits() {
        let si = SearchIndicator::of_occurrence(87, 40, 20);
        assert_eq!(si.start_mask, 1 << 7); // 87 mod 40
        assert_eq!(si.groups, 1 << 2); // entry 2, group 2
        assert!(!si.is_empty());
    }

    #[test]
    fn merge_unions_masks() {
        let mut a = SearchIndicator::of_occurrence(0, 40, 20);
        a.merge(SearchIndicator::of_occurrence(41, 40, 20));
        assert_eq!(a.start_count(), 2);
        assert_eq!(a.group_count(), 2);
    }

    #[test]
    fn empty_is_empty() {
        assert!(SearchIndicator::EMPTY.is_empty());
        assert_eq!(SearchIndicator::default(), SearchIndicator::EMPTY);
    }

    #[test]
    fn aligned_pair_passes_the_test() {
        // Occurrences at ref 100 and 112, read distance 12: truly aligned.
        let s = 40;
        let a = SearchIndicator::of_occurrence(100, s, 20);
        let b = SearchIndicator::of_occurrence(112, s, 20);
        assert!(a.may_align_with(b, 12, s));
    }

    #[test]
    fn unaligned_pair_with_distinct_residues_fails() {
        // Paper Fig. 10 example 2: entry size 5, ATTG and TCAT both start
        // at in-entry offset 4 (dh mod 5 == 0) but are 4 apart on the read
        // (dr mod 5 == 4) -> unaligned, pivot disposable.
        let s = 5;
        let a = SearchIndicator::of_occurrence(4, s, 4);
        let b = SearchIndicator::of_occurrence(9, s, 4); // also offset 4
        assert!(!a.may_align_with(b, 4, s));
        assert!(a.may_align_with(b, 5, s)); // distance 0 mod 5 would align
    }

    #[test]
    fn alignment_is_overapproximate_not_underapproximate() {
        // Hits at 3 and 3+s+d have residue distance d even though true
        // distance differs from read distance d: test must say aligned.
        let s = 8;
        let a = SearchIndicator::of_occurrence(3, s, 4);
        let b = SearchIndicator::of_occurrence(3 + s + 2, s, 4);
        assert!(a.may_align_with(b, 2, s));
    }

    #[test]
    fn empty_never_aligns() {
        let a = SearchIndicator::of_occurrence(0, 40, 20);
        assert!(!a.may_align_with(SearchIndicator::EMPTY, 0, 40));
        assert!(!SearchIndicator::EMPTY.may_align_with(a, 0, 40));
    }

    #[test]
    fn rotate_handles_full_width() {
        assert_eq!(rotate_right_mod(0b1, 1, 4), 0b1000);
        assert_eq!(rotate_right_mod(0b1000, 3, 4), 0b1);
        assert_eq!(rotate_right_mod(u64::MAX, 0, 64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn oversized_stride_rejected() {
        SearchIndicator::of_occurrence(0, 65, 20);
    }

    #[test]
    fn enabled_mask_unions_exactly_the_set_groups() {
        // 3 groups over 10 entries, round-robin.
        let masks: Vec<EntryMask> = (0..3)
            .map(|g| {
                let mut m = EntryMask::new(10);
                for e in 0..10 {
                    if e % 3 == g {
                        m.set(e);
                    }
                }
                m
            })
            .collect();
        let si = SearchIndicator {
            start_mask: 0b1,
            groups: 0b101,
        };
        let mut out = EntryMask::new(1); // wrong size: must be reset
        si.enabled_mask_into(&masks, &mut out);
        let expect: Vec<usize> = (0..10).filter(|e| e % 3 != 1).collect();
        assert_eq!(out.iter_ones().collect::<Vec<_>>(), expect);
        // Empty indicator -> empty mask of the right length.
        SearchIndicator::EMPTY.enabled_mask_into(&masks, &mut out);
        assert_eq!(out.count(), 0);
        assert_eq!(out.len(), 10);
    }
}
