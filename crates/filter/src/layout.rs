//! Physical layout of the tag array (paper §5).
//!
//! "Rather than naively using an 18-bit word CAM array to store 9-mers,
//! which would inflate peripheral area, CASA stores four 9-mers, each
//! striding by 1M addresses, in one CAM entry. This strategy requires a
//! 72-bit word CAM array, but it reduces the area of the tag array by
//! 2.62× due to the shared sense amplifiers among the four 9-mers, at the
//! expense of search energy."
//!
//! This module models that packing: the logical→physical row mapping, the
//! physical rows a range-gated search activates, and the area trade-off.

use serde::{Deserialize, Serialize};

/// The §5 tag-array packing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagLayout {
    /// Logical subwords per physical entry (paper: 4).
    pub subwords_per_entry: usize,
    /// Address stride between subwords of one entry (paper: 1M — a
    /// quarter of the 4M logical rows).
    pub address_gap: usize,
}

impl TagLayout {
    /// The paper's layout for a tag array of `logical_rows` entries: 4
    /// subwords strided by a quarter of the address space.
    pub fn paper(logical_rows: usize) -> TagLayout {
        TagLayout {
            subwords_per_entry: 4,
            address_gap: logical_rows.div_ceil(4).max(1),
        }
    }

    /// Physical row and subword of a logical row.
    ///
    /// # Panics
    ///
    /// Panics if the logical row lies beyond
    /// `subwords_per_entry × address_gap`.
    pub fn physical_of(&self, logical: usize) -> (usize, usize) {
        let sub = logical / self.address_gap;
        assert!(
            sub < self.subwords_per_entry,
            "logical row {logical} beyond the layout's {}x{} capacity",
            self.subwords_per_entry,
            self.address_gap
        );
        (logical % self.address_gap, sub)
    }

    /// Number of distinct physical rows a contiguous logical range
    /// activates (the mini-index range decoder powers exactly these).
    /// Because the bucket ranges delivered by the mini index are far
    /// smaller than the address gap, this is normally the range length
    /// itself — the packing saves *area*, not search energy, exactly as
    /// §5 concedes.
    pub fn physical_rows(&self, range_len: usize) -> usize {
        range_len.min(self.address_gap)
    }

    /// Number of physical entries backing the whole array.
    pub fn physical_entries(&self) -> usize {
        self.address_gap
    }

    /// Modelled area ratio of the naive one-9-mer-per-row layout over this
    /// packed layout. Cell area scales with bits; row periphery (sense
    /// amplifiers, match-line logic) scales with rows — sharing it across
    /// four subwords is where the paper's 2.62× comes from.
    pub fn area_ratio_vs_naive(&self, logical_rows: usize, subword_bits: usize) -> f64 {
        let packed_rows = self.physical_entries() as f64;
        let packed_bits = (self.subwords_per_entry * subword_bits) as f64;
        let naive_rows = logical_rows as f64;
        let naive_bits = subword_bits as f64;
        let area = |rows: f64, bits: f64| rows * bits * CELL_AREA + rows * ROW_PERIPHERY;
        area(naive_rows, naive_bits) / area(packed_rows, packed_bits)
    }
}

/// Relative cell area per bit (fitting constant).
const CELL_AREA: f64 = 1.0;
/// Relative per-row periphery area (sense amps, ML logic). Fitted so the
/// paper's 4×18-bit→72-bit packing lands at its published 2.62× saving.
const ROW_PERIPHERY: f64 = 82.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_reproduces_2_62x_area_saving() {
        // 4M logical 9-mers (18 bits each) on a 4 Mbase partition.
        let layout = TagLayout::paper(4 << 20);
        let ratio = layout.area_ratio_vs_naive(4 << 20, 18);
        assert!(
            (ratio - 2.62).abs() < 0.15,
            "area ratio {ratio:.2} should be near the paper's 2.62x"
        );
    }

    #[test]
    fn mapping_is_a_bijection() {
        let layout = TagLayout::paper(40);
        let mut seen = std::collections::HashSet::new();
        for logical in 0..40 {
            let (row, sub) = layout.physical_of(logical);
            assert!(row < layout.address_gap);
            assert!(sub < 4);
            assert!(seen.insert((row, sub)), "collision at logical {logical}");
        }
    }

    #[test]
    fn small_ranges_activate_one_physical_row_each() {
        let layout = TagLayout::paper(4 << 20);
        // Mini-index buckets are tiny relative to the 1M gap.
        assert_eq!(layout.physical_rows(1), 1);
        assert_eq!(layout.physical_rows(17), 17);
        // Degenerate huge range saturates at the entry count.
        assert_eq!(layout.physical_rows(10 << 20), layout.physical_entries());
    }

    #[test]
    #[should_panic(expected = "beyond the layout")]
    fn out_of_capacity_logical_row_panics() {
        TagLayout::paper(8).physical_of(100);
    }

    #[test]
    fn gap_rounds_up_for_odd_sizes() {
        let layout = TagLayout::paper(10);
        assert_eq!(layout.address_gap, 3);
        // All 10 logical rows must map.
        for logical in 0..10 {
            let _ = layout.physical_of(logical);
        }
    }
}
