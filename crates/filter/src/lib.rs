//! Pre-seeding filter for the CASA reproduction (paper §4.1, Fig. 8).
//!
//! The filter answers, for any k-mer on a read, "does it occur in the
//! current reference partition, and if so at which in-entry offsets and in
//! which computing-CAM groups?" — in three pipelined stages (mini index
//! SRAM → range-gated tag CAM → data SRAM). Pivots whose k-mer misses are
//! discarded before any SMEM computation, which is the paper's headline
//! 98.9 % pivot reduction ("table" bar of Fig. 15); the indicators feed the
//! alignment analysis that pushes it to 99.9 % ("table+analysis").
//!
//! # Example
//!
//! ```
//! use casa_genome::PackedSeq;
//! use casa_filter::{FilterConfig, PreSeedingFilter};
//!
//! let partition = PackedSeq::from_ascii(&b"GATTACA".repeat(10))?;
//! let mut filter = PreSeedingFilter::build(&partition, FilterConfig::small(7, 3));
//! let read = PackedSeq::from_ascii(b"TTACAGATTACA")?;
//! // k-mer at pivot 0 ("TTACAGA") exists; its indicator drives the CAM.
//! let si = filter.lookup(&read, 0).unwrap();
//! assert!(si.start_count() >= 1 && si.group_count() >= 1);
//! # Ok::<(), casa_genome::ParseBaseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bloom;
mod filter;
mod indicator;
mod layout;

pub use bloom::BloomFilter;
pub use filter::{
    FilterConfig, FilterFaultModel, FilterFaultReport, FilterStats, PreSeedingFilter,
};
pub use indicator::{IndicatorStore, SearchIndicator};
pub use layout::TagLayout;
