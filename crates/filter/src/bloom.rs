//! A Bloom filter over k-mer codes.
//!
//! GenCache (paper §2.2, §4.1) filters k-mers with a Bloom filter, which —
//! unlike CASA's enumerated pre-seeding filter — admits *false positives*:
//! pivots that pass the filter but have no hit still trigger (wasted) SMEM
//! computation. This module provides the substrate for the GenCache
//! baseline model and lets tests quantify exactly that trade-off.

use serde::{Deserialize, Serialize};

/// A fixed-size Bloom filter keyed by 64-bit k-mer codes.
///
/// ```
/// use casa_filter::BloomFilter;
///
/// let mut bloom = BloomFilter::new(1 << 12, 3);
/// bloom.insert(0x1B); // some 19-mer code
/// assert!(bloom.contains(0x1B)); // never a false negative
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomFilter {
    words: Vec<u64>,
    bits: u64,
    hashes: u32,
}

impl BloomFilter {
    /// Creates a filter with `bits` bits and `hashes` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `hashes == 0`.
    pub fn new(bits: usize, hashes: u32) -> BloomFilter {
        assert!(bits > 0, "need at least one bit");
        assert!(hashes > 0, "need at least one hash");
        BloomFilter {
            words: vec![0; bits.div_ceil(64)],
            bits: bits as u64,
            hashes,
        }
    }

    /// Sizes a filter for `items` insertions at roughly the given bits per
    /// item (10 bits/item with 3 hashes gives ~1–2 % false positives).
    pub fn with_capacity(items: usize, bits_per_item: usize, hashes: u32) -> BloomFilter {
        BloomFilter::new((items * bits_per_item).max(64), hashes)
    }

    /// Inserts a k-mer code.
    pub fn insert(&mut self, code: u64) {
        for i in 0..self.hashes {
            let bit = self.bit_of(code, i);
            self.words[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Whether the code *may* have been inserted (false positives
    /// possible; false negatives impossible).
    pub fn contains(&self, code: u64) -> bool {
        (0..self.hashes).all(|i| {
            let bit = self.bit_of(code, i);
            self.words[(bit / 64) as usize] >> (bit % 64) & 1 == 1
        })
    }

    /// Fraction of bits set (a load proxy; false-positive rate ≈
    /// `fill^hashes`).
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.words.iter().map(|w| u64::from(w.count_ones())).sum();
        set as f64 / self.bits as f64
    }

    /// Filter size in bytes.
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }

    fn bit_of(&self, code: u64, i: u32) -> u64 {
        // SplitMix64-style mixing with a per-hash stream.
        let mut x = code ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(i) + 1));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x % self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bloom = BloomFilter::new(1 << 14, 3);
        let items: Vec<u64> = (0..500).map(|i| i * 2654435761).collect();
        for &x in &items {
            bloom.insert(x);
        }
        for &x in &items {
            assert!(bloom.contains(x), "inserted {x} must be found");
        }
    }

    #[test]
    fn false_positive_rate_is_bounded() {
        let n = 2_000;
        let mut bloom = BloomFilter::with_capacity(n, 10, 3);
        for i in 0..n as u64 {
            bloom.insert(i.wrapping_mul(0x9E3779B97F4A7C15));
        }
        let mut fp = 0;
        let probes = 20_000;
        for i in 0..probes as u64 {
            // Disjoint key space from the inserted set.
            if bloom.contains(i.wrapping_mul(0x6C62272E07BB0142) | (1 << 63)) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.05, "false positive rate {rate} too high");
        assert!(bloom.fill_ratio() < 0.5);
    }

    #[test]
    fn empty_filter_contains_nothing_inserted() {
        let bloom = BloomFilter::new(1024, 2);
        let hits = (0..1000u64).filter(|&x| bloom.contains(x)).count();
        assert_eq!(hits, 0);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_rejected() {
        BloomFilter::new(0, 1);
    }

    #[test]
    fn bytes_reflects_allocation() {
        assert_eq!(BloomFilter::new(1 << 10, 2).bytes(), 128);
    }
}
