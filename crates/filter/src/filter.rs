//! The pre-seeding filter (paper §4.1, Fig. 8).
//!
//! A cache-like, three-stage structure built offline for each reference
//! partition:
//!
//! 1. **mini index table** (SRAM, `4^m` entries) — addressed by the first
//!    `m` bases of the k-mer; yields start/end pointers into the tag array
//!    for the bucket of k-mers sharing that m-mer prefix;
//! 2. **tag array** (CAM, one entry per k-mer occurrence, sorted) — stores
//!    the remaining `(k−m)`-mer; only the rows between the pointers are
//!    powered (range power gating);
//! 3. **data array** (SRAM, parallel to the tag array) — stores each
//!    occurrence's [`SearchIndicator`]; rows behind matching tag entries
//!    are read and OR-ed.
//!
//! Because every k-mer of the partition is enumerated, the filter has **no
//! false positives and no misses** (unlike GenCache's bloom filter), and
//! its footprint is `O(4^m + n)` — linear in `k`, which is what lets CASA
//! afford k = 19 where a dense index would need 4^19 entries.

use casa_genome::mix::{coin, site_hash};
use casa_genome::shared::{SharedSlice, SliceStore};
use casa_genome::PackedSeq;
use serde::{Deserialize, Serialize};

use crate::{IndicatorStore, SearchIndicator, TagLayout};

/// Filter geometry. Defaults are the paper's: k = 19, m = 10, 40-base CAM
/// entries, 20 CAM groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterConfig {
    /// Full k-mer size looked up in the filter.
    pub k: usize,
    /// Prefix size handled by the mini index table.
    pub m: usize,
    /// Computing-CAM entry size in bases (start-mask width).
    pub stride: usize,
    /// Number of computing-CAM groups (group-indicator width).
    pub groups: usize,
}

impl Default for FilterConfig {
    fn default() -> FilterConfig {
        FilterConfig {
            k: 19,
            m: 10,
            stride: 40,
            groups: 20,
        }
    }
}

impl FilterConfig {
    /// Validates and creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `m >= k`, `k > 32`, `stride > 64`, or `groups > 32`.
    pub fn new(k: usize, m: usize, stride: usize, groups: usize) -> FilterConfig {
        let cfg = FilterConfig {
            k,
            m,
            stride,
            groups,
        };
        cfg.validate();
        cfg
    }

    fn validate(&self) {
        assert!(self.m >= 1 && self.m < self.k, "need 1 <= m < k");
        assert!(self.k <= 32, "k must fit a 64-bit code");
        assert!(self.stride <= 64, "stride must fit the start mask");
        assert!(
            self.groups >= 1 && self.groups <= 32,
            "groups must fit the indicator"
        );
    }

    /// A small geometry for unit tests and examples.
    pub fn small(k: usize, m: usize) -> FilterConfig {
        FilterConfig::new(k, m, 8, 4)
    }
}

/// Activity counters of the filter (inputs to the energy model).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    /// k-mer lookups issued.
    pub lookups: u64,
    /// Mini index table reads (one per lookup).
    pub mini_index_reads: u64,
    /// Tag-CAM searches issued (one per lookup with a non-empty bucket).
    pub tag_searches: u64,
    /// Tag-CAM logical rows powered across all searches (range gating
    /// makes this the bucket size, not the array size).
    pub tag_rows_enabled: u64,
    /// Physical 72-bit rows activated under the §5 four-subword packing
    /// (what the energy model charges).
    pub tag_physical_rows: u64,
    /// Data-array rows read (one per matching tag row).
    pub data_reads: u64,
    /// Lookups that found the k-mer.
    pub hits: u64,
}

impl FilterStats {
    /// Adds another snapshot into this one.
    pub fn merge(&mut self, other: &FilterStats) {
        self.lookups += other.lookups;
        self.mini_index_reads += other.mini_index_reads;
        self.tag_searches += other.tag_searches;
        self.tag_rows_enabled += other.tag_rows_enabled;
        self.tag_physical_rows += other.tag_physical_rows;
        self.data_reads += other.data_reads;
        self.hits += other.hits;
    }
}

/// Seeded fault model for a filter's data array (SRAM bit flips).
///
/// Site selection hashes `(seed, row)` with
/// [`casa_genome::mix::site_hash`], so the same model always corrupts the
/// same rows. Each faulty row has one bit of its start mask flipped:
/// clearing a set bit silently hides an occurrence (a wrong-SMEM hazard the
/// sampled cross-check exists to catch), setting a clear bit only triggers
/// a spurious — and harmless — CAM search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FilterFaultModel {
    /// Seed for site selection.
    pub seed: u64,
    /// Per-data-row probability of a start-mask bit flip.
    pub flip_rate: f64,
}

/// The concrete rows a [`FilterFaultModel`] corrupted, sorted ascending.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterFaultReport {
    /// Data-array rows with a flipped start-mask bit.
    pub rows: Vec<u32>,
}

impl FilterFaultReport {
    /// Total number of injected fault sites.
    pub fn sites(&self) -> usize {
        self.rows.len()
    }
}

const DOMAIN_FILTER_FLIP: u64 = 0x21;

/// The pre-seeding filter for one reference partition.
///
/// ```
/// use casa_genome::PackedSeq;
/// use casa_filter::{FilterConfig, PreSeedingFilter};
///
/// let part = PackedSeq::from_ascii(b"ACGTACGTTTGGAACCAGTC")?;
/// let mut filter = PreSeedingFilter::build(&part, FilterConfig::small(6, 3));
/// let read = PackedSeq::from_ascii(b"GTACGT")?;
/// let si = filter.lookup(&read, 0).expect("read long enough");
/// assert!(!si.is_empty()); // GTACGT occurs at partition offset 2
/// let miss = PackedSeq::from_ascii(b"GGGGGG")?;
/// assert!(filter.lookup(&miss, 0).unwrap().is_empty());
/// # Ok::<(), casa_genome::ParseBaseError>(())
/// ```
#[derive(Clone, Debug)]
pub struct PreSeedingFilter {
    config: FilterConfig,
    /// `mini_index[mmer] .. mini_index[mmer + 1]` bounds the tag bucket.
    /// Owned when built in process, shared when loaded from an index
    /// image (likewise `tag` and `data`).
    mini_index: SliceStore<u32>,
    /// `(k−m)`-mer codes, sorted by (m-mer, rest) — i.e. by full k-mer.
    tag: SliceStore<u32>,
    /// Search indicator per tag row.
    data: IndicatorStore,
    /// §5 physical packing of the tag array.
    layout: TagLayout,
    partition_len: usize,
    stats: FilterStats,
}

impl PreSeedingFilter {
    /// Builds the filter tables for `partition` (the offline step of §4.1).
    pub fn build(partition: &PackedSeq, config: FilterConfig) -> PreSeedingFilter {
        config.validate();
        let (k, m) = (config.k, config.m);
        let rest = k - m;
        let mut keyed: Vec<(u64, u32, SearchIndicator)> = partition
            .kmers(k)
            .map(|(x, code)| {
                let mmer = code >> (2 * rest);
                let restmer = (code & ((1u64 << (2 * rest)) - 1)) as u32;
                (
                    mmer,
                    restmer,
                    SearchIndicator::of_occurrence(x, config.stride, config.groups),
                )
            })
            .map(|(mmer, restmer, si)| ((mmer << (2 * rest)) | u64::from(restmer), restmer, si))
            .collect();
        keyed.sort_unstable_by_key(|&(full, _, _)| full);

        let slots = 1usize << (2 * m);
        let mut mini_index = vec![0u32; slots + 1];
        let mut tag = Vec::with_capacity(keyed.len());
        let mut data: Vec<SearchIndicator> = Vec::with_capacity(keyed.len());
        for (full, restmer, si) in keyed {
            let mmer = (full >> (2 * rest)) as usize;
            mini_index[mmer + 1] += 1;
            tag.push(restmer);
            data.push(si);
        }
        for i in 1..mini_index.len() {
            mini_index[i] += mini_index[i - 1];
        }
        let layout = TagLayout::paper(tag.len().max(1));
        PreSeedingFilter {
            config,
            mini_index: mini_index.into(),
            tag: tag.into(),
            data: data.into(),
            layout,
            partition_len: partition.len(),
            stats: FilterStats::default(),
        }
    }

    /// Reassembles a filter from prebuilt tables — the zero-copy
    /// image-loading path. `data` uses the wire encoding of
    /// [`IndicatorStore`] (two `u64` words per record). Behaves exactly
    /// like the filter [`PreSeedingFilter::build`] would produce for the
    /// same partition and config.
    ///
    /// Fails (typed message) on any shape mismatch between the tables.
    pub fn from_shared_parts(
        config: FilterConfig,
        mini_index: SharedSlice<u32>,
        tag: SharedSlice<u32>,
        data: SharedSlice<u64>,
        partition_len: usize,
    ) -> Result<PreSeedingFilter, &'static str> {
        config.validate();
        let slots = 1usize << (2 * config.m);
        let mini = mini_index.as_slice();
        if mini.len() != slots + 1 {
            return Err("filter mini index has the wrong slot count for m");
        }
        let rows = tag.as_slice().len();
        if mini[slots] as usize != rows {
            return Err("filter mini index total disagrees with tag row count");
        }
        if data.as_slice().len() != rows * 2 {
            return Err("filter data array disagrees with tag row count");
        }
        let layout = TagLayout::paper(rows.max(1));
        Ok(PreSeedingFilter {
            config,
            mini_index: mini_index.into(),
            tag: tag.into(),
            data: data.into(),
            layout,
            partition_len,
            stats: FilterStats::default(),
        })
    }

    /// The mini-index prefix sums (the image writer persists these).
    pub fn mini_index(&self) -> &[u32] {
        self.mini_index.as_slice()
    }

    /// The tag array (restmer codes).
    pub fn tag(&self) -> &[u32] {
        self.tag.as_slice()
    }

    /// The data array in wire encoding (two `u64` words per record).
    pub fn data_words(&self) -> Vec<u64> {
        self.data.to_words()
    }

    /// The partition length the filter was built for.
    pub fn partition_len(&self) -> usize {
        self.partition_len
    }

    /// Whether the tables are backed by shared (mapped) storage.
    pub fn tables_shared(&self) -> bool {
        self.mini_index.is_shared() && self.tag.is_shared() && self.data.is_shared()
    }

    /// The filter's geometry.
    pub fn config(&self) -> &FilterConfig {
        &self.config
    }

    /// Number of tag/data rows (k-mer occurrences in the partition).
    pub fn rows(&self) -> usize {
        self.tag.len()
    }

    /// The §5 physical packing of the tag array.
    pub fn layout(&self) -> &TagLayout {
        &self.layout
    }

    /// Looks up the k-mer starting at `read[pivot..]`.
    ///
    /// Returns `None` if the read is too short to host a k-mer at `pivot`;
    /// otherwise the OR of the indicators of all matching occurrences
    /// ([`SearchIndicator::EMPTY`] when the k-mer is absent — the pivot is
    /// then filterable).
    pub fn lookup(&mut self, read: &PackedSeq, pivot: usize) -> Option<SearchIndicator> {
        let code = read.kmer_code(pivot, self.config.k)?;
        Some(self.lookup_code(code))
    }

    /// Looks up a pre-computed k-mer code.
    pub fn lookup_code(&mut self, code: u64) -> SearchIndicator {
        let rest_bits = 2 * (self.config.k - self.config.m);
        let mmer = (code >> rest_bits) as usize;
        let restmer = (code & ((1u64 << rest_bits) - 1)) as u32;

        self.stats.lookups += 1;
        self.stats.mini_index_reads += 1;
        let lo = self.mini_index[mmer] as usize;
        let hi = self.mini_index[mmer + 1] as usize;
        if lo == hi {
            return SearchIndicator::EMPTY;
        }
        // Range-gated CAM search over the bucket.
        self.stats.tag_searches += 1;
        self.stats.tag_rows_enabled += (hi - lo) as u64;
        self.stats.tag_physical_rows += self.layout.physical_rows(hi - lo) as u64;
        let bucket = &self.tag[lo..hi];
        let first = lo + bucket.partition_point(|&t| t < restmer);
        let mut si = SearchIndicator::EMPTY;
        let mut row = first;
        while row < hi && self.tag[row] == restmer {
            self.stats.data_reads += 1;
            si.merge(self.data.get(row));
            row += 1;
        }
        if !si.is_empty() {
            self.stats.hits += 1;
        }
        si
    }

    /// How many codes ahead of the consuming lookup the batched pass
    /// issues its mini-index prefetch load. Far enough to cover an L3/DRAM
    /// round trip at typical lookup cost, small enough to stay inside one
    /// read's pivot window.
    const LOOKUP_AHEAD: usize = 16;

    /// Looks up a whole batch of pre-computed k-mer codes in one
    /// software-pipelined pass, filling `out` with one indicator per code
    /// (cleared first).
    ///
    /// Semantically identical to calling [`lookup_code`](Self::lookup_code)
    /// per code — same indicators, same [`FilterStats`] deltas — but
    /// restructured for memory-level parallelism. The per-pivot path
    /// issues one random mini-index load per loop iteration, each behind
    /// the previous iteration's gating branches; the mini index is `4^m`
    /// entries (4 MB at the paper's m = 10), far beyond L2, so those
    /// serialized misses dominate the pre-seeding stage. Here every
    /// iteration *also* loads the mini-index slot `LOOKUP_AHEAD`
    /// codes ahead (forced via [`std::hint::black_box`] on the loaded
    /// value, so the compiler cannot drop the dead load) — by the time
    /// the consuming lookup runs, its line is resident.
    pub fn lookup_codes_into(&mut self, codes: &[u64], out: &mut Vec<SearchIndicator>) {
        out.clear();
        out.reserve(codes.len());
        let rest_bits = 2 * (self.config.k - self.config.m);
        for (i, &code) in codes.iter().enumerate() {
            if let Some(&ahead) = codes.get(i + Self::LOOKUP_AHEAD) {
                let mmer = (ahead >> rest_bits) as usize;
                std::hint::black_box(self.mini_index[mmer]);
            }
            out.push(self.lookup_code(code));
        }
    }

    /// Looks up only the m-mer prefix: the OR of the indicators of every
    /// k-mer sharing it. Used by the exact-match pre-processing (§4.3),
    /// which aligns several non-overlapping m-mers before attempting a
    /// whole-read match.
    pub fn lookup_mmer(&mut self, read: &PackedSeq, pivot: usize) -> Option<SearchIndicator> {
        let code = read.kmer_code(pivot, self.config.m)?;
        Some(self.lookup_mmer_code(code))
    }

    /// [`PreSeedingFilter::lookup_mmer`] for a pre-computed m-mer code —
    /// the form the engine's rolling-code hot path feeds directly.
    pub fn lookup_mmer_code(&mut self, code: u64) -> SearchIndicator {
        let mmer = code as usize;
        self.stats.lookups += 1;
        self.stats.mini_index_reads += 1;
        let lo = self.mini_index[mmer] as usize;
        let hi = self.mini_index[mmer + 1] as usize;
        let mut si = SearchIndicator::EMPTY;
        for row in lo..hi {
            self.stats.data_reads += 1;
            si.merge(self.data.get(row));
        }
        if !si.is_empty() {
            self.stats.hits += 1;
        }
        si
    }

    /// Whether the k-mer at `read[pivot..]` exists in the partition (the
    /// CRkM existence check of Algorithm 1). A full filter lookup.
    pub fn contains(&mut self, read: &PackedSeq, pivot: usize) -> bool {
        self.lookup(read, pivot).is_some_and(|si| !si.is_empty())
    }

    /// Modelled on-chip footprint in bytes:
    /// mini index `4^m × 2 pointers`, tag `rows × 2(k−m)` bits, data
    /// `rows × (stride + groups)` bits. With the paper's geometry and a
    /// 4 M-base partition this reproduces the 45 MB figure (6 + 9 + 30).
    pub fn footprint_bytes(&self) -> u64 {
        let ptr_bits = 24u64; // paper Fig. 8: 48-bit mini-index entries (2 pointers)
        let mini = (1u64 << (2 * self.config.m)) * (2 * ptr_bits) / 8;
        let n = self.partition_len as u64;
        let tag = n * (2 * (self.config.k - self.config.m) as u64) / 8;
        let data = n * ((self.config.stride + self.config.groups) as u64) / 8;
        mini + tag + data
    }

    /// Activity counters.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// Resets activity counters.
    pub fn reset_stats(&mut self) {
        self.stats = FilterStats::default();
    }

    /// Injects seeded data-array corruption and returns the flipped rows.
    ///
    /// The corruption is silent: subsequent lookups simply return the
    /// corrupted indicators. Calling this again flips further bits on top
    /// of the existing ones.
    pub fn inject_faults(&mut self, model: &FilterFaultModel) -> FilterFaultReport {
        let mut report = FilterFaultReport::default();
        if model.flip_rate <= 0.0 {
            return report;
        }
        let stride = self.config.stride as u64;
        // Detach shared storage up front (copy-on-write) so the loop
        // mutates in place.
        let data = self.data.to_mut();
        for (row, si) in data.iter_mut().enumerate() {
            let h = site_hash(model.seed, &[DOMAIN_FILTER_FLIP, row as u64]);
            if coin(h, model.flip_rate) {
                // Reuse independent high hash bits to pick the flipped bit.
                let bit = (h >> 32) % stride;
                si.start_mask ^= 1 << bit;
                report.rows.push(row as u32);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_genome::synth::{generate_reference, ReferenceProfile};

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn batched_lookup_matches_per_code_lookup_including_stats() {
        // The batched path must be observationally identical to per-code
        // lookup_code calls: same indicators in order, same FilterStats
        // deltas — the engine's modeled-activity figures depend on it.
        let part = generate_reference(&ReferenceProfile::human_like(), 3_000, 23);
        let cfg = FilterConfig::small(8, 4);
        let mut serial = PreSeedingFilter::build(&part, cfg);
        let mut batched = serial.clone();

        // Mix of present codes, absent codes, and repeats.
        let mut codes: Vec<u64> = part.kmers(cfg.k).map(|(_, c)| c).step_by(7).collect();
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for _ in 0..200 {
            codes.push(rng.gen_range(0..(1u64 << (2 * cfg.k))));
        }
        codes.extend_from_slice(&codes.clone()[..16]);

        let per_code: Vec<SearchIndicator> = codes.iter().map(|&c| serial.lookup_code(c)).collect();
        let mut out = vec![SearchIndicator::EMPTY; 3]; // stale garbage: must be cleared
        batched.lookup_codes_into(&codes, &mut out);

        assert_eq!(out, per_code);
        assert_eq!(batched.stats(), serial.stats());

        // Repeat on the same filter: stats keep accumulating identically.
        let per_code2: Vec<SearchIndicator> =
            codes.iter().map(|&c| serial.lookup_code(c)).collect();
        batched.lookup_codes_into(&codes, &mut out);
        assert_eq!(out, per_code2);
        assert_eq!(batched.stats(), serial.stats());

        // Empty batch clears the output and changes nothing.
        batched.lookup_codes_into(&[], &mut out);
        assert!(out.is_empty());
        assert_eq!(batched.stats(), serial.stats());
    }

    #[test]
    fn no_false_positives_no_misses() {
        // Exhaustive: every k-mer of the partition must hit; every absent
        // k-mer must miss. This is the property that distinguishes the
        // filter from a bloom filter (paper §4.1).
        let part = generate_reference(&ReferenceProfile::human_like(), 3_000, 21);
        let cfg = FilterConfig::small(8, 4);
        let mut filter = PreSeedingFilter::build(&part, cfg);
        // all present k-mers hit, with correct indicator bits
        for (x, code) in part.kmers(cfg.k) {
            let si = filter.lookup_code(code);
            assert!(!si.is_empty(), "k-mer at {x} missed");
            assert!(si.start_mask & (1 << (x % cfg.stride)) != 0);
            assert!(si.groups & (1 << ((x / cfg.stride) % cfg.groups)) != 0);
        }
        // random absent k-mers miss
        use std::collections::HashSet;
        let present: HashSet<u64> = part.kmers(cfg.k).map(|(_, c)| c).collect();
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut tested = 0;
        while tested < 500 {
            let code = rng.gen_range(0..(1u64 << (2 * cfg.k)));
            if present.contains(&code) {
                continue;
            }
            assert!(
                filter.lookup_code(code).is_empty(),
                "false positive for {code}"
            );
            tested += 1;
        }
    }

    #[test]
    fn indicator_aggregates_all_occurrences() {
        // k-mer ACGTAC occurs at 0, 8 and 17 in this partition.
        let part = seq("ACGTACAAACGTACAAAACGTACA");
        let occs: Vec<usize> = (0..=part.len() - 6)
            .filter(|&x| part.subseq(x, 6) == seq("ACGTAC"))
            .collect();
        assert!(occs.len() >= 2);
        let cfg = FilterConfig::small(6, 3);
        let mut filter = PreSeedingFilter::build(&part, cfg);
        let si = filter.lookup(&seq("ACGTAC"), 0).unwrap();
        let mut expect = SearchIndicator::EMPTY;
        for &x in &occs {
            expect.merge(SearchIndicator::of_occurrence(x, cfg.stride, cfg.groups));
        }
        assert_eq!(si, expect);
    }

    #[test]
    fn stats_count_range_gated_rows() {
        let part = seq("AAAAAAAAAAAAAAAA"); // single bucket, many rows
        let cfg = FilterConfig::small(6, 3);
        let mut filter = PreSeedingFilter::build(&part, cfg);
        assert_eq!(filter.rows(), 11);
        filter.lookup(&seq("AAAAAA"), 0).unwrap();
        let st = filter.stats();
        assert_eq!(st.lookups, 1);
        assert_eq!(st.mini_index_reads, 1);
        assert_eq!(st.tag_searches, 1);
        assert_eq!(st.tag_rows_enabled, 11); // whole AAA bucket powered
        assert_eq!(st.data_reads, 11);
        assert_eq!(st.hits, 1);
        // a miss in an empty bucket costs no tag search at all
        filter.lookup(&seq("GGGGGG"), 0).unwrap();
        let st = filter.stats();
        assert_eq!(st.tag_searches, 1);
        assert_eq!(st.lookups, 2);
    }

    #[test]
    fn lookup_too_close_to_read_end_is_none() {
        let part = seq("ACGTACGTACGT");
        let mut filter = PreSeedingFilter::build(&part, FilterConfig::small(6, 3));
        let read = seq("ACGTA");
        assert!(filter.lookup(&read, 0).is_none());
        assert!(filter.lookup(&read, 3).is_none());
    }

    #[test]
    fn mmer_lookup_unions_bucket() {
        let part = seq("ACGTTTTACGAAAACGCC");
        let cfg = FilterConfig::small(6, 3);
        let mut filter = PreSeedingFilter::build(&part, cfg);
        // "ACG" occurs at 0, 7, 14 (prefix of k-mers at 0 and 7; the one
        // at 14 has no full 6-mer but ACG-prefixed k-mers at 0/7 cover it).
        let si = filter.lookup_mmer(&seq("ACG"), 0).unwrap();
        let mut expect = SearchIndicator::EMPTY;
        for x in [0usize, 7] {
            expect.merge(SearchIndicator::of_occurrence(x, cfg.stride, cfg.groups));
        }
        assert_eq!(si, expect);
    }

    #[test]
    fn mmer_code_lookup_matches_mmer_lookup() {
        let part = generate_reference(&ReferenceProfile::human_like(), 2_000, 9);
        let cfg = FilterConfig::small(8, 4);
        let mut by_read = PreSeedingFilter::build(&part, cfg);
        let mut by_code = by_read.clone();
        for (off, code) in part.kmers(cfg.m).take(200) {
            assert_eq!(
                by_read.lookup_mmer(&part, off).unwrap(),
                by_code.lookup_mmer_code(code),
                "offset {off}"
            );
        }
        assert_eq!(by_read.stats(), by_code.stats());
    }

    #[test]
    fn footprint_matches_paper_45mb() {
        // Paper: 45 MB filter for a 4 M-base (1 MB) partition at k=19,
        // m=10, 40-base stride, 20 groups.
        let cfg = FilterConfig::default();
        let filter = PreSeedingFilter {
            config: cfg,
            mini_index: vec![0; 2].into(),
            tag: vec![].into(),
            data: Vec::new().into(),
            layout: TagLayout::paper(4 << 20),
            partition_len: 4 << 20,
            stats: FilterStats::default(),
        };
        let mb = (1u64 << 20) as f64;
        let total = filter.footprint_bytes() as f64 / mb;
        assert!(
            (total - 45.0).abs() < 0.5,
            "filter footprint {total:.1} MB should be ~45 MB"
        );
    }

    #[test]
    fn fault_injection_is_deterministic_and_flips_indicators() {
        let part = generate_reference(&ReferenceProfile::human_like(), 3_000, 5);
        let cfg = FilterConfig::small(8, 4);
        let model = FilterFaultModel {
            seed: 42,
            flip_rate: 0.01,
        };
        let mut a = PreSeedingFilter::build(&part, cfg);
        let clean = PreSeedingFilter::build(&part, cfg);
        let mut b = clean.clone();
        let ra = a.inject_faults(&model);
        let rb = b.inject_faults(&model);
        assert_eq!(ra, rb);
        assert!(ra.sites() > 0, "expected fault sites at this rate");
        for &row in &ra.rows {
            assert_ne!(
                a.data.get(row as usize),
                clean.data.get(row as usize),
                "row {row} should differ from the clean build"
            );
        }
        // Rows outside the report are untouched.
        let faulty: std::collections::HashSet<u32> = ra.rows.iter().copied().collect();
        for row in 0..a.rows() {
            if !faulty.contains(&(row as u32)) {
                assert_eq!(a.data.get(row), clean.data.get(row));
            }
        }
        // Zero rate is a no-op.
        let mut c = clean.clone();
        assert_eq!(c.inject_faults(&FilterFaultModel::default()).sites(), 0);
    }

    #[test]
    fn contains_is_lookup_nonempty() {
        let part = seq("ACGTACGTTTGG");
        let mut filter = PreSeedingFilter::build(&part, FilterConfig::small(6, 3));
        assert!(filter.contains(&seq("ACGTAC"), 0));
        assert!(!filter.contains(&seq("CCCCCC"), 0));
        assert!(!filter.contains(&seq("ACG"), 0)); // too short
    }
}
