//! Stage-level pipeline profile: the per-stage wall-time breakdown of the
//! `session/1` workload (50 human-like reads, one worker — the Fig. 12
//! configuration every PR's BENCH record quotes) before and after the
//! batched-filter/zero-copy-merge optimizations, with SMEM *and* SAM-byte
//! equality asserted across both paths and all three backends before any
//! timing. Written to `results/stage_profile.{csv,json}` and the
//! repo-root `BENCH_pipeline.json` by the `stage_profile` binary.

use std::time::Instant;

use casa_core::profile::time_stage;
use casa_core::{BackendKind, FaultPlan, SeedingSession, Stage, StageProfile};
use casa_genome::sam::{Cigar, CigarOp, SamFormatter, SamRecord};
use casa_genome::PackedSeq;
use casa_index::Smem;

use crate::report::{percent, ratio, Table};
use crate::scenario::{Genome, Scale, Scenario};

/// Interleaved timed sample pairs per measurement (best-of reported).
const SAMPLES: usize = 25;
/// Profiled passes merged into each breakdown (shares, not absolute
/// nanoseconds, are the payload — merging passes smooths clock noise).
const PROFILE_PASSES: usize = 5;
/// Reads in the session workload, matching the `cam_kernel` session rows
/// and the cross-PR `session/1` baseline.
const SESSION_READS: usize = 50;
/// The PR 5 `session/1` headline this PR's speedup gate is measured
/// against (`BENCH_kernels.json`: 0.78 ms for 50 reads, one worker).
pub const BASELINE_PR5_SESSION1_MS: f64 = 0.78;

/// The harness output: matched before/after breakdowns plus headline
/// timings for the same workload.
#[derive(Clone, Debug)]
pub struct StageProfileReport {
    /// Reads per batch.
    pub reads: usize,
    /// Whether this run used the canonical `session/1` workload (small
    /// scale), making [`BASELINE_PR5_SESSION1_MS`] directly comparable.
    pub session1_workload: bool,
    /// Per-stage breakdown of the seed path (per-pivot filter lookups,
    /// profiling on), summed over `PROFILE_PASSES` passes.
    pub before: StageProfile,
    /// Per-stage breakdown of the optimized path (batched filter lookups,
    /// zero-copy merge), summed over the same number of passes.
    pub after: StageProfile,
    /// Best wall time of one unprofiled seed-path batch over the
    /// interleaved samples, nanoseconds.
    pub before_best_ns: u128,
    /// Best wall time of one unprofiled optimized batch over the same
    /// interleaved samples, nanoseconds.
    pub after_best_ns: u128,
    /// Total SMEMs in the (identical) outputs.
    pub smems: usize,
    /// Bytes of the (identical) rendered SAM bodies.
    pub sam_bytes: usize,
}

impl StageProfileReport {
    /// Best-of milliseconds of one seed-path batch.
    pub fn before_ms(&self) -> f64 {
        self.before_best_ns as f64 / 1e6
    }

    /// Best-of milliseconds of one optimized batch.
    pub fn after_ms(&self) -> f64 {
        self.after_best_ns as f64 / 1e6
    }

    /// Measured speedup of the optimized path over the seed path on the
    /// identical workload (the PR's primary gate asks for >= 2x on
    /// `session/1` versus the PR 5 baseline; this same-binary ratio is
    /// the controlled companion number). Emitted as `speedup_vs_before`
    /// in `BENCH_pipeline.json`, next to `speedup_vs_pr5`.
    pub fn speedup(&self) -> f64 {
        self.before_best_ns as f64 / self.after_best_ns as f64
    }

    /// Speedup of the optimized path over the recorded PR 5 `session/1`
    /// baseline. Only meaningful when
    /// [`session1_workload`](Self::session1_workload) is true.
    pub fn speedup_vs_pr5(&self) -> f64 {
        BASELINE_PR5_SESSION1_MS / self.after_ms()
    }
}

/// Times one call of `f`, nanoseconds (clamped to at least 1).
fn time_ns<R: FnMut()>(f: &mut R) -> u128 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos().max(1)
}

/// Renders per-read SMEM lists as SAM records the way the CLI does for
/// seed output: best (longest, then leftmost) SMEM per read becomes a
/// soft-clipped match at its first hit; reads with no SMEM are unmapped.
fn sam_records(reads: &[PackedSeq], smems: &[Vec<Smem>]) -> Vec<SamRecord> {
    reads
        .iter()
        .zip(smems)
        .enumerate()
        .map(|(i, (read, list))| {
            let qname = format!("read{i}");
            let best = list
                .iter()
                .max_by_key(|s| (s.len(), std::cmp::Reverse(s.read_start)));
            match best {
                Some(smem) => {
                    let mut ops = Vec::new();
                    if smem.read_start > 0 {
                        ops.push(CigarOp::SoftClip(smem.read_start as u32));
                    }
                    ops.push(CigarOp::AlnMatch(smem.len() as u32));
                    if smem.read_end < read.len() {
                        ops.push(CigarOp::SoftClip((read.len() - smem.read_end) as u32));
                    }
                    SamRecord {
                        qname,
                        flag: 0,
                        rname: "ref".to_string(),
                        pos: u64::from(smem.hits[0]) + 1,
                        mapq: 60,
                        cigar: Cigar(ops),
                        seq: read.clone(),
                    }
                }
                None => SamRecord::unmapped(&qname, read.clone()),
            }
        })
        .collect()
}

/// One profiled pass: harness-side read packing + SAM emission spans
/// around the engine-side profile of a full `seed_reads` batch.
fn profiled_pass(
    session: &SeedingSession,
    reads: &[PackedSeq],
    formatter: &mut SamFormatter,
) -> StageProfile {
    let mut profile = StageProfile::default();
    // ReadPack: the ingestion-side ASCII -> 2-bit packing the engines
    // never see (scenario reads arrive packed, so round-trip them the way
    // the CLI packs FASTQ input).
    let ascii: Vec<Vec<u8>> = reads
        .iter()
        .map(|r| r.iter().map(|b| b.to_char() as u8).collect())
        .collect();
    let packed: Vec<PackedSeq> = time_stage(&mut profile, Stage::ReadPack, || {
        ascii
            .iter()
            .map(|a| PackedSeq::from_ascii(a).expect("round-tripped bases are valid"))
            .collect()
    });
    let run = session.seed_reads(&packed);
    profile.merge(&run.stats.profile);
    // Emit: seed/SAM record rendering through the buffered formatter.
    let mut sink = Vec::new();
    time_stage(&mut profile, Stage::Emit, || {
        let records = sam_records(&packed, &run.smems);
        formatter
            .write_all(&mut sink, &records)
            .expect("Vec sink cannot fail");
    });
    profile
}

/// Runs the before/after profile at `scale`, asserting SMEM, stats, and
/// SAM-byte equality across the seed path, the optimized path, and all
/// three backends before any measurement.
///
/// # Panics
///
/// Panics if the batched/profiled path diverges from the per-pivot seed
/// path in any SMEM, modeled statistic, or rendered SAM byte, or if any
/// backend disagrees with the CAM reference — the bit-identity contract
/// this PR's optimizations must preserve.
pub fn run(scale: Scale) -> StageProfileReport {
    run_with(scale, false)
}

/// [`run`] with an optional quick mode (fewer samples/passes) for CI
/// smoke runs; equality gates are identical in both modes.
pub fn run_with(scale: Scale, quick: bool) -> StageProfileReport {
    let samples = if quick { 3 } else { SAMPLES };
    let passes = if quick { 2 } else { PROFILE_PASSES };
    let scenario = Scenario::build(Genome::HumanLike, scale);
    let reads = &scenario.reads[..scenario.reads.len().min(SESSION_READS)];

    let session = SeedingSession::new(&scenario.reference, scenario.casa_config(), 1)
        .expect("scenario config is valid");

    // Equality gates, all before any timing. Reference: the optimized
    // (default) path, profiling off.
    let run_after = session.seed_reads(reads);
    session.set_batched_filter(false);
    let run_before = session.seed_reads(reads);
    assert_eq!(
        run_before.smems, run_after.smems,
        "batched filter lookups changed the SMEM output"
    );
    assert_eq!(
        run_before.stats, run_after.stats,
        "batched filter lookups changed the modeled statistics"
    );
    session.set_batched_filter(true);
    session.set_profiling(true);
    let run_prof = session.seed_reads(reads);
    assert_eq!(
        run_prof.smems, run_after.smems,
        "profiling changed the SMEM output"
    );
    let mut stats_sans_profile = run_prof.stats;
    stats_sans_profile.profile = StageProfile::default();
    assert_eq!(
        stats_sans_profile, run_after.stats,
        "profiling changed a modeled statistic"
    );
    assert!(
        !run_prof.stats.profile.is_empty(),
        "profiling was enabled but recorded nothing"
    );
    session.set_profiling(false);
    for backend in [BackendKind::Fm, BackendKind::Ert] {
        let other = SeedingSession::with_backend(
            &scenario.reference,
            scenario.casa_config(),
            1,
            FaultPlan::default(),
            backend,
        )
        .expect("scenario config is valid");
        assert_eq!(
            other.seed_reads(reads).smems,
            run_after.smems,
            "{backend} SMEMs diverged from the CAM reference"
        );
    }
    // SAM bytes: the optimized formatter on both paths' (identical)
    // outputs must render the identical body.
    let mut formatter = SamFormatter::new();
    let mut sam_after = Vec::new();
    formatter
        .write_all(&mut sam_after, &sam_records(reads, &run_after.smems))
        .expect("Vec sink cannot fail");
    let mut sam_before = Vec::new();
    formatter
        .write_all(&mut sam_before, &sam_records(reads, &run_before.smems))
        .expect("Vec sink cannot fail");
    assert_eq!(sam_before, sam_after, "rendered SAM bytes diverged");

    // Profiled breakdowns (shares), then unprofiled timings (headline).
    session.set_profiling(true);
    session.set_batched_filter(false);
    let mut before = StageProfile::default();
    for _ in 0..passes {
        before.merge(&profiled_pass(&session, reads, &mut formatter));
    }
    session.set_batched_filter(true);
    let mut after = StageProfile::default();
    for _ in 0..passes {
        after.merge(&profiled_pass(&session, reads, &mut formatter));
    }
    session.set_profiling(false);

    // Headline timings: before/after passes interleaved pair by pair so
    // both paths see the same machine conditions, best-of reported —
    // external load on a shared core only ever *adds* time, so the
    // minimum is the noise-robust estimator of each path's true cost.
    let mut pass_before = || {
        session.set_batched_filter(false);
        session.seed_reads(reads);
    };
    pass_before();
    let mut pass_after = || {
        session.set_batched_filter(true);
        session.seed_reads(reads);
    };
    pass_after();
    let (mut before_best_ns, mut after_best_ns) = (u128::MAX, u128::MAX);
    for _ in 0..samples {
        before_best_ns = before_best_ns.min(time_ns(&mut pass_before));
        after_best_ns = after_best_ns.min(time_ns(&mut pass_after));
    }

    StageProfileReport {
        reads: reads.len(),
        session1_workload: scale == Scale::Small && reads.len() == SESSION_READS,
        before,
        after,
        before_best_ns,
        after_best_ns,
        smems: run_after.smems.iter().map(Vec::len).sum(),
        sam_bytes: sam_after.len(),
    }
}

/// Renders the report (saved as `results/stage_profile.{csv,json}`).
pub fn table(report: &StageProfileReport) -> Table {
    let mut t = Table::new(
        "Pipeline stage profile: seed path vs batched/zero-copy path",
        &[
            "stage",
            "before_ns",
            "before_share",
            "after_ns",
            "after_share",
        ],
    );
    for stage in Stage::ALL {
        t.row([
            stage.as_str().to_string(),
            report.before.nanos(stage).to_string(),
            percent(report.before.share(stage)),
            report.after.nanos(stage).to_string(),
            percent(report.after.share(stage)),
        ]);
    }
    t.row([
        "total".to_string(),
        report.before.total_nanos().to_string(),
        String::new(),
        report.after.total_nanos().to_string(),
        ratio(report.speedup()),
    ]);
    t
}

/// Renders the machine-readable cross-PR perf record written to the
/// repo-root `BENCH_pipeline.json`.
pub fn bench_json(report: &StageProfileReport, scale: Scale) -> String {
    let rows: Vec<serde_json::Value> = Stage::ALL
        .iter()
        .map(|&stage| {
            serde_json::json!({
                "stage": stage.as_str(),
                "before_ns": report.before.nanos(stage),
                "before_calls": report.before.calls(stage),
                "before_share": report.before.share(stage),
                "after_ns": report.after.nanos(stage),
                "after_calls": report.after.calls(stage),
                "after_share": report.after.share(stage),
            })
        })
        .collect();
    let value = serde_json::json!({
        "experiment": "stage_profile",
        "scale": format!("{scale:?}").to_lowercase(),
        "reads": report.reads,
        "workers": 1u64,
        "smems": report.smems,
        "sam_bytes": report.sam_bytes,
        "session1_workload": report.session1_workload,
        "headline": {
            "before_session_ms": report.before_ms(),
            "after_session_ms": report.after_ms(),
            "speedup_vs_before": report.speedup(),
            "baseline_pr5_session1_ms": BASELINE_PR5_SESSION1_MS,
            "speedup_vs_pr5": report.speedup_vs_pr5(),
        },
        "stages": rows,
    });
    value.to_string() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_equality_holds_and_profiles_fill() {
        let report = run_with(Scale::Small, true);
        // The equality asserts inside run() are the real payload.
        assert_eq!(report.reads, SESSION_READS);
        assert!(report.session1_workload);
        assert!(report.smems > 0);
        assert!(report.sam_bytes > 0);
        // Both breakdowns recorded engine-side and harness-side stages.
        // The engine stages only fire on the CAM backend; under a CI
        // `CASA_BACKEND=fm|ert` pin only the session/harness stages do.
        let cam = matches!(
            BackendKind::from_env(),
            Ok(None) | Ok(Some(BackendKind::Cam))
        );
        let mut expected = vec![Stage::ReadPack, Stage::TranslateMerge, Stage::Emit];
        if cam {
            expected.extend([Stage::KmerCodes, Stage::FilterLookup, Stage::CamSearch]);
        }
        for profile in [&report.before, &report.after] {
            assert!(!profile.is_empty());
            for &stage in &expected {
                assert!(
                    profile.calls(stage) > 0,
                    "no spans recorded for {stage} stage"
                );
            }
        }
        assert!(report.speedup() > 0.0);
        let t = table(&report);
        assert_eq!(t.rows.len(), Stage::ALL.len() + 1);
        let json: serde_json::Value =
            serde_json::from_str(&bench_json(&report, Scale::Small)).expect("bench json parses");
        assert_eq!(json["stages"].as_array().unwrap().len(), Stage::ALL.len());
        assert!(json["headline"]["speedup_vs_before"].as_f64().unwrap() > 0.0);
        assert_eq!(json["session1_workload"], true);
    }
}
