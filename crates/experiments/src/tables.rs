//! Tables 1–4 of the paper.
//!
//! * Table 1 — pros/cons of the three seeding data structures, backed by
//!   measured footprints and per-read operation counts on a common
//!   partition;
//! * Table 2 — baseline CPU configurations (constants);
//! * Table 3 — 28 nm circuit models (constants);
//! * Table 4 — CASA power and area breakdown (model + measured dynamic
//!   power).

use casa_baselines::{BwaMem2Model, ErtAccelerator, ErtConfig, I7_6800K, XEON_E5_2699};
use casa_core::energy_model::{dynamic_ledger, CasaHardwareModel};
use casa_energy::circuits::TABLE3_ROWS;
use casa_energy::DramSystem;
use casa_index::SeedPositionTable;

use crate::report::Table;
use crate::scenario::{Genome, Scale, Scenario};
use crate::systems::SystemsRun;

/// Table 1: data-structure comparison with measured numbers.
pub fn table1(scale: Scale) -> Table {
    let scenario = Scenario::build(Genome::HumanLike, scale);
    let part_len = scale.partition_len().min(scenario.reference.len());
    let part = scenario.reference.subseq(0, part_len);
    let reads: Vec<_> = scenario.reads.iter().take(50).cloned().collect();

    // FM-index: ops per read.
    let bwa = BwaMem2Model::new(&part, 19);
    let bwa_run = bwa.seed_reads(&reads);
    let fm_bytes = part.len() + part.len() * 4 + part.len() / 8; // BWT + SA + Occ checkpoints
    let fm_ops = bwa_run.occ_queries as f64 / reads.len() as f64;

    // ERT: DRAM fetches per read.
    let ert = ErtAccelerator::new(&part, ErtConfig::default());
    let ert_run = ert.process_reads(&reads);
    let ert_fetches = ert_run.dram_fetches as f64 / reads.len() as f64;

    // Seed & position tables: footprint at k = 12.
    let spt = SeedPositionTable::build(&part, 12);

    let mut t = Table::new(
        "Table 1: seeding data structures (measured on one partition)",
        &["structure", "footprint (MB)", "ops/read", "pros", "cons"],
    );
    t.row([
        "FM-index".into(),
        format!("{:.1}", fm_bytes as f64 / 1e6),
        format!("{fm_ops:.0} rank queries"),
        "low memory cost".into(),
        "low throughput / bandwidth utilization".into(),
    ]);
    t.row([
        "ERT-index".into(),
        format!("{:.1}", ert.footprint_bytes() as f64 / 1e6),
        format!("{ert_fetches:.0} DRAM fetches"),
        "high throughput".into(),
        "high memory cost with large k-mer".into(),
    ]);
    t.row([
        "Seed & position tables".into(),
        format!("{:.1}", spt.footprint_bytes() as f64 / 1e6),
        "~1 fetch + intersect per k-mer stride".into(),
        "high throughput, simple algorithm".into(),
        "high memory cost with large k-mer".into(),
    ]);
    t
}

/// Table 2: baseline system configuration.
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2: baseline system configuration",
        &[
            "CPU",
            "cores",
            "clock (GHz)",
            "LLC (MB)",
            "parallel efficiency",
        ],
    );
    for cpu in [I7_6800K, XEON_E5_2699] {
        t.row([
            cpu.name.to_string(),
            cpu.cores.to_string(),
            format!("{:.1}", cpu.ghz),
            format!("{:.0}", cpu.llc_mb),
            format!("{:.2}", cpu.parallel_efficiency),
        ]);
    }
    t
}

/// Table 3: circuit models in 28 nm.
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table 3: circuit models in 28nm",
        &[
            "component",
            "delay (ps)",
            "area (um^2)",
            "energy (pJ)",
            "leakage (uA)",
            "size",
        ],
    );
    for m in TABLE3_ROWS {
        t.row([
            m.name.to_string(),
            format!("{:.0}", m.delay_ps),
            format!("{:.0}", m.area_um2),
            format!("{:.2}", m.energy_pj),
            format!("{:.3}", m.leakage_ua),
            format!("{} x {}", m.rows, m.bits),
        ]);
    }
    t
}

/// Table 4: CASA power and area breakdown, with the dynamic power measured
/// from a run at the given scale.
pub fn table4(scale: Scale) -> Table {
    let scenario = Scenario::build(Genome::HumanLike, scale);
    let systems = SystemsRun::execute(&scenario);
    let hw = CasaHardwareModel::default();
    let dram = DramSystem::casa();
    let seconds = systems.casa_seconds();
    let ledger = dynamic_ledger(&systems.casa.stats);
    let dram_w = dram.average_power_w(systems.casa.stats.dram_bytes.max(1), seconds);

    let filter_dynamic_w = (ledger.activity("mini_index").energy_pj
        + ledger.activity("tag_array").energy_pj
        + ledger.activity("data_array").energy_pj)
        * 1e-12
        / seconds;
    let cam_dynamic_w = ledger.activity("computing_cam").energy_pj * 1e-12 / seconds;

    let mut rep = hw.area_report(dram_w, dram.phy_power_w());
    // Fill in the measured memory powers (the NaN placeholders).
    for row in &mut rep.rows {
        if row.component.starts_with("Pre-seeding filter") {
            row.power_w = filter_dynamic_w;
        } else if row.component.starts_with("Computing CAMs") {
            row.power_w = cam_dynamic_w;
        }
    }

    let mut t = Table::new(
        "Table 4: CASA power and area breakdown (paper values in DESIGN.md)",
        &["component", "area (mm^2)", "power (W)"],
    );
    for row in &rep.rows {
        t.row([
            row.component.clone(),
            row.area_mm2.map_or("N/A".into(), |a| format!("{a:.3}")),
            format!("{:.3}", row.power_w),
        ]);
    }
    t.row([
        "TOTAL (on-chip area)".into(),
        format!("{:.3}", rep.total_area_mm2()),
        format!("{:.3}", rep.total_power_w()),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shows_footprint_hierarchy() {
        let t = table1(Scale::Small);
        assert_eq!(t.rows.len(), 3);
        let fm: f64 = t.rows[0][1].parse().unwrap();
        let ert: f64 = t.rows[1][1].parse().unwrap();
        let spt: f64 = t.rows[2][1].parse().unwrap();
        assert!(fm < ert, "FM-index must be smallest: {fm} vs {ert}");
        assert!(fm < spt);
    }

    #[test]
    fn table2_and_3_are_constant() {
        assert_eq!(table2().rows.len(), 2);
        let t3 = table3();
        assert_eq!(t3.rows.len(), 4);
        assert!(t3.render().contains("10T BCAM 256x72"));
    }

    #[test]
    fn table4_totals_are_finite() {
        let t = table4(Scale::Small);
        let total_row = t.rows.last().unwrap();
        let area: f64 = total_row[1].parse().unwrap();
        assert!((area - 296.553).abs() / 296.553 < 0.05);
        let power: f64 = total_row[2].parse().unwrap();
        assert!(power.is_finite() && power > 0.0);
    }
}
