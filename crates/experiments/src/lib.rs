//! Experiment runners regenerating every table and figure of the CASA
//! paper's evaluation (§6–§7). See `DESIGN.md` §4 for the experiment
//! index and `EXPERIMENTS.md` for paper-vs-measured records.
//!
//! Each module exposes `run(scale)` returning plain data plus a
//! `table(...)` renderer; the `src/bin/*` binaries wrap them with a
//! single optional CLI argument (`small` / `medium` / `large`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod backend_compare;
pub mod cam_kernel;
pub mod claims;
pub mod fault_sweep;
pub mod fig05;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod genomestats;
pub mod index_startup;
pub mod longread;
pub mod pipeline_report;
pub mod report;
pub mod scenario;
pub mod seedex_balance;
pub mod serve_load;
pub mod stage_profile;
pub mod stream_resilience;
pub mod summary;
pub mod systems;
pub mod tables;

use scenario::Scale;

/// Parses the experiment binaries' single optional argument into a scale
/// (defaults to `medium`; anything unrecognized falls back with a note on
/// stderr).
pub fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        None => Scale::Medium,
        Some(arg) => Scale::parse(arg).unwrap_or_else(|| {
            eprintln!("unknown scale {arg:?}; using medium (try small|medium|large)");
            Scale::Medium
        }),
    }
}
