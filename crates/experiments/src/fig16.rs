//! Figure 16: inexact-matching throughput of CASA, ERT and GenAx,
//! normalized to GenAx (every read carries at least one edit, so the
//! exact-match fast path never fires; the paper measures CASA at 3.86×
//! GenAx and 0.72× ERT).

use casa_baselines::{ErtAccelerator, ErtConfig, GenaxAccelerator, GenaxConfig};
use casa_core::CasaAccelerator;
use casa_energy::DramSystem;

use crate::report::Table;
use crate::scenario::{Genome, Scale, Scenario, READ_LEN};
use crate::systems::genax_k;

/// One bar of Fig. 16.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig16Row {
    /// System label.
    pub system: &'static str,
    /// Absolute throughput, reads/s.
    pub reads_per_s: f64,
    /// Throughput normalized to GenAx.
    pub normalized: f64,
}

/// Runs the inexact-only comparison on the human-like genome.
pub fn run(scale: Scale) -> Vec<Fig16Row> {
    let scenario = Scenario::build_inexact(Genome::HumanLike, scale);

    let casa_acc = CasaAccelerator::new(&scenario.reference, scenario.casa_config())
        .expect("scenario config is valid");
    let casa_run = casa_acc.seed_reads(&scenario.reads);
    let casa_tput =
        casa_run.throughput_reads_per_s(casa_acc.partition_count(), &DramSystem::casa());

    let ert_cfg = ErtConfig::default();
    let ert_acc = ErtAccelerator::new(&scenario.reference, ert_cfg);
    let ert_run = ert_acc.process_reads(&scenario.reads);
    let ert_tput = ert_run.throughput(&ert_cfg, &DramSystem::ert());

    let genax_cfg = GenaxConfig {
        k: genax_k(scenario.scale),
        ..GenaxConfig::paper(scenario.scale.partition_len(), READ_LEN)
    };
    let genax_acc = GenaxAccelerator::new(&scenario.reference, genax_cfg);
    let (_, genax_run) = genax_acc.seed_reads(&scenario.reads);
    let genax_tput = genax_run.throughput(&genax_cfg, genax_acc.partition_count());

    [
        ("CASA", casa_tput),
        ("ERT", ert_tput),
        ("GenAx", genax_tput),
    ]
    .into_iter()
    .map(|(system, reads_per_s)| Fig16Row {
        system,
        reads_per_s,
        normalized: reads_per_s / genax_tput,
    })
    .collect()
}

/// The paper's Fig. 16 values normalized to GenAx (CASA 3.86x;
/// ERT = CASA / 0.72 ≈ 5.4x).
fn paper_value(system: &str) -> &'static str {
    match system {
        "CASA" => "3.86x",
        "ERT" => "5.36x",
        _ => "1.00x",
    }
}

/// Renders the figure. The ERT bar is depressed at reproduction scale:
/// its per-fetch DRAM latency is full-scale while the partitioned
/// accelerators enjoy reduced pass counts (see EXPERIMENTS.md).
pub fn table(rows: &[Fig16Row]) -> Table {
    let mut t = Table::new(
        "Figure 16: inexact matching throughput (normalized to GenAx)",
        &["system", "reads/s", "normalized", "paper"],
    );
    for r in rows {
        t.row([
            r.system.to_string(),
            format!("{:.0}", r.reads_per_s),
            format!("{:.2}x", r.normalized),
            paper_value(r.system).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inexact_ordering_matches_paper() {
        let rows = run(Scale::Small);
        let get = |name: &str| rows.iter().find(|r| r.system == name).unwrap().normalized;
        // Paper: CASA is 3.86x GenAx on inexact-only workloads. Assert the
        // win and a generous band around the published factor.
        let casa = get("CASA");
        assert!(
            (1.5..=10.0).contains(&casa),
            "CASA/GenAx {casa:.2} should be in the paper's neighbourhood (3.86x)"
        );
        assert!((get("GenAx") - 1.0).abs() < 1e-9);
        // ERT's bar is positive; its ordering vs GenAx is scale-sensitive
        // (full-scale DRAM latency vs reduced pass counts) and is covered
        // by the projected summary instead.
        assert!(get("ERT") > 0.0);
    }
}
