//! Figure 5: number of k-mers on a read that hit one reference partition,
//! as the k-mer size grows (the observation motivating CASA's 19-mer
//! filter — the paper measures a 6.04× drop from k = 12 to k = 19).

use casa_filter::{FilterConfig, PreSeedingFilter};

use crate::report::Table;
use crate::scenario::{Genome, Scale, Scenario};

/// One bar of Fig. 5.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig05Row {
    /// k-mer size.
    pub k: usize,
    /// Average pivots per read whose k-mer hits the partition.
    pub hit_pivots_per_read: f64,
}

/// Runs the experiment: one human-like partition, the standard read
/// batch, k ∈ {12, 14, 16, 19}.
pub fn run(scale: Scale) -> Vec<Fig05Row> {
    let scenario = Scenario::build(Genome::HumanLike, scale);
    let part = scenario
        .reference
        .subseq(0, scale.partition_len().min(scenario.reference.len()));
    [12usize, 14, 16, 19]
        .into_iter()
        .map(|k| {
            let mut filter = PreSeedingFilter::build(&part, FilterConfig::new(k, 10, 40, 20));
            let mut hit_pivots = 0u64;
            for read in &scenario.reads {
                for pivot in 0..=read.len().saturating_sub(k) {
                    if filter.contains(read, pivot) {
                        hit_pivots += 1;
                    }
                }
            }
            Fig05Row {
                k,
                hit_pivots_per_read: hit_pivots as f64 / scenario.reads.len() as f64,
            }
        })
        .collect()
}

/// Renders the Fig. 5 rows.
pub fn table(rows: &[Fig05Row]) -> Table {
    let mut t = Table::new(
        "Figure 5: hit pivots per read per reference partition vs k",
        &["k", "hit pivots/read/part", "vs k=12"],
    );
    let base = rows.first().map(|r| r.hit_pivots_per_read).unwrap_or(1.0);
    for r in rows {
        t.row([
            r.k.to_string(),
            format!("{:.3}", r.hit_pivots_per_read),
            format!("{:.2}x", base / r.hit_pivots_per_read.max(1e-12)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_pivots_decrease_with_k() {
        let rows = run(Scale::Small);
        assert_eq!(rows.len(), 4);
        for pair in rows.windows(2) {
            assert!(
                pair[0].hit_pivots_per_read >= pair[1].hit_pivots_per_read,
                "k={} -> {} should not exceed k={} -> {}",
                pair[1].k,
                pair[1].hit_pivots_per_read,
                pair[0].k,
                pair[0].hit_pivots_per_read
            );
        }
        // The paper sees a 6.04x drop from 12 to 19; synthetic genomes
        // should show a clear multiple too.
        let drop = rows[0].hit_pivots_per_read / rows[3].hit_pivots_per_read.max(1e-12);
        assert!(drop > 1.2, "k=12 -> k=19 drop was only {drop:.2}x");
    }
}
