//! Long-read seeding (the paper's §9 outlook: "the filter-enabled
//! architecture of CASA, which supports large k-mer searches, broadens
//! its applicability to long-read alignment").
//!
//! We simulate ONT-like long reads (kilobase lengths, percent-level error
//! rates), seed them with the unmodified CASA pipeline, and report how the
//! seeding behaves as reads grow: SMEMs per read, the fraction of read
//! bases covered by seeds, pivots filtered, and modelled throughput in
//! bases/second.

use casa_core::{CasaAccelerator, CasaConfig};
use casa_energy::DramSystem;
use casa_genome::{PackedSeq, ReadSimConfig, ReadSimulator};

use crate::report::Table;
use crate::scenario::{Genome, Scale, Scenario};

/// One row of the long-read sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LongReadRow {
    /// Read length in bases.
    pub read_len: usize,
    /// Per-base error rate simulated.
    pub error_rate: f64,
    /// Average SMEMs per read.
    pub smems_per_read: f64,
    /// Fraction of read bases covered by at least one SMEM.
    pub seed_coverage: f64,
    /// Fraction of pivots filtered before SMEM computation.
    pub filter_rate: f64,
    /// Modelled seeding throughput in bases/second.
    pub bases_per_s: f64,
}

/// ONT-like per-base error rate used for the sweep.
pub const LONG_READ_ERROR_RATE: f64 = 0.03;

/// Runs the sweep over read lengths on the human-like genome.
pub fn run(scale: Scale) -> Vec<LongReadRow> {
    let scenario = Scenario::build(Genome::HumanLike, scale);
    let reference = &scenario.reference;
    let read_counts = match scale {
        Scale::Small => 20,
        Scale::Medium => 60,
        Scale::Large => 150,
    };
    [500usize, 1_000, 2_000, 5_000]
        .into_iter()
        .filter(|&len| reference.len() > 2 * len)
        .map(|read_len| {
            let sim = ReadSimulator::new(
                ReadSimConfig {
                    read_len,
                    base_error_rate: LONG_READ_ERROR_RATE * 0.7,
                    error_ramp: 0.0,
                    mutation_rate: LONG_READ_ERROR_RATE * 0.2,
                    indel_rate: LONG_READ_ERROR_RATE * 0.1,
                    rc_fraction: 0.0,
                },
                read_len as u64,
            );
            let reads: Vec<PackedSeq> = sim
                .simulate(reference, read_counts)
                .into_iter()
                .map(|r| r.seq)
                .collect();
            let config = CasaConfig::paper(scale.partition_len(), read_len);
            let casa = CasaAccelerator::new(reference, config).expect("valid config");
            let run = casa.seed_reads(&reads);
            let dram = DramSystem::casa();
            let seconds = run.seconds(&dram);

            let total_smems: usize = run.smems.iter().map(Vec::len).sum();
            let coverage: f64 = run
                .smems
                .iter()
                .map(|smems| {
                    let covered: usize = coverage_of(smems, read_len);
                    covered as f64 / read_len as f64
                })
                .sum::<f64>()
                / reads.len() as f64;

            LongReadRow {
                read_len,
                error_rate: LONG_READ_ERROR_RATE,
                smems_per_read: total_smems as f64 / reads.len() as f64,
                seed_coverage: coverage,
                filter_rate: run.stats.pivot_filter_rate(),
                bases_per_s: (reads.len() * read_len) as f64 / seconds,
            }
        })
        .collect()
}

/// Bases of `read_len` covered by at least one SMEM (intervals are sorted
/// and non-contained, so a sweep suffices).
fn coverage_of(smems: &[casa_index::Smem], read_len: usize) -> usize {
    let mut covered = 0usize;
    let mut cursor = 0usize;
    for s in smems {
        let start = s.read_start.max(cursor);
        if s.read_end > start {
            covered += s.read_end - start;
            cursor = s.read_end;
        }
    }
    covered.min(read_len)
}

/// Renders the sweep.
pub fn table(rows: &[LongReadRow]) -> Table {
    let mut t = Table::new(
        "Long-read seeding sweep (paper §9 outlook; ONT-like 3% error)",
        &[
            "read len",
            "SMEMs/read",
            "seed coverage",
            "filtered",
            "Mbases/s",
        ],
    );
    for r in rows {
        t.row([
            r.read_len.to_string(),
            format!("{:.1}", r.smems_per_read),
            format!("{:.1}%", r.seed_coverage * 100.0),
            format!("{:.2}%", r.filter_rate * 100.0),
            format!("{:.2}", r.bases_per_s / 1e6),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_reads_seed_with_many_smems() {
        let rows = run(Scale::Small);
        assert!(rows.len() >= 2);
        for pair in rows.windows(2) {
            // Longer reads carry more SMEMs.
            assert!(
                pair[1].smems_per_read > pair[0].smems_per_read,
                "{} -> {}",
                pair[0].smems_per_read,
                pair[1].smems_per_read
            );
        }
        for r in &rows {
            assert!(
                r.smems_per_read >= 1.0,
                "{}bp reads found {} SMEMs/read",
                r.read_len,
                r.smems_per_read
            );
            // At 3% error an exact 19-mer survives between errors often
            // enough to cover a sizable fraction of the read.
            assert!(
                r.seed_coverage > 0.2,
                "{}bp coverage {:.2}",
                r.read_len,
                r.seed_coverage
            );
            assert!(r.bases_per_s > 0.0);
        }
    }

    #[test]
    fn coverage_helper_handles_overlaps() {
        use casa_index::Smem;
        let smems = vec![
            Smem {
                read_start: 0,
                read_end: 30,
                hits: vec![1],
            },
            Smem {
                read_start: 20,
                read_end: 50,
                hits: vec![2],
            },
            Smem {
                read_start: 80,
                read_end: 90,
                hits: vec![3],
            },
        ];
        assert_eq!(coverage_of(&smems, 100), 60);
        assert_eq!(coverage_of(&[], 100), 0);
    }
}
