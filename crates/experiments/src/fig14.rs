//! Figure 14: end-to-end normalized running time of BWA-MEM2,
//! CASA+SeedEx, ERT+SeedEx, GenAx+SeedEx, broken into pipeline stages.

use casa_align::pipeline::{pipeline, PipelineBreakdown, SystemKind, CPU_S_PER_CELL};
use casa_align::seedex::{extend_batch, SeedExConfig};
use casa_baselines::I7_6800K;

use crate::report::Table;
use crate::scenario::{Genome, Scale, Scenario};
use crate::systems::SystemsRun;

/// The four pipelines with their stage timings.
#[derive(Debug)]
pub struct Fig14Result {
    /// Stage breakdowns in the figure's order.
    pub pipelines: Vec<PipelineBreakdown>,
}

/// Runs the experiment on the human-like scenario.
pub fn run(scale: Scale) -> Fig14Result {
    let scenario = Scenario::build(Genome::HumanLike, scale);
    let systems = SystemsRun::execute(&scenario);
    build(&scenario, &systems)
}

/// Builds the four pipelines from an executed systems run.
pub fn build(scenario: &Scenario, systems: &SystemsRun) -> Fig14Result {
    // Extension work: every system extends the same (golden) seeds.
    let seedex_cfg = SeedExConfig::default();
    let (_scores, seedex_run) = extend_batch(
        &scenario.reference,
        &scenario.reads,
        &systems.casa.smems,
        &seedex_cfg,
    );
    let seedex_s = seedex_run.seconds(&seedex_cfg);
    // BWA-MEM2 extends in software on the 12-thread machine.
    let cpu_ext_s =
        seedex_run.cells as f64 * CPU_S_PER_CELL / (12.0 * I7_6800K.parallel_efficiency);

    // Accelerator seeding times are projected to full-genome pass/fetch
    // depths (see `systems`), so the stage proportions match production
    // workloads rather than the reduced reproduction scale.
    let reads = systems.reads;
    let bwa_seed_s = systems.bwa.seconds(&I7_6800K, 12);
    let pipelines = vec![
        pipeline(SystemKind::BwaMem2, reads, bwa_seed_s, cpu_ext_s),
        pipeline(
            SystemKind::CasaSeedEx,
            reads,
            systems.casa_seconds_projected(),
            seedex_s,
        ),
        pipeline(
            SystemKind::ErtSeedEx,
            reads,
            systems.ert_seconds_projected(),
            seedex_s,
        ),
        pipeline(
            SystemKind::GenaxSeedEx,
            reads,
            systems.genax_seconds_projected(),
            seedex_s,
        ),
    ];
    Fig14Result { pipelines }
}

/// Renders the figure (stage seconds plus totals normalized to BWA-MEM2).
pub fn table(result: &Fig14Result) -> Table {
    let mut t = Table::new(
        "Figure 14: end-to-end running time (normalized to BWA-MEM2)",
        &[
            "system",
            "IO",
            "seeding",
            "pre-ext",
            "extension",
            "post",
            "total(s)",
            "normalized",
        ],
    );
    let base = result.pipelines[0].total();
    for p in &result.pipelines {
        let seed_display = if p.seeding_parallel_with_extension {
            format!("{:.4} (∥)", p.seeding)
        } else {
            format!("{:.4}", p.seeding)
        };
        t.row([
            p.system.name().to_string(),
            format!("{:.4}", p.io),
            seed_display,
            format!("{:.4}", p.pre_extension),
            format!("{:.4}", p.extension),
            format!("{:.4}", p.post),
            format!("{:.4}", p.total()),
            format!("{:.3}", p.total() / base),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn casa_pipeline_is_fastest_bwa_slowest() {
        let result = run(Scale::Small);
        let total = |kind: SystemKind| {
            result
                .pipelines
                .iter()
                .find(|p| p.system == kind)
                .unwrap()
                .total()
        };
        let bwa = total(SystemKind::BwaMem2);
        let casa = total(SystemKind::CasaSeedEx);
        let ert = total(SystemKind::ErtSeedEx);
        let genax = total(SystemKind::GenaxSeedEx);
        // Paper: CASA+SeedEx is 2.4x over ERT+SeedEx, 1.4x over
        // GenAx+SeedEx, 6x over BWA-MEM2. Enforce the ordering.
        assert!(casa < ert, "CASA {casa} !< ERT {ert}");
        assert!(casa < genax, "CASA {casa} !< GenAx {genax}");
        assert!(casa < bwa, "CASA {casa} !< BWA {bwa}");
        assert!(genax < bwa && ert < bwa);
    }
}
