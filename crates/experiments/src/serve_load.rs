//! Load experiment for the `casa-serve` daemon: spawns the real binary
//! against a FASTA reference, fires a burst of concurrent clients (one
//! disconnecting early, one oversized), checks every accepted response
//! byte-for-byte against a direct single-threaded session, then sends
//! SIGTERM and asserts a graceful drain with exit code 0. Results land
//! in `results/serve_load.{csv,json}` and the repo-root
//! `BENCH_serve.json`.
//!
//! The binary under test is located next to the experiment executable
//! (`target/<profile>/casa-serve`); set `CASA_SERVE_BIN` to override.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use casa_core::{CasaConfig, SeedingSession};
use casa_genome::fasta::{write_fasta, FastaRecord};
use casa_genome::synth::{generate_reference, ReferenceProfile};
use casa_genome::{PackedSeq, ReadSimConfig, ReadSimulator};

use crate::report::Table;

/// Environment variable overriding the `casa-serve` binary path.
pub const SERVE_BIN_ENV: &str = "CASA_SERVE_BIN";

/// Reference length served by the daemon under test.
pub const REF_LEN: usize = 30_000;
/// Partition length handed to `--partition-len`.
pub const PART_LEN: usize = 8_000;
/// Read length handed to `--read-len`.
pub const READ_LEN: usize = 101;

/// What the load run observed.
#[derive(Clone, Debug)]
pub struct ServeLoadReport {
    /// Concurrent well-formed clients fired at the daemon.
    pub clients: usize,
    /// Requests answered `200` with a seeded TSV body.
    pub accepted: usize,
    /// Requests shed with a typed `503` overload body.
    pub shed: usize,
    /// The oversized request came back `413 request_too_large`.
    pub oversized_rejected: bool,
    /// Every `200` body matched the direct session byte-for-byte.
    pub bit_identical: bool,
    /// `/metrics` exposed sane counters for the observed traffic.
    pub metrics_sane: bool,
    /// `casa_requests_cancelled_total` after the early disconnect.
    pub cancelled_total: f64,
    /// The daemon exited 0 after SIGTERM.
    pub drain_exit_zero: bool,
    /// Wall-clock from SIGTERM to process exit.
    pub drain: Duration,
    /// Wall-clock of the whole client burst.
    pub burst: Duration,
}

impl ServeLoadReport {
    /// The acceptance gate: typed shedding only, bit-identical accepted
    /// output, sane metrics, graceful drain.
    pub fn clean(&self) -> bool {
        self.accepted + self.shed == self.clients
            && self.accepted >= 1
            && self.oversized_rejected
            && self.bit_identical
            && self.metrics_sane
            && self.drain_exit_zero
    }
}

/// Locates the `casa-serve` binary: `CASA_SERVE_BIN`, else a sibling of
/// the current executable (both live in `target/<profile>/`).
///
/// # Errors
///
/// A human-readable message when neither resolves to an existing file.
pub fn serve_binary() -> Result<PathBuf, String> {
    if let Ok(path) = std::env::var(SERVE_BIN_ENV) {
        let path = PathBuf::from(path);
        return if path.is_file() {
            Ok(path)
        } else {
            Err(format!("{SERVE_BIN_ENV}={} does not exist", path.display()))
        };
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe
        .parent()
        .ok_or_else(|| "experiment binary has no parent directory".to_string())?;
    let candidate = dir.join("casa-serve");
    if candidate.is_file() {
        Ok(candidate)
    } else {
        Err(format!(
            "{} not found (build it with `cargo build -p casa` or set {SERVE_BIN_ENV})",
            candidate.display()
        ))
    }
}

/// The deterministic workload every client posts.
pub fn workload(read_count: usize) -> (PackedSeq, Vec<PackedSeq>) {
    let reference = generate_reference(&ReferenceProfile::human_like(), REF_LEN, 77);
    let reads = ReadSimulator::new(ReadSimConfig::default(), 23)
        .simulate(&reference, read_count)
        .into_iter()
        .map(|r| r.seq)
        .collect();
    (reference, reads)
}

/// The server's TSV contract rendered from a direct single-threaded
/// session — the bit-identity oracle.
pub fn expected_tsv(reference: &PackedSeq, reads: &[PackedSeq]) -> String {
    let part_len = PART_LEN.min(reference.len().saturating_sub(1).max(1));
    let config = CasaConfig::builder()
        .partition_len(part_len)
        .read_len(READ_LEN.max(2))
        .build()
        .expect("derived config is valid");
    let run = SeedingSession::new(reference, config, 1)
        .expect("session builds")
        .seed_reads(reads);
    let mut out = String::new();
    for (ri, smems) in run.smems.iter().enumerate() {
        for s in smems {
            let joined = s
                .hits
                .iter()
                .map(|h| h.to_string())
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{ri}\t{}\t{}\t{joined}\n",
                s.read_start, s.read_end
            ));
        }
    }
    out
}

/// Parses the daemon's `listening <addr>` stdout announcement.
pub fn parse_listening(line: &str) -> Option<SocketAddr> {
    line.trim().strip_prefix("listening ")?.parse().ok()
}

/// Picks the value of the first sample of `name` in a Prometheus text
/// page (ignoring `# HELP`/`# TYPE` lines; label sets allowed).
pub fn metric_value(metrics: &str, name: &str) -> Option<f64> {
    metrics
        .lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| {
            l.strip_prefix(name)
                .is_some_and(|rest| rest.starts_with(' ') || rest.starts_with('{'))
        })
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// Sums every labelled sample of `name`.
pub fn metric_sum(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.strip_prefix(name)
                .is_some_and(|rest| rest.starts_with(' ') || rest.starts_with('{'))
        })
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum()
}

struct Response {
    status: u16,
    body: Vec<u8>,
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    tenant: &str,
    body: &[u8],
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: casa\r\nX-Casa-Tenant: {tenant}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let status: u16 = std::str::from_utf8(&raw[..header_end])
        .ok()
        .and_then(|h| h.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status"))?;
    Ok(Response {
        status,
        body: raw[header_end + 4..].to_vec(),
    })
}

/// Runs the load experiment against a freshly spawned daemon.
///
/// `quick` (the CI `--test` mode) shrinks the burst; gates and
/// artifacts are identical.
///
/// # Errors
///
/// A human-readable message when the binary is missing, fails to start,
/// or violates the drain contract badly enough that the run cannot
/// continue.
///
/// # Panics
///
/// Panics on filesystem errors writing the temp reference — environment
/// errors, not experiment outcomes.
pub fn run(quick: bool) -> Result<ServeLoadReport, String> {
    let bin = serve_binary()?;
    let clients = if quick { 6 } else { 12 };
    let (reference, reads) = workload(if quick { 16 } else { 32 });
    let expected = expected_tsv(&reference, &reads);
    let mut body = String::new();
    for read in &reads {
        body.push_str(&read.to_string());
        body.push('\n');
    }

    let dir = std::env::temp_dir().join(format!("casa_serve_load_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    let fasta = dir.join("ref.fa");
    {
        let file = std::fs::File::create(&fasta).expect("temp FASTA is writable");
        write_fasta(
            file,
            &[FastaRecord {
                name: "serve_load_ref".into(),
                seq: reference.clone(),
            }],
        )
        .expect("temp FASTA writes");
    }

    // Stalled tiles plus a one-deep queue and a single seeding worker
    // guarantee the burst overloads admission control.
    let mut child = Command::new(&bin)
        .args([
            "--reference",
            fasta.to_str().expect("temp path is utf-8"),
            "--addr",
            "127.0.0.1:0",
            "--partition-len",
            &PART_LEN.to_string(),
            "--read-len",
            &READ_LEN.to_string(),
            "--threads",
            "2",
            "--seed-workers",
            "1",
            "--queue-depth",
            "1",
            "--max-request-bytes",
            &(body.len() + 64).to_string(),
            "--max-inflight-bytes",
            &(body.len() * 2).to_string(),
            "--fault-spec",
            "seed=5,stall=1.0,stall-ms=15",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
    let result = drive(&mut child, clients, &body, &expected);
    // Whatever happened, never leak the daemon or the temp dir.
    if result.is_err() {
        let _ = child.kill();
    }
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// The spawned-daemon phase: burst, metrics, SIGTERM, exit code.
fn drive(
    child: &mut Child,
    clients: usize,
    body: &str,
    expected: &str,
) -> Result<ServeLoadReport, String> {
    let stdout = child.stdout.take().ok_or("daemon stdout not captured")?;
    let mut lines = BufReader::new(stdout).lines();
    let addr = lines
        .next()
        .and_then(Result::ok)
        .as_deref()
        .and_then(parse_listening)
        .ok_or("daemon did not announce its address")?;

    // The burst: `clients` well-formed tenants, plus one oversized
    // request and one client that hangs up right after sending.
    let burst_started = Instant::now();
    let oversized = "A".repeat(body.len() * 2);
    let mut outcomes: Vec<(u16, Vec<u8>)> = Vec::new();
    let mut oversize_status = 0u16;
    std::thread::scope(|scope| {
        let normal: Vec<_> = (0..clients)
            .map(|i| {
                scope.spawn(move || {
                    let tenant = format!("tenant-{i}");
                    request(addr, "POST", "/seed", &tenant, body.as_bytes())
                })
            })
            .collect();
        let oversize =
            scope.spawn(|| request(addr, "POST", "/seed", "whale", oversized.as_bytes()));
        let _quitter = scope.spawn(move || {
            if let Ok(mut stream) = TcpStream::connect(addr) {
                let head = format!(
                    "POST /seed HTTP/1.1\r\nHost: casa\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                );
                let _ = stream.write_all(head.as_bytes());
                let _ = stream.write_all(body.as_bytes());
                std::thread::sleep(Duration::from_millis(100));
                let _ = stream.shutdown(Shutdown::Both);
            }
        });
        for h in normal {
            if let Ok(resp) = h.join().expect("client thread panicked") {
                outcomes.push((resp.status, resp.body));
            }
        }
        oversize_status = oversize
            .join()
            .expect("oversize thread panicked")
            .map(|r| r.status)
            .unwrap_or(0);
    });
    let burst = burst_started.elapsed();

    let accepted = outcomes.iter().filter(|(s, _)| *s == 200).count();
    let shed = outcomes
        .iter()
        .filter(|(s, b)| {
            *s == 503 && String::from_utf8_lossy(b).contains("\"error\":\"overloaded\"")
        })
        .count();
    let bit_identical = outcomes
        .iter()
        .filter(|(s, _)| *s == 200)
        .all(|(_, b)| String::from_utf8_lossy(b) == expected);

    // Give the cancelled (disconnected) job time to be observed, then
    // read the metrics page.
    let mut cancelled_total = 0.0;
    let mut metrics_page = String::new();
    let metrics_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(resp) = request(addr, "GET", "/metrics", "probe", b"") {
            metrics_page = String::from_utf8_lossy(&resp.body).into_owned();
            cancelled_total =
                metric_value(&metrics_page, "casa_requests_cancelled_total").unwrap_or(0.0);
            if cancelled_total >= 1.0 || Instant::now() >= metrics_deadline {
                break;
            }
        } else if Instant::now() >= metrics_deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let metrics_sane = metric_value(&metrics_page, "casa_requests_accepted_total")
        .is_some_and(|v| v >= accepted as f64)
        && metric_sum(&metrics_page, "casa_requests_rejected_total") >= shed as f64
        && metric_value(&metrics_page, "casa_request_seconds_count").is_some_and(|v| v >= 1.0)
        && metric_value(&metrics_page, "casa_read_passes_total").is_some_and(|v| v >= 1.0)
        && metrics_page.contains("casa_stage_nanos_total{stage=");

    // Graceful drain: SIGTERM, then the daemon must exit 0 on its own.
    let drain_started = Instant::now();
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .map_err(|e| format!("cannot send SIGTERM: {e}"))?;
    if !status.success() {
        return Err("kill -TERM failed".to_string());
    }
    let exit = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                if drain_started.elapsed() > Duration::from_secs(30) {
                    return Err("daemon did not exit within 30 s of SIGTERM".to_string());
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(format!("wait failed: {e}")),
        }
    };
    Ok(ServeLoadReport {
        clients,
        accepted,
        shed,
        oversized_rejected: oversize_status == 413,
        bit_identical,
        metrics_sane,
        cancelled_total,
        drain_exit_zero: exit.success(),
        drain: drain_started.elapsed(),
        burst,
    })
}

/// Renders the report.
pub fn table(r: &ServeLoadReport) -> Table {
    let mut t = Table::new(
        "casa-serve load: admission control, bit-identity, graceful drain",
        &["metric", "value"],
    );
    let yn = |b: bool| if b { "yes" } else { "NO" }.to_string();
    let mut row = |k: &str, v: String| t.row([k.to_string(), v]);
    row("concurrent clients", r.clients.to_string());
    row("accepted (200)", r.accepted.to_string());
    row("shed typed (503)", r.shed.to_string());
    row("oversized rejected (413)", yn(r.oversized_rejected));
    row("accepted bit-identical", yn(r.bit_identical));
    row("metrics sane", yn(r.metrics_sane));
    row("cancelled total", format!("{:.0}", r.cancelled_total));
    row(
        "burst wall-clock",
        format!("{:.1} ms", r.burst.as_secs_f64() * 1e3),
    );
    row("SIGTERM exit 0", yn(r.drain_exit_zero));
    row(
        "drain wall-clock",
        format!("{:.1} ms", r.drain.as_secs_f64() * 1e3),
    );
    t
}

/// The repo-root `BENCH_serve.json` record.
pub fn bench_json(r: &ServeLoadReport) -> String {
    serde_json::json!({
        "experiment": "serve_load",
        "clients": r.clients,
        "accepted": r.accepted,
        "shed_typed": r.shed,
        "oversized_rejected": r.oversized_rejected,
        "bit_identical": r.bit_identical,
        "metrics_sane": r.metrics_sane,
        "cancelled_total": r.cancelled_total,
        "burst_ms": r.burst.as_secs_f64() * 1e3,
        "drain_exit_zero": r.drain_exit_zero,
        "drain_ms": r.drain.as_secs_f64() * 1e3,
        "clean": r.clean(),
    })
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listening_line_parses() {
        assert_eq!(
            parse_listening("listening 127.0.0.1:43210\n"),
            Some("127.0.0.1:43210".parse().unwrap())
        );
        assert_eq!(parse_listening("something else"), None);
    }

    #[test]
    fn metric_helpers_read_prometheus_text() {
        let page = "# TYPE casa_requests_accepted_total counter\n\
                    casa_requests_accepted_total 7\n\
                    casa_requests_rejected_total{reason=\"queue_full\"} 2\n\
                    casa_requests_rejected_total{reason=\"inflight_bytes\"} 3\n";
        assert_eq!(
            metric_value(page, "casa_requests_accepted_total"),
            Some(7.0)
        );
        // Prefix matching must not cross metric-name boundaries.
        assert_eq!(metric_value(page, "casa_requests_accepted"), None);
        assert_eq!(metric_sum(page, "casa_requests_rejected_total"), 5.0);
    }

    #[test]
    fn expected_tsv_is_nonempty_and_deterministic() {
        let (reference, reads) = workload(4);
        let a = expected_tsv(&reference, &reads);
        let b = expected_tsv(&reference, &reads);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn report_gate_requires_every_leg() {
        let good = ServeLoadReport {
            clients: 6,
            accepted: 2,
            shed: 4,
            oversized_rejected: true,
            bit_identical: true,
            metrics_sane: true,
            cancelled_total: 1.0,
            drain_exit_zero: true,
            drain: Duration::from_millis(40),
            burst: Duration::from_millis(300),
        };
        assert!(good.clean());
        let mut bad = good.clone();
        bad.drain_exit_zero = false;
        assert!(!bad.clean());
        let mut bad = good.clone();
        bad.shed = 3; // one client unaccounted for
        assert!(!bad.clean());
        let mut bad = good;
        bad.bit_identical = false;
        assert!(!bad.clean());
    }
}
