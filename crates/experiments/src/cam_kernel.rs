//! CAM kernel harness: the scalar reference match-line model versus the
//! word-kernel backends (scalar-`u64`, unrolled `u64x4`, AVX2) on three
//! workloads — a per-query search microbenchmark, the query-blocked
//! batched search, and the end-to-end Fig. 12 session workload — with
//! output equality asserted on every run. Written to
//! `results/cam_kernel.{csv,json}` and the repo-root `BENCH_kernels.json`
//! by the `cam_kernel` binary.

use std::time::Instant;

use casa_cam::{Bcam, CamQuery, EntryMask, KernelBackend, MAX_BATCH};
use casa_core::SeedingSession;

use crate::report::{ratio, Table};
use crate::scenario::{Genome, Scale, Scenario};

/// Entry width (bases per CAM row) used by the microbenchmark, matching
/// the `kernels` bench partition geometry.
const ENTRY_BASES: usize = 40;
/// Query length in bases (the seed k-mer length of the evaluation).
const QUERY_LEN: usize = 19;
/// Wildcard padding appended to each query.
const QUERY_PAD: usize = 3;
/// Timed samples per measurement (median reported).
const SAMPLES: usize = 15;

/// The search microbenchmark, per-query kernel.
pub const WORKLOAD_MICRO: &str = "micro";
/// The search microbenchmark through [`Bcam::search_batch_into`].
pub const WORKLOAD_BATCHED: &str = "micro-batched";
/// The end-to-end single-worker seeding session.
pub const WORKLOAD_SESSION: &str = "session";
/// Kernel label of the scalar entry-walk reference model.
pub const ORACLE: &str = "oracle";
/// Kernel label of the PR 3 single-`u64` word kernel — the speedup
/// baseline ([`KernelBackend::Scalar`]).
pub const BASELINE: &str = "scalar";

/// One timed configuration (workload x kernel).
#[derive(Clone, Debug)]
pub struct KernelTiming {
    /// Workload label ([`WORKLOAD_MICRO`] etc.).
    pub workload: &'static str,
    /// Kernel label ([`ORACLE`] or a [`KernelBackend`] name).
    pub kernel: &'static str,
    /// Median wall time of one batch, nanoseconds.
    pub median_ns: u128,
    /// Work items per batch (queries or reads).
    pub items: usize,
}

impl KernelTiming {
    /// Median nanoseconds per work item.
    pub fn ns_per_item(&self) -> f64 {
        self.median_ns as f64 / self.items as f64
    }
}

/// The harness output: every supported backend on every workload.
#[derive(Clone, Debug)]
pub struct CamKernelReport {
    /// All timings, grouped by workload in table order.
    pub timings: Vec<KernelTiming>,
    /// CAM entries in the microbenchmark partition.
    pub entries: usize,
}

impl CamKernelReport {
    /// The timing of one (workload, kernel) cell, if measured.
    pub fn timing(&self, workload: &str, kernel: &str) -> Option<&KernelTiming> {
        self.timings
            .iter()
            .find(|t| t.workload == workload && t.kernel == kernel)
    }

    /// Speedup of a cell over the same workload-family `scalar` baseline
    /// (`micro-batched` compares against per-query `micro/scalar`, the
    /// PR 3 kernel it is meant to beat).
    pub fn speedup(&self, workload: &str, kernel: &str) -> f64 {
        let base_workload = if workload == WORKLOAD_SESSION {
            WORKLOAD_SESSION
        } else {
            WORKLOAD_MICRO
        };
        let base = self
            .timing(base_workload, BASELINE)
            .expect("baseline cell always measured");
        let cell = self.timing(workload, kernel).expect("cell measured");
        base.median_ns as f64 / cell.median_ns as f64
    }

    /// The fastest batched backend — the PR 5 headline configuration.
    pub fn best_batched(&self) -> &KernelTiming {
        self.timings
            .iter()
            .filter(|t| t.workload == WORKLOAD_BATCHED)
            .min_by_key(|t| t.median_ns)
            .expect("at least one batched backend is always measured")
    }

    /// Headline speedup: fastest batched backend over the per-query
    /// `u64` kernel (the acceptance gate asks for >= 4x at 1000 entries).
    pub fn headline_speedup(&self) -> f64 {
        let best = self.best_batched();
        self.speedup(best.workload, best.kernel)
    }

    /// Oracle-vs-`u64` speedup on the microbenchmark (the PR 3 claim,
    /// kept monitored).
    pub fn micro_speedup(&self) -> f64 {
        1.0 / self.speedup(WORKLOAD_MICRO, ORACLE)
    }

    /// End-to-end session gain of the fastest word backend over the
    /// per-query `u64` kernel session.
    pub fn session_speedup(&self) -> f64 {
        self.timings
            .iter()
            .filter(|t| t.workload == WORKLOAD_SESSION && t.kernel != ORACLE)
            .map(|t| self.speedup(t.workload, t.kernel))
            .fold(0.0, f64::max)
    }
}

/// Warms up once, then returns the median wall time of `samples` calls.
fn median_ns<R: FnMut()>(samples: usize, mut f: R) -> u128 {
    f();
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos().max(1)
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Runs every workload at `scale` across all supported backends,
/// asserting backend/oracle equality before each measurement.
///
/// # Panics
///
/// Panics if any word backend — per-query or batched — disagrees with
/// the scalar reference on any hit list, CAM statistic, SMEM, or seeding
/// statistic: the equality the kernel layer must preserve.
pub fn run(scale: Scale) -> CamKernelReport {
    let scenario = Scenario::build(Genome::HumanLike, scale);
    let mut timings = Vec::new();

    // Microbenchmark: one partition-sized CAM, a batch of read prefixes.
    let part_len = scale.partition_len().min(scenario.reference.len());
    let part = scenario.reference.subseq(0, part_len);
    let entries = Bcam::new(&part, ENTRY_BASES).entries();
    let full = EntryMask::all(entries);
    let queries: Vec<CamQuery> = scenario
        .reads
        .iter()
        .take(50)
        .map(|r| CamQuery::padded(r, 0, QUERY_LEN, QUERY_PAD))
        .collect();

    // Oracle reference: hits and CamStats every backend must reproduce.
    let mut oracle = Bcam::new(&part, ENTRY_BASES);
    oracle.set_scalar_search(true);
    let oracle_hits: Vec<Vec<u32>> = queries.iter().map(|q| oracle.search(q, &full)).collect();
    let oracle_stats = oracle.stats();

    let mut hits = Vec::new();
    let mut batch_hits: Vec<Vec<u32>> = Vec::new();
    for backend in KernelBackend::supported() {
        let mut cam = Bcam::new(&part, ENTRY_BASES);
        cam.set_kernel_backend(backend);
        // Per-query equality gate, then timing.
        for (q, expect) in queries.iter().zip(&oracle_hits) {
            assert_eq!(
                &cam.search(q, &full),
                expect,
                "{backend} per-query hits diverged from the scalar reference"
            );
        }
        assert_eq!(
            cam.stats(),
            oracle_stats,
            "{backend} CamStats diverged from the scalar reference"
        );
        timings.push(KernelTiming {
            workload: WORKLOAD_MICRO,
            kernel: backend.as_str(),
            median_ns: median_ns(SAMPLES, || {
                for q in &queries {
                    cam.search_into(q, &full, &mut hits);
                }
            }),
            items: queries.len(),
        });

        // Batched equality gate (fresh CAM so stats line up), then timing.
        let mut cam = Bcam::new(&part, ENTRY_BASES);
        cam.set_kernel_backend(backend);
        cam.search_batch_into(&queries, &full, &mut batch_hits);
        assert_eq!(
            batch_hits, oracle_hits,
            "{backend} batched hits diverged from the scalar reference"
        );
        assert_eq!(
            cam.stats(),
            oracle_stats,
            "{backend} batched CamStats diverged from the scalar reference"
        );
        timings.push(KernelTiming {
            workload: WORKLOAD_BATCHED,
            kernel: backend.as_str(),
            median_ns: median_ns(SAMPLES, || {
                cam.search_batch_into(&queries, &full, &mut batch_hits);
            }),
            items: queries.len(),
        });
    }

    // Oracle timing last so its CAM keeps the reference stats above.
    timings.push(KernelTiming {
        workload: WORKLOAD_MICRO,
        kernel: ORACLE,
        median_ns: median_ns(SAMPLES, || {
            for q in &queries {
                oracle.search_into(q, &full, &mut hits);
            }
        }),
        items: queries.len(),
    });

    // End-to-end: the Fig. 12 session workload, one worker so the kernel
    // delta isn't hidden behind scheduling noise.
    let reads = &scenario.reads[..scenario.reads.len().min(50)];
    let session = SeedingSession::new(&scenario.reference, scenario.casa_config(), 1)
        .expect("scenario config is valid");
    session.set_scalar_search(true);
    let run_oracle = session.seed_reads(reads);
    timings.push(KernelTiming {
        workload: WORKLOAD_SESSION,
        kernel: ORACLE,
        median_ns: median_ns(SAMPLES, || {
            session.seed_reads(reads);
        }),
        items: reads.len(),
    });
    session.set_scalar_search(false);
    for backend in KernelBackend::supported() {
        session.set_kernel_backend(backend);
        let run = session.seed_reads(reads);
        assert_eq!(
            run.smems, run_oracle.smems,
            "{backend} session SMEMs diverged from the scalar reference"
        );
        assert_eq!(
            run.stats, run_oracle.stats,
            "{backend} session SeedingStats diverged from the scalar reference"
        );
        timings.push(KernelTiming {
            workload: WORKLOAD_SESSION,
            kernel: backend.as_str(),
            median_ns: median_ns(SAMPLES, || {
                session.seed_reads(reads);
            }),
            items: reads.len(),
        });
    }

    CamKernelReport { timings, entries }
}

/// Renders the report (saved as `results/cam_kernel.{csv,json}`).
pub fn table(report: &CamKernelReport) -> Table {
    let mut t = Table::new(
        "CAM kernel: scalar reference vs word-kernel backends",
        &["workload", "kernel", "median_ns", "ns_per_item", "speedup"],
    );
    for timing in &report.timings {
        let speedup = if timing.kernel == BASELINE && timing.workload != WORKLOAD_BATCHED {
            String::new()
        } else {
            ratio(report.speedup(timing.workload, timing.kernel))
        };
        t.row([
            timing.workload.to_string(),
            timing.kernel.to_string(),
            timing.median_ns.to_string(),
            format!("{:.1}", timing.ns_per_item()),
            speedup,
        ]);
    }
    t
}

/// Renders the machine-readable cross-PR perf record written to the
/// repo-root `BENCH_kernels.json`.
pub fn bench_json(report: &CamKernelReport, scale: Scale) -> String {
    let best = report.best_batched();
    let rows: Vec<serde_json::Value> = report
        .timings
        .iter()
        .map(|t| {
            serde_json::json!({
                "workload": t.workload,
                "kernel": t.kernel,
                "median_ns": t.median_ns as u64,
                "ns_per_item": t.ns_per_item(),
                "items": t.items,
                "speedup_vs_scalar": report.speedup(t.workload, t.kernel),
            })
        })
        .collect();
    let value = serde_json::json!({
        "experiment": "cam_kernel",
        "scale": format!("{scale:?}").to_lowercase(),
        "entries": report.entries,
        "max_batch": MAX_BATCH,
        "baseline": { "workload": WORKLOAD_MICRO, "kernel": BASELINE },
        "headline": {
            "workload": best.workload,
            "kernel": best.kernel,
            "speedup": report.headline_speedup(),
        },
        "session_speedup": report.session_speedup(),
        "rows": rows,
    });
    value.to_string() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_kernels_are_not_slower() {
        let report = run(Scale::Small);
        assert!(report.entries > 0);
        // The equality asserts inside run() are the real payload; timing
        // only needs to be sane and the word kernels clearly ahead of the
        // entry-walk oracle even at small scale.
        assert!(report.micro_speedup() > 2.0);
        // Every supported backend is measured on all three workloads,
        // plus the oracle on micro and session.
        let backends = KernelBackend::supported().count();
        assert_eq!(report.timings.len(), 3 * backends + 2);
        let t = table(&report);
        assert_eq!(t.rows.len(), report.timings.len());
        let json: serde_json::Value =
            serde_json::from_str(&bench_json(&report, Scale::Small)).expect("bench json parses");
        assert_eq!(json["rows"].as_array().unwrap().len(), report.timings.len());
        assert!(json["headline"]["speedup"].as_f64().unwrap() > 0.0);
    }
}
