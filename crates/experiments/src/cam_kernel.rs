//! CAM kernel harness: the scalar reference match-line model versus the
//! bit-parallel plane kernel, measured two ways — a single-partition
//! search microbenchmark and the end-to-end Fig. 12 session workload —
//! with output equality asserted on every run. Written to
//! `results/cam_kernel.{csv,json}` by the `cam_kernel` binary.

use std::time::Instant;

use casa_cam::{Bcam, CamQuery, EntryMask};
use casa_core::SeedingSession;

use crate::report::{ratio, Table};
use crate::scenario::{Genome, Scale, Scenario};

/// Entry width (bases per CAM row) used by the microbenchmark, matching
/// the `kernels` bench partition geometry.
const ENTRY_BASES: usize = 40;
/// Query length in bases (the seed k-mer length of the evaluation).
const QUERY_LEN: usize = 19;
/// Wildcard padding appended to each query.
const QUERY_PAD: usize = 3;
/// Timed samples per measurement (median reported).
const SAMPLES: usize = 15;

/// One timed configuration (kernel x workload).
#[derive(Clone, Debug)]
pub struct KernelTiming {
    /// Row label, e.g. `micro/scalar`.
    pub name: &'static str,
    /// Median wall time of one batch, nanoseconds.
    pub median_ns: u128,
    /// Work items per batch (queries or reads).
    pub items: usize,
}

impl KernelTiming {
    /// Median nanoseconds per work item.
    pub fn ns_per_item(&self) -> f64 {
        self.median_ns as f64 / self.items as f64
    }
}

/// The harness output: both kernels on both workloads.
#[derive(Clone, Debug)]
pub struct CamKernelReport {
    /// Scalar reference kernel, single-partition search batch.
    pub micro_scalar: KernelTiming,
    /// Bit-parallel kernel, same search batch.
    pub micro_bitparallel: KernelTiming,
    /// Scalar kernel, full seeding session batch.
    pub session_scalar: KernelTiming,
    /// Bit-parallel kernel, same session batch.
    pub session_bitparallel: KernelTiming,
    /// CAM entries in the microbenchmark partition.
    pub entries: usize,
}

impl CamKernelReport {
    /// Scalar / bit-parallel median ratio on the search microbenchmark.
    pub fn micro_speedup(&self) -> f64 {
        self.micro_scalar.median_ns as f64 / self.micro_bitparallel.median_ns as f64
    }

    /// Scalar / bit-parallel median ratio on the end-to-end session batch.
    pub fn session_speedup(&self) -> f64 {
        self.session_scalar.median_ns as f64 / self.session_bitparallel.median_ns as f64
    }
}

/// Warms up once, then returns the median wall time of `samples` calls.
fn median_ns<R: FnMut()>(samples: usize, mut f: R) -> u128 {
    f();
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos().max(1)
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Runs both workloads at `scale`, asserting kernel/oracle equality.
///
/// # Panics
///
/// Panics if the bit-parallel kernel disagrees with the scalar reference
/// on any hit list, CAM statistic, SMEM, or seeding statistic — the
/// equality the kernel rewrite must preserve.
pub fn run(scale: Scale) -> CamKernelReport {
    let scenario = Scenario::build(Genome::HumanLike, scale);

    // Microbenchmark: one partition-sized CAM, a batch of read prefixes.
    let part_len = scale.partition_len().min(scenario.reference.len());
    let part = scenario.reference.subseq(0, part_len);
    let mut cam = Bcam::new(&part, ENTRY_BASES);
    let entries = cam.entries();
    let full = EntryMask::all(entries);
    let queries: Vec<CamQuery> = scenario
        .reads
        .iter()
        .take(50)
        .map(|r| CamQuery::padded(r, 0, QUERY_LEN, QUERY_PAD))
        .collect();

    // Equality gate before timing: identical hits per query, and the two
    // kernels must book identical CamStats over the whole batch.
    let mut oracle = Bcam::new(&part, ENTRY_BASES);
    oracle.set_scalar_search(true);
    for q in &queries {
        assert_eq!(
            cam.search(q, &full),
            oracle.search(q, &full),
            "bit-parallel hits diverged from the scalar reference"
        );
    }
    assert_eq!(
        cam.stats(),
        oracle.stats(),
        "bit-parallel CamStats diverged from the scalar reference"
    );

    let mut hits = Vec::new();
    let micro_bitparallel = KernelTiming {
        name: "micro/bitparallel",
        median_ns: median_ns(SAMPLES, || {
            for q in &queries {
                cam.search_into(q, &full, &mut hits);
            }
        }),
        items: queries.len(),
    };
    cam.set_scalar_search(true);
    let micro_scalar = KernelTiming {
        name: "micro/scalar",
        median_ns: median_ns(SAMPLES, || {
            for q in &queries {
                cam.search_into(q, &full, &mut hits);
            }
        }),
        items: queries.len(),
    };

    // End-to-end: the Fig. 12 session workload, one worker so the kernel
    // delta isn't hidden behind scheduling noise.
    let reads = &scenario.reads[..scenario.reads.len().min(50)];
    let session = SeedingSession::new(&scenario.reference, scenario.casa_config(), 1)
        .expect("scenario config is valid");
    let run_bp = session.seed_reads(reads);
    session.set_scalar_search(true);
    let run_scalar = session.seed_reads(reads);
    assert_eq!(
        run_bp.smems, run_scalar.smems,
        "session SMEMs diverged between kernels"
    );
    assert_eq!(
        run_bp.stats, run_scalar.stats,
        "session SeedingStats diverged between kernels"
    );

    let session_scalar = KernelTiming {
        name: "session/scalar",
        median_ns: median_ns(SAMPLES, || {
            session.seed_reads(reads);
        }),
        items: reads.len(),
    };
    session.set_scalar_search(false);
    let session_bitparallel = KernelTiming {
        name: "session/bitparallel",
        median_ns: median_ns(SAMPLES, || {
            session.seed_reads(reads);
        }),
        items: reads.len(),
    };

    CamKernelReport {
        micro_scalar,
        micro_bitparallel,
        session_scalar,
        session_bitparallel,
        entries,
    }
}

/// Renders the report (saved as `results/cam_kernel.{csv,json}`).
pub fn table(report: &CamKernelReport) -> Table {
    let mut t = Table::new(
        "CAM kernel: scalar reference vs bit-parallel match lines",
        &["workload", "kernel", "median_ns", "ns_per_item", "speedup"],
    );
    let rows = [
        (&report.micro_scalar, String::new()),
        (&report.micro_bitparallel, ratio(report.micro_speedup())),
        (&report.session_scalar, String::new()),
        (&report.session_bitparallel, ratio(report.session_speedup())),
    ];
    for (timing, speedup) in rows {
        let (workload, kernel) = timing.name.split_once('/').unwrap_or((timing.name, ""));
        t.row([
            workload.to_string(),
            kernel.to_string(),
            timing.median_ns.to_string(),
            format!("{:.1}", timing.ns_per_item()),
            speedup,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_kernel_is_not_slower() {
        let report = run(Scale::Small);
        assert!(report.entries > 0);
        // The equality asserts inside run() are the real payload; timing
        // only needs to be sane and the kernel clearly ahead on the micro
        // workload even at small scale.
        assert!(report.micro_speedup() > 2.0);
        let t = table(&report);
        assert_eq!(t.rows.len(), 4);
    }
}
