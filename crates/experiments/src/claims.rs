//! Quantitative side-claims of §7.1 and §7.2, reproduced by ablation:
//!
//! * the filter-enabled SMEM algorithm gives "~30× speedup per read"
//!   (§7.1) — measured as naive vs filtered computing cycles per read;
//! * exact-match pre-processing "prevents ~80 % of reads from the
//!   expensive SMEM searching computation, which provides 2.77× speedup"
//!   (§7.1);
//! * selective CAM enabling consumes "only 4.2 % of the power compared to
//!   the naive implementation that enables all CAM entries" (§7.2).

use casa_core::{CasaConfig, PartitionEngine, SeedingStats};
use casa_genome::{PackedSeq, ReadSimConfig, ReadSimulator};

use crate::report::Table;
use crate::scenario::{Genome, Scale, Scenario, READ_LEN};

/// Measured values for the side-claims.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Claims {
    /// Computing cycles per read, naive vs filter-enabled. Our naive
    /// searches the *non-overlapped* CAM without indicators, so it tries
    /// all `stride` paddings per pivot; the paper's naive uses the
    /// overlapped table of Fig. 6b (no padding), which is `stride`×
    /// cheaper. Divide by [`Claims::stride`] to compare with the ~30×.
    pub filter_speedup: f64,
    /// The CAM stride (for the overlapped-naive conversion above).
    pub stride: usize,
    /// Fraction of read passes settled by exact-match pre-processing
    /// (paper ~0.8).
    pub exact_read_fraction: f64,
    /// Seeding-stage speedup from the exact-match pre-processing
    /// (paper 2.77×).
    pub exact_speedup: f64,
    /// CAM energy with selective enabling relative to enabling every
    /// entry on every search (paper 0.042).
    pub gating_energy_ratio: f64,
}

fn run_engine(
    part: &PackedSeq,
    reads: &[PackedSeq],
    exact: bool,
    table: bool,
    analysis: bool,
) -> SeedingStats {
    let mut config = CasaConfig::paper(part.len(), READ_LEN);
    config.partitioning = casa_genome::PartitionScheme::new(part.len(), READ_LEN - 1);
    config.exact_match_preprocessing = exact;
    config.use_filter_table = table;
    config.use_pivot_analysis = analysis;
    let mut engine = PartitionEngine::new(part, config).expect("valid config");
    let mut stats = SeedingStats::default();
    for read in reads {
        engine.seed_read(read, &mut stats);
    }
    stats
}

/// Runs the ablations on one human-like partition.
pub fn run(scale: Scale) -> Claims {
    let scenario = Scenario::build(Genome::HumanLike, scale);
    let part_len = scale
        .partition_len()
        .min(200_000)
        .min(scenario.reference.len());
    let part = scenario.reference.subseq(0, part_len);
    let read_cap = match scale {
        Scale::Small => 60,
        Scale::Medium => 250,
        Scale::Large => 600,
    };
    // The naive ablation scans the whole CAM per pivot; debug builds run
    // those loops ~15x slower, so shrink the batch to keep `cargo test`
    // in minutes (release experiments use the full cap).
    let read_cap = if cfg!(debug_assertions) {
        read_cap / 4
    } else {
        read_cap
    };
    // Reads drawn from this partition, forward strand, so the exact-match
    // fraction matches the paper's per-locus view (a production read is
    // exact in exactly the partition holding its locus).
    let sim = ReadSimulator::new(
        ReadSimConfig {
            rc_fraction: 0.0,
            ..ReadSimConfig::default()
        },
        0xC1A1,
    );
    let reads: Vec<PackedSeq> = sim
        .simulate(&part, read_cap)
        .into_iter()
        .map(|r| r.seq)
        .collect();

    let full = run_engine(&part, &reads, true, true, true);
    let no_exact = run_engine(&part, &reads, false, true, true);
    let naive = run_engine(&part, &reads, false, false, false);

    // Total CAM entries for the all-enabled energy reference.
    let entries = part.len().div_ceil(40) as u64;
    let all_rows = full.cam.searches * entries;

    Claims {
        filter_speedup: naive.computing_cycles as f64 / no_exact.computing_cycles.max(1) as f64,
        stride: 40,
        exact_read_fraction: full.exact_match_reads as f64 / full.read_passes.max(1) as f64,
        exact_speedup: no_exact.computing_cycles as f64 / full.computing_cycles.max(1) as f64,
        gating_energy_ratio: full.cam.rows_enabled as f64 / all_rows.max(1) as f64,
    }
}

/// Renders the claims table, paper vs measured.
pub fn table(c: &Claims) -> Table {
    let mut t = Table::new(
        "Side-claims of §7.1 / §7.2: paper vs this reproduction",
        &["claim", "paper", "measured"],
    );
    t.row([
        "filter-enabled algorithm speedup per read".into(),
        "~30x (vs overlapped naive)".into(),
        format!(
            "{:.1}x vs padded naive ({:.1}x overlapped-equivalent)",
            c.filter_speedup,
            c.filter_speedup / c.stride as f64
        ),
    ]);
    t.row([
        "reads settled by exact-match pre-processing".into(),
        "~80%".into(),
        format!("{:.1}%", c.exact_read_fraction * 100.0),
    ]);
    t.row([
        "speedup from exact-match pre-processing".into(),
        "2.77x".into(),
        format!("{:.2}x", c.exact_speedup),
    ]);
    t.row([
        "CAM energy vs all-entries-enabled".into(),
        "4.2%".into(),
        format!("{:.2}%", c.gating_energy_ratio * 100.0),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_match_paper_shape() {
        let c = run(Scale::Small);
        // Filtering gives a large per-read speedup; in the paper's
        // overlapped-naive terms (÷ stride) it should land near ~30x.
        let overlapped_equiv = c.filter_speedup / c.stride as f64;
        assert!(
            overlapped_equiv > 3.0,
            "overlapped-equivalent filter speedup {overlapped_equiv:.1} too small"
        );
        // Most reads are exact and skip SMEM search (paper ~80%).
        assert!(
            (0.5..=0.95).contains(&c.exact_read_fraction),
            "exact fraction {:.2}",
            c.exact_read_fraction
        );
        // The fast path speeds seeding up materially (paper 2.77x).
        assert!(
            c.exact_speedup > 1.3,
            "exact speedup {:.2} too small",
            c.exact_speedup
        );
        // Selective enabling keeps CAM energy at a few percent of the
        // enable-everything baseline (paper 4.2%).
        assert!(
            c.gating_energy_ratio < 0.30,
            "gating ratio {:.3} too high",
            c.gating_energy_ratio
        );
    }
}
