//! Validation of the synthetic genomes against the statistics the paper's
//! filter design leans on (§4.1): "when GRCh38 is fragmented into 768
//! parts, the first part only contains 0.003 % of all possible 19-mers
//! while it contains more than 80 % of all possible 10-mers".
//!
//! For each k we report, on one partition: the distinct-k-mer count (via
//! the LCP array), its share of the 4^k space, and the duplication factor
//! (occurrences per distinct k-mer) that the repeat structure produces.

use casa_index::lcp::{distinct_kmers, lcp_array, lcp_stats};
use casa_index::SuffixArray;

use crate::report::Table;
use crate::scenario::{Genome, Scale, Scenario};

/// One k row of the statistics table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GenomeStatsRow {
    /// k-mer size.
    pub k: usize,
    /// Distinct k-mers in the partition.
    pub distinct: usize,
    /// Total k-mer occurrences in the partition.
    pub total: usize,
    /// Fraction of the 4^k space present (`distinct / 4^k`).
    pub space_coverage: f64,
    /// Occurrences per distinct k-mer.
    pub duplication: f64,
}

/// Repeat-structure summary of the partition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepeatSummary {
    /// Partition length in bases.
    pub partition_len: usize,
    /// Longest repeated substring (max LCP).
    pub longest_repeat: u32,
    /// Mean LCP (average shared prefix between rank-adjacent suffixes).
    pub mean_lcp: f64,
}

/// Runs the statistics on one partition of `genome`.
pub fn run(genome: Genome, scale: Scale) -> (Vec<GenomeStatsRow>, RepeatSummary) {
    let scenario = Scenario::build(genome, scale);
    let part_len = scale.partition_len().min(scenario.reference.len());
    let part = scenario.reference.subseq(0, part_len);
    let sa = SuffixArray::build(&part);
    let lcp = lcp_array(&sa);

    let rows = [6usize, 10, 12, 16, 19]
        .into_iter()
        .map(|k| {
            let distinct = distinct_kmers(&sa, &lcp, k);
            let total = part.len().saturating_sub(k - 1);
            let space = 4f64.powi(k as i32);
            GenomeStatsRow {
                k,
                distinct,
                total,
                space_coverage: distinct as f64 / space,
                duplication: total as f64 / distinct.max(1) as f64,
            }
        })
        .collect();

    let stats = lcp_stats(&lcp, 19);
    (
        rows,
        RepeatSummary {
            partition_len: part.len(),
            longest_repeat: stats.max,
            mean_lcp: stats.mean,
        },
    )
}

/// Renders the statistics.
pub fn table(genome: Genome, rows: &[GenomeStatsRow], summary: &RepeatSummary) -> Table {
    let mut t = Table::new(
        &format!(
            "Synthetic genome statistics, {} ({} bp partition; longest repeat {} bp, mean LCP {:.1})",
            genome.name(),
            summary.partition_len,
            summary.longest_repeat,
            summary.mean_lcp
        ),
        &["k", "distinct k-mers", "total k-mers", "4^k coverage", "dup factor"],
    );
    for r in rows {
        t.row([
            r.k.to_string(),
            r.distinct.to_string(),
            r.total.to_string(),
            format!("{:.5}%", r.space_coverage * 100.0),
            format!("{:.2}", r.duplication),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_follow_the_papers_premise() {
        let (rows, summary) = run(Genome::HumanLike, Scale::Small);
        assert_eq!(rows.len(), 5);
        // Space coverage collapses as k grows (the §4.1 observation).
        for pair in rows.windows(2) {
            assert!(
                pair[1].space_coverage < pair[0].space_coverage,
                "coverage must fall with k"
            );
        }
        // Small k saturates a large share of its space; k=19 a sliver.
        let k6 = rows.iter().find(|r| r.k == 6).unwrap();
        let k19 = rows.iter().find(|r| r.k == 19).unwrap();
        assert!(k6.space_coverage > 0.5, "6-mers should be mostly present");
        assert!(k19.space_coverage < 1e-6, "19-mers must be vanishing");
        // Repeats exist and produce duplication at small k.
        assert!(k6.duplication > 2.0);
        assert!(summary.longest_repeat > 50, "repeat-rich profile");
    }

    #[test]
    fn mouse_profile_differs_from_human() {
        let (h, _) = run(Genome::HumanLike, Scale::Small);
        let (m, _) = run(Genome::MouseLike, Scale::Small);
        let h19 = h.iter().find(|r| r.k == 19).unwrap();
        let m19 = m.iter().find(|r| r.k == 19).unwrap();
        assert_ne!(h19.distinct, m19.distinct);
    }
}
