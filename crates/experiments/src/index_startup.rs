//! Cold-start-to-first-seed: rebuilding the index from the reference
//! versus mmap-loading a prebuilt index image. The tentpole claim of the
//! zero-copy image work is that a served process should reach its first
//! seeded read in O(ms) instead of paying the full index construction
//! (suffix array, filter tables, CAM bitplanes) on every start. Before
//! any timing, the mapped index's SMEM stream is asserted bit-identical
//! to the freshly built one's. Written to `results/index_startup.{csv,json}`
//! and the repo-root `BENCH_startup.json` by the `index_startup` binary.

use std::path::PathBuf;
use std::time::Instant;

use casa_core::{build_index_image, BackendKind, FaultPlan, LoadedIndex, SeedingSession};

use crate::report::{ratio, Table};
use crate::scenario::{Genome, Scale, Scenario};

/// Timed cold-start samples per path (best-of reported).
const SAMPLES: usize = 5;
/// Reads in the first-seed probe batch: enough to touch every partition
/// without turning the measurement into a throughput benchmark.
const PROBE_READS: usize = 16;

/// The harness output: matched cold-start timings for the rebuild and
/// mmap paths on the identical workload.
#[derive(Clone, Debug)]
pub struct IndexStartupReport {
    /// Reference length in bases.
    pub reference_bases: usize,
    /// Partitions in the index.
    pub partitions: usize,
    /// Image size on disk, bytes.
    pub image_bytes: u64,
    /// Image content fingerprint.
    pub fingerprint: u64,
    /// One-time cost of building and persisting the image, nanoseconds
    /// (paid once, amortized over every later mmap start).
    pub image_build_ns: u128,
    /// Best-of cold start via full rebuild: construct the session from
    /// the raw reference and seed the probe batch, nanoseconds.
    pub rebuild_first_seed_ns: u128,
    /// Best-of cold start via mmap: fast-open the image (header + meta
    /// verification; payload checksums deferred, as the serve startup
    /// path does), borrow the session off it, and seed the probe batch,
    /// nanoseconds.
    pub mmap_first_seed_ns: u128,
    /// Of the mmap cold start, nanoseconds spent in the fast open alone.
    pub mmap_open_ns: u128,
    /// Best-of time of a *fully verifying* open (every payload checksum
    /// — the `index inspect` / reload path), nanoseconds. Reported so
    /// the cost of deferred verification is visible next to the
    /// headline.
    pub full_verify_open_ns: u128,
    /// Total SMEMs in the (identical) probe outputs.
    pub probe_smems: usize,
}

impl IndexStartupReport {
    /// Best-of milliseconds of the rebuild cold start.
    pub fn rebuild_ms(&self) -> f64 {
        self.rebuild_first_seed_ns as f64 / 1e6
    }

    /// Best-of milliseconds of the mmap cold start.
    pub fn mmap_ms(&self) -> f64 {
        self.mmap_first_seed_ns as f64 / 1e6
    }

    /// Milliseconds of the one-time image build + persist.
    pub fn image_build_ms(&self) -> f64 {
        self.image_build_ns as f64 / 1e6
    }

    /// Cold-start speedup of the mmap path over the rebuild path — the
    /// number the PR's >= 10x acceptance gate reads at medium scale.
    pub fn speedup(&self) -> f64 {
        self.rebuild_first_seed_ns as f64 / self.mmap_first_seed_ns as f64
    }
}

/// Times one call of `f`, nanoseconds (clamped to at least 1).
fn time_ns<R>(f: impl FnOnce() -> R) -> (u128, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_nanos().max(1), out)
}

/// Runs the cold-start comparison at `scale`, asserting SMEM
/// bit-identity between the mapped and rebuilt sessions before timing.
///
/// # Panics
///
/// Panics if the image cannot be built or mapped in a scratch
/// directory, or if the mapped session's SMEMs diverge from the
/// freshly built session's — the zero-copy loader must be invisible to
/// seeding output.
pub fn run(scale: Scale) -> IndexStartupReport {
    run_with(scale, false)
}

/// [`run`] with an optional quick mode (fewer samples) for CI smoke
/// runs; the bit-identity gate is identical in both modes.
pub fn run_with(scale: Scale, quick: bool) -> IndexStartupReport {
    let samples = if quick { 2 } else { SAMPLES };
    let scenario = Scenario::build(Genome::HumanLike, scale);
    let config = scenario.casa_config();
    let probe = &scenario.reads[..scenario.reads.len().min(PROBE_READS)];

    let dir = scratch_dir(scale);
    let path = dir.join("startup.casaimg");
    let (image_build_ns, build_report) =
        time_ns(|| build_index_image(&scenario.reference, config, &path).expect("image builds"));

    // Bit-identity gate before any timing: the mapped session must emit
    // the exact SMEM stream of a freshly built one.
    let fresh = SeedingSession::new(&scenario.reference, config, 1).expect("config is valid");
    let golden = fresh.seed_reads(probe);
    let index = LoadedIndex::open(&path).expect("image maps");
    let mapped = SeedingSession::from_image(&index, 1, FaultPlan::default(), BackendKind::Cam)
        .expect("mapped session");
    let mapped_run = mapped.seed_reads(probe);
    assert_eq!(
        mapped_run.smems, golden.smems,
        "mapped index diverged from the fresh build"
    );
    assert!(
        golden.smems.iter().any(|s| !s.is_empty()),
        "probe batch must produce SMEMs"
    );
    drop((fresh, mapped, index));

    // Cold-start timings, interleaved pair by pair so both paths see the
    // same machine conditions; best-of is the noise-robust estimator.
    let mut rebuild_first_seed_ns = u128::MAX;
    let mut mmap_first_seed_ns = u128::MAX;
    let mut mmap_open_ns = u128::MAX;
    let mut full_verify_open_ns = u128::MAX;
    for _ in 0..samples {
        let (rebuild_ns, _) = time_ns(|| {
            let session =
                SeedingSession::new(&scenario.reference, config, 1).expect("config is valid");
            session.seed_reads(probe)
        });
        rebuild_first_seed_ns = rebuild_first_seed_ns.min(rebuild_ns);

        let (full_ns, _) = time_ns(|| LoadedIndex::open(&path).expect("image verifies"));
        full_verify_open_ns = full_verify_open_ns.min(full_ns);

        let (open_ns, index) = time_ns(|| LoadedIndex::open_fast(&path).expect("image maps"));
        let (seed_ns, _) = time_ns(|| {
            let session =
                SeedingSession::from_image(&index, 1, FaultPlan::default(), BackendKind::Cam)
                    .expect("mapped session");
            session.seed_reads(probe)
        });
        mmap_open_ns = mmap_open_ns.min(open_ns);
        mmap_first_seed_ns = mmap_first_seed_ns.min(open_ns + seed_ns);
    }

    let image_bytes = build_report.bytes;
    let report = IndexStartupReport {
        reference_bases: scenario.reference.len(),
        partitions: build_report.partitions,
        image_bytes,
        fingerprint: build_report.fingerprint,
        image_build_ns,
        rebuild_first_seed_ns,
        mmap_first_seed_ns,
        mmap_open_ns,
        full_verify_open_ns,
        probe_smems: golden.smems.iter().map(Vec::len).sum(),
    };
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// A scratch directory unique to this process + scale.
fn scratch_dir(scale: Scale) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "casa_index_startup_{}_{scale:?}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Renders the report (saved as `results/index_startup.{csv,json}`).
pub fn table(report: &IndexStartupReport) -> Table {
    let mut t = Table::new(
        "Cold start to first seed: rebuild vs mmap'd index image",
        &["path", "first_seed_ms", "notes"],
    );
    t.row([
        "rebuild".to_string(),
        format!("{:.3}", report.rebuild_ms()),
        format!(
            "index built from {} bases every start",
            report.reference_bases
        ),
    ]);
    t.row([
        "mmap".to_string(),
        format!("{:.3}", report.mmap_ms()),
        format!(
            "fast open {:.3} ms of a {} byte image (full verify {:.3} ms)",
            report.mmap_open_ns as f64 / 1e6,
            report.image_bytes,
            report.full_verify_open_ns as f64 / 1e6,
        ),
    ]);
    t.row([
        "speedup".to_string(),
        ratio(report.speedup()),
        format!(
            "one-time image build {:.1} ms, fingerprint {:016x}",
            report.image_build_ms(),
            report.fingerprint
        ),
    ]);
    t
}

/// Renders the machine-readable cross-PR perf record written to the
/// repo-root `BENCH_startup.json`.
pub fn bench_json(report: &IndexStartupReport, scale: Scale) -> String {
    let value = serde_json::json!({
        "experiment": "index_startup",
        "scale": format!("{scale:?}").to_lowercase(),
        "reference_bases": report.reference_bases,
        "partitions": report.partitions,
        "probe_reads": PROBE_READS,
        "probe_smems": report.probe_smems,
        "image_bytes": report.image_bytes,
        "fingerprint": format!("{:016x}", report.fingerprint),
        "headline": {
            "rebuild_first_seed_ms": report.rebuild_ms(),
            "mmap_first_seed_ms": report.mmap_ms(),
            "mmap_open_ms": report.mmap_open_ns as f64 / 1e6,
            "full_verify_open_ms": report.full_verify_open_ns as f64 / 1e6,
            "image_build_once_ms": report.image_build_ms(),
            "cold_start_speedup": report.speedup(),
        },
    });
    value.to_string() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_bit_identity_holds() {
        let report = run_with(Scale::Small, true);
        // The bit-identity assert inside run() is the real payload.
        assert!(report.probe_smems > 0);
        assert!(report.image_bytes > 0);
        assert!(report.partitions >= 1);
        assert!(report.speedup() > 0.0);
        let t = table(&report);
        assert_eq!(t.rows.len(), 3);
        let json: serde_json::Value =
            serde_json::from_str(&bench_json(&report, Scale::Small)).expect("bench json parses");
        assert_eq!(json["experiment"], "index_startup");
        assert!(json["headline"]["cold_start_speedup"].as_f64().unwrap() > 0.0);
        assert_eq!(
            json["fingerprint"].as_str().unwrap(),
            format!("{:016x}", report.fingerprint)
        );
    }
}
