//! Figure 15: average number of pivots per read that trigger SMEM
//! computation, for one reference partition — naive vs filter table vs
//! table + analysis (the paper reports 98.9 % / 99.9 % filtered).

use casa_core::{CasaConfig, PartitionEngine, SeedingStats};

use crate::report::Table;
use crate::scenario::{Genome, Scale, Scenario, READ_LEN};

/// One bar of Fig. 15.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig15Row {
    /// Variant label (`naive` / `table` / `table+analysis`).
    pub variant: &'static str,
    /// Average RMEM computations per read.
    pub rmems_per_read: f64,
    /// Fraction of pivots filtered before RMEM computation.
    pub filter_rate: f64,
}

/// Runs the three ablations on one partition of the human-like genome.
///
/// The naive variant probes the CAM for *every* pivot, so the workload is
/// capped (smaller partition slice and read subset) to keep runtime sane;
/// all three variants see the identical capped workload.
pub fn run(scale: Scale) -> Vec<Fig15Row> {
    let scenario = Scenario::build(Genome::HumanLike, scale);
    let part_len = scale
        .partition_len()
        .min(250_000)
        .min(scenario.reference.len());
    let part = scenario.reference.subseq(0, part_len);
    let read_cap = match scale {
        Scale::Small => 60,
        Scale::Medium => 250,
        Scale::Large => 600,
    };
    // The naive variant probes the whole CAM per pivot; debug builds run
    // ~15x slower, so shrink the batch there (release uses the full cap).
    let read_cap = if cfg!(debug_assertions) {
        read_cap / 4
    } else {
        read_cap
    };
    let reads: Vec<_> = scenario.reads.iter().take(read_cap).cloned().collect();

    let variants: [(&'static str, bool, bool); 3] = [
        ("naive", false, false),
        ("table", true, false),
        ("table+analysis", true, true),
    ];
    variants
        .into_iter()
        .map(|(variant, table, analysis)| {
            let mut config = CasaConfig::paper(part_len, READ_LEN);
            config.partitioning = casa_genome::PartitionScheme::new(part_len, READ_LEN - 1);
            config.use_filter_table = table;
            config.use_pivot_analysis = analysis;
            // Exact-match pre-processing would hide the per-pivot effect
            // the figure isolates.
            config.exact_match_preprocessing = false;
            let mut engine = PartitionEngine::new(&part, config).expect("valid config");
            let mut stats = SeedingStats::default();
            for read in &reads {
                engine.seed_read(read, &mut stats);
            }
            Fig15Row {
                variant,
                rmems_per_read: stats.rmems_per_read(),
                filter_rate: stats.pivot_filter_rate(),
            }
        })
        .collect()
}

/// Renders the figure.
pub fn table(rows: &[Fig15Row]) -> Table {
    let mut t = Table::new(
        "Figure 15: avg pivots triggering SMEM computation per read (one partition)",
        &["variant", "pivots/read", "filtered"],
    );
    for r in rows {
        t.row([
            r.variant.to_string(),
            format!("{:.3}", r.rmems_per_read),
            format!("{:.2}%", r.filter_rate * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filtering_ladder_matches_paper_shape() {
        let rows = run(Scale::Small);
        assert_eq!(rows.len(), 3);
        let (naive, table, analysis) = (&rows[0], &rows[1], &rows[2]);
        // Naive computes an RMEM for every pivot.
        assert!(
            (naive.rmems_per_read - (READ_LEN - 19 + 1) as f64).abs() < 1e-9,
            "naive should search every pivot, got {}",
            naive.rmems_per_read
        );
        // Table filters the vast majority (paper: 98.9 %).
        assert!(
            table.filter_rate > 0.80,
            "table filter rate {} too low",
            table.filter_rate
        );
        assert!(table.rmems_per_read < naive.rmems_per_read / 5.0);
        // Analysis filters strictly more.
        assert!(analysis.rmems_per_read <= table.rmems_per_read);
        assert!(analysis.filter_rate >= table.filter_rate);
    }
}
