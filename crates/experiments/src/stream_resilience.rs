//! Kill/resume resilience sweep for the supervised streaming runtime:
//! for every fault plan in the [`crate::fault_sweep`] roster (including
//! the long-stall plan that runs under a watchdog deadline), stream the
//! human-like read batch, cancel mid-run from inside the sink, resume
//! from the checkpoint with a *fresh* session, and verify the merged
//! per-batch SMEM output is bit-identical to an uninterrupted run while
//! read residency stays within the `batch_reads × (ring_capacity + 2)`
//! bound. Swept at 1, 2, and 8 worker threads per plan.

use std::collections::BTreeMap;
use std::convert::Infallible;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use casa_core::{FaultPlan, SeedingSession, StreamBatch, StreamConfig, StreamingSession};
use casa_genome::PackedSeq;
use casa_index::Smem;

use crate::fault_sweep;
use crate::report::Table;
use crate::scenario::{Genome, Scale, Scenario};

/// Worker-thread counts exercised for every fault plan.
pub const WORKER_SWEEP: [usize; 3] = [1, 2, 8];

/// One kill/resume sample.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceRow {
    /// Fault-plan description (the `--fault-spec` syntax).
    pub spec: String,
    /// Worker threads used by every session in this row.
    pub workers: usize,
    /// Batches in the uninterrupted baseline run.
    pub batches: u64,
    /// Batches durably sunk before the mid-run cancellation.
    pub cancelled_batches: u64,
    /// Batches seeded by the resumed run.
    pub resumed_batches: u64,
    /// Watchdog deadline stalls across the cancelled + resumed runs.
    pub deadline_stalls: u64,
    /// Highest read residency observed across all three runs.
    pub peak_inflight_reads: u64,
    /// The configured residency bound (`batch_reads × (ring + 2)`).
    pub inflight_bound: u64,
    /// Whether cancelled ∪ resumed batches matched the baseline bit for
    /// bit.
    pub output_identical: bool,
}

/// Per-batch SMEM output, keyed by batch index.
type BatchOutputs = BTreeMap<u64, Vec<Vec<Smem>>>;

/// Runs the sweep on the human-like scenario.
///
/// # Panics
///
/// Panics if a built-in spec fails to parse, a session rejects the
/// scenario configuration, or a streaming run fails outright —
/// programming errors, not data-dependent ones.
pub fn run(scale: Scale) -> Vec<ResilienceRow> {
    let scenario = Scenario::build(Genome::HumanLike, scale);
    let batch_reads = (scale.read_count() / 10).max(8);
    let dir = std::env::temp_dir().join(format!(
        "casa_stream_resilience_{}_{:?}",
        std::process::id(),
        scale
    ));
    fs::create_dir_all(&dir).expect("temp checkpoint dir is writable");

    let mut rows = Vec::new();
    for spec in fault_sweep::specs() {
        let plan = FaultPlan::parse(spec).expect("built-in spec parses");
        for &workers in &WORKER_SWEEP {
            let ckpt = dir.join(format!("row{}.ckpt", rows.len()));
            rows.push(run_point(
                &scenario,
                spec,
                &plan,
                fault_sweep::deadline_for(&plan),
                workers,
                batch_reads,
                &ckpt,
            ));
        }
    }
    let _ = fs::remove_dir_all(&dir);
    rows
}

/// One (plan, workers) sample: baseline, cancelled run, resumed run.
fn run_point(
    scenario: &Scenario,
    spec: &str,
    plan: &FaultPlan,
    deadline: Option<Duration>,
    workers: usize,
    batch_reads: usize,
    ckpt: &Path,
) -> ResilienceRow {
    let config = scenario.casa_config();
    let build = |checkpoint: Option<PathBuf>| {
        let session = SeedingSession::with_fault_plan(&scenario.reference, config, workers, *plan)
            .expect("scenario config is valid");
        StreamingSession::new(
            session,
            StreamConfig {
                batch_reads,
                tile_deadline: deadline,
                checkpoint,
                checkpoint_every: 1,
                ..StreamConfig::default()
            },
        )
        .expect("stream config is valid")
    };
    let source = || scenario.reads.iter().cloned().map(Ok::<_, Infallible>);
    let collect = |into: &mut BatchOutputs, batch: &StreamBatch<PackedSeq>| {
        into.insert(batch.index, batch.forward.smems.clone());
        Ok(Vec::new())
    };

    // Uninterrupted baseline (no checkpoint journal).
    let mut baseline = BatchOutputs::new();
    let base_report = build(None)
        .run(source(), |b| collect(&mut baseline, b))
        .expect("baseline streaming run succeeds");

    // Kill: cancel from inside the sink once half the batches are sunk.
    let streaming = build(Some(ckpt.to_path_buf()));
    let token = streaming.cancel_token();
    let stop_after = (base_report.batches / 2).max(1);
    let mut merged = BatchOutputs::new();
    let first = streaming
        .run(source(), |b| {
            collect(&mut merged, b)?;
            if merged.len() as u64 == stop_after {
                token.cancel();
            }
            Ok(Vec::new())
        })
        .expect("cancelled streaming run drains cleanly");
    assert!(first.cancelled, "{spec}: run was not actually interrupted");

    // Resume: a fresh session replays only the unfinished batches.
    let resumed = build(Some(ckpt.to_path_buf()));
    let checkpoint = resumed
        .load_checkpoint(ckpt)
        .expect("checkpoint loads and matches the fingerprint");
    let second = resumed
        .resume(source(), |b| collect(&mut merged, b), &checkpoint)
        .expect("resumed streaming run succeeds");

    let ring = StreamConfig::default().ring_capacity as u64;
    ResilienceRow {
        spec: spec.to_string(),
        workers,
        batches: base_report.batches,
        cancelled_batches: first.batches,
        resumed_batches: second.batches,
        deadline_stalls: first.stats.deadline_stalls + second.stats.deadline_stalls,
        peak_inflight_reads: base_report
            .peak_inflight_reads
            .max(first.peak_inflight_reads)
            .max(second.peak_inflight_reads),
        inflight_bound: batch_reads as u64 * (ring + 2),
        output_identical: merged == baseline,
    }
}

/// Renders the sweep.
pub fn table(rows: &[ResilienceRow]) -> Table {
    let mut t = Table::new(
        "Streaming kill/resume sweep (merged output vs uninterrupted run)",
        &[
            "fault spec",
            "workers",
            "batches",
            "cancel@",
            "resumed",
            "deadline stalls",
            "peak reads",
            "bound",
            "output",
        ],
    );
    for r in rows {
        t.row([
            r.spec.clone(),
            r.workers.to_string(),
            r.batches.to_string(),
            r.cancelled_batches.to_string(),
            r.resumed_batches.to_string(),
            r.deadline_stalls.to_string(),
            r.peak_inflight_reads.to_string(),
            r.inflight_bound.to_string(),
            if r.output_identical {
                "bit-identical"
            } else {
                "DIVERGED"
            }
            .into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_and_resume_merges_bit_identically_at_small_scale() {
        let rows = run(Scale::Small);
        assert_eq!(rows.len(), fault_sweep::specs().len() * WORKER_SWEEP.len());
        for r in &rows {
            assert!(
                r.output_identical,
                "{} at {} workers diverged",
                r.spec, r.workers
            );
            assert!(
                r.peak_inflight_reads <= r.inflight_bound,
                "{} at {} workers: {} resident reads exceeds the bound {}",
                r.spec,
                r.workers,
                r.peak_inflight_reads,
                r.inflight_bound
            );
            assert!(r.cancelled_batches < r.batches, "cancel happened too late");
            assert!(r.resumed_batches > 0, "resume replayed nothing");
            assert_eq!(r.cancelled_batches + r.resumed_batches, r.batches);
        }
        // The long-stall plan must exercise the watchdog path.
        assert!(rows.iter().any(|r| r.deadline_stalls > 0));
    }
}
