//! Figure 12: seeding throughput (Mreads/s) of B-12T, B-32T, CASA, ERT
//! and GenAx on the human-like and mouse-like references.

use crate::report::{mreads, Table};
use crate::scenario::{Genome, Scale, Scenario};
use crate::systems::{SystemsRun, Throughput};

/// One panel (a or b) of Fig. 12.
#[derive(Debug)]
pub struct Fig12Panel {
    /// Which genome the panel covers.
    pub genome: Genome,
    /// The five bars.
    pub bars: Vec<Throughput>,
    /// The full systems run (reused by other figures).
    pub run: SystemsRun,
}

/// Runs one panel.
pub fn run_panel(genome: Genome, scale: Scale) -> Fig12Panel {
    let scenario = Scenario::build(genome, scale);
    let run = SystemsRun::execute(&scenario);
    Fig12Panel {
        genome,
        bars: run.throughputs(),
        run,
    }
}

/// Runs both panels.
pub fn run(scale: Scale) -> Vec<Fig12Panel> {
    vec![
        run_panel(Genome::HumanLike, scale),
        run_panel(Genome::MouseLike, scale),
    ]
}

/// Renders the figure.
pub fn table(panels: &[Fig12Panel]) -> Table {
    let mut t = Table::new(
        "Figure 12: seeding throughput (Mreads/s)",
        &[
            "genome",
            "B-12T",
            "B-32T",
            "CASA",
            "ERT",
            "GenAx",
            "CASA/ERT",
            "CASA/GenAx",
            "CASA/B-12T",
        ],
    );
    for p in panels {
        let get = |name: &str| {
            p.bars
                .iter()
                .find(|b| b.system == name)
                .map(|b| b.reads_per_s)
                .unwrap_or(0.0)
        };
        let casa = get("CASA");
        t.row([
            p.genome.name().to_string(),
            mreads(get("B-12T")),
            mreads(get("B-32T")),
            mreads(casa),
            mreads(get("ERT")),
            mreads(get("GenAx")),
            format!("{:.2}x", casa / get("ERT")),
            format!("{:.2}x", casa / get("GenAx")),
            format!("{:.2}x", casa / get("B-12T")),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_panels_have_expected_ordering() {
        for panel in run(Scale::Small) {
            let run = &panel.run;
            // Paper shape: CASA > GenAx, CASA > B-32T > B-12T.
            assert!(run.throughput_of("CASA") > run.throughput_of("GenAx"));
            assert!(run.throughput_of("CASA") > run.throughput_of("B-32T"));
            assert!(run.throughput_of("B-32T") > run.throughput_of("B-12T"));
            // Accelerators are well clear of software.
            assert!(run.throughput_of("ERT") > run.throughput_of("B-12T"));
        }
    }
}
