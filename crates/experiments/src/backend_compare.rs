//! Seeding backend head-to-head: the CAM accelerator model versus the
//! FM-index golden model and the ERT walker, driven through the *same*
//! [`casa_core::SeedingSession`] path (one worker, so the backend delta
//! is not hidden behind scheduling noise) on both evaluation genomes —
//! with SMEM equality asserted against the CAM run before every
//! measurement. Written to `results/backend_compare.{csv,json}` and the
//! repo-root `BENCH_backends.json` by the `backend_compare` binary.

use std::time::Instant;

use casa_core::{BackendKind, FaultPlan, SeedingSession};

use crate::report::{ratio, Table};
use crate::scenario::{Genome, Scale, Scenario};

/// Timed samples per measurement (median reported).
const SAMPLES: usize = 9;
/// Reads per timed batch (capped so medium/large scale stays minutes,
/// not hours; equality is still asserted over the whole capped batch).
const MAX_READS: usize = 200;
/// The speedup baseline: every row is compared against the CAM backend
/// on the same genome.
pub const BASELINE: BackendKind = BackendKind::Cam;

/// One timed configuration (genome x backend).
#[derive(Clone, Debug)]
pub struct BackendTiming {
    /// Which genome the workload models.
    pub genome: Genome,
    /// Which seeding backend ran.
    pub backend: BackendKind,
    /// Median wall time of one batch, nanoseconds.
    pub median_ns: u128,
    /// Reads per batch.
    pub items: usize,
    /// Total SMEMs emitted for the batch (identical across backends by
    /// construction — recorded so the artifact self-documents that).
    pub smems: usize,
}

impl BackendTiming {
    /// Median nanoseconds per read.
    pub fn ns_per_read(&self) -> f64 {
        self.median_ns as f64 / self.items as f64
    }
}

/// The harness output: every backend on every genome.
#[derive(Clone, Debug)]
pub struct BackendCompareReport {
    /// All timings, grouped by genome in table order.
    pub timings: Vec<BackendTiming>,
}

impl BackendCompareReport {
    /// The timing of one (genome, backend) cell, if measured.
    pub fn timing(&self, genome: Genome, backend: BackendKind) -> Option<&BackendTiming> {
        self.timings
            .iter()
            .find(|t| t.genome == genome && t.backend == backend)
    }

    /// Speedup of the CAM baseline over `backend` on `genome` (> 1 means
    /// the CAM path is faster, the paper's claim).
    pub fn cam_speedup(&self, genome: Genome, backend: BackendKind) -> f64 {
        let base = self
            .timing(genome, BASELINE)
            .expect("baseline cell always measured");
        let cell = self.timing(genome, backend).expect("cell measured");
        cell.median_ns as f64 / base.median_ns as f64
    }

    /// Worst-case CAM advantage across genomes over `backend` (the
    /// headline is conservative: the smaller of the two speedups).
    pub fn headline_speedup(&self, backend: BackendKind) -> f64 {
        [Genome::HumanLike, Genome::MouseLike]
            .into_iter()
            .map(|g| self.cam_speedup(g, backend))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Warms up once, then returns the median wall time of `samples` calls.
fn median_ns<R: FnMut()>(samples: usize, mut f: R) -> u128 {
    f();
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos().max(1)
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Runs every backend on both genomes at `scale`, asserting SMEM
/// equality against the CAM backend before each measurement.
///
/// # Panics
///
/// Panics if any backend disagrees with the CAM backend on any SMEM —
/// the equivalence contract of [`casa_core::backend::SeedingBackend`].
pub fn run(scale: Scale) -> BackendCompareReport {
    let mut timings = Vec::new();
    for genome in [Genome::HumanLike, Genome::MouseLike] {
        let scenario = Scenario::build(genome, scale);
        let reads = &scenario.reads[..scenario.reads.len().min(MAX_READS)];

        // CAM first: its output is the equality reference for the rest.
        let mut cam_smems = None;
        for backend in BackendKind::ALL {
            let session = SeedingSession::with_backend(
                &scenario.reference,
                scenario.casa_config(),
                1,
                FaultPlan::default(),
                backend,
            )
            .expect("scenario config is valid");
            let run = session.seed_reads(reads);
            let smems: usize = run.smems.iter().map(Vec::len).sum();
            match &cam_smems {
                None => cam_smems = Some(run.smems),
                Some(expect) => assert_eq!(
                    &run.smems,
                    expect,
                    "{backend} SMEMs diverged from the CAM backend on {}",
                    genome.name()
                ),
            }
            timings.push(BackendTiming {
                genome,
                backend,
                median_ns: median_ns(SAMPLES, || {
                    session.seed_reads(reads);
                }),
                items: reads.len(),
                smems,
            });
        }
    }
    BackendCompareReport { timings }
}

/// Renders the report (saved as `results/backend_compare.{csv,json}`).
pub fn table(report: &BackendCompareReport) -> Table {
    let mut t = Table::new(
        "Seeding backends head-to-head (one session API, one worker)",
        &[
            "genome",
            "backend",
            "median_ns",
            "ns_per_read",
            "smems",
            "cam_speedup",
        ],
    );
    for timing in &report.timings {
        let speedup = if timing.backend == BASELINE {
            String::new()
        } else {
            ratio(report.cam_speedup(timing.genome, timing.backend))
        };
        t.row([
            timing.genome.name().to_string(),
            timing.backend.to_string(),
            timing.median_ns.to_string(),
            format!("{:.1}", timing.ns_per_read()),
            timing.smems.to_string(),
            speedup,
        ]);
    }
    t
}

/// Renders the machine-readable cross-PR perf record written to the
/// repo-root `BENCH_backends.json`.
pub fn bench_json(report: &BackendCompareReport, scale: Scale) -> String {
    let rows: Vec<serde_json::Value> = report
        .timings
        .iter()
        .map(|t| {
            serde_json::json!({
                "genome": t.genome.name(),
                "backend": t.backend.as_str(),
                "median_ns": t.median_ns as u64,
                "ns_per_read": t.ns_per_read(),
                "reads": t.items,
                "smems": t.smems,
                "cam_speedup": report.cam_speedup(t.genome, t.backend),
            })
        })
        .collect();
    let value = serde_json::json!({
        "experiment": "backend_compare",
        "scale": format!("{scale:?}").to_lowercase(),
        "baseline": BASELINE.as_str(),
        "headline": {
            "cam_over_fm": report.headline_speedup(BackendKind::Fm),
            "cam_over_ert": report.headline_speedup(BackendKind::Ert),
        },
        "rows": rows,
    });
    value.to_string() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_backends_agree() {
        let report = run(Scale::Small);
        // Every backend measured on both genomes; the equality asserts
        // inside run() are the real payload.
        assert_eq!(report.timings.len(), 2 * BackendKind::ALL.len());
        for genome in [Genome::HumanLike, Genome::MouseLike] {
            let cam = report.timing(genome, BackendKind::Cam).unwrap();
            assert!(cam.smems > 0, "CAM found no SMEMs on {}", genome.name());
            for backend in [BackendKind::Fm, BackendKind::Ert] {
                let t = report.timing(genome, backend).unwrap();
                assert_eq!(t.smems, cam.smems, "SMEM counts differ");
                assert!(report.cam_speedup(genome, backend) > 0.0);
            }
        }
        let t = table(&report);
        assert_eq!(t.rows.len(), report.timings.len());
        let json: serde_json::Value =
            serde_json::from_str(&bench_json(&report, Scale::Small)).expect("bench json parses");
        assert_eq!(json["rows"].as_array().unwrap().len(), report.timings.len());
        assert!(json["headline"]["cam_over_fm"].as_f64().unwrap() > 0.0);
    }
}
