//! Tiny table/CSV rendering shared by the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A rendered experiment table: header plus rows of cells.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    /// Table title (figure/table id + caption).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV next to the repo under `results/<name>.csv` (plus a
    /// machine-readable `results/<name>.json`) and returns the CSV path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_csv(&self, name: &str) -> io::Result<PathBuf> {
        let dir = Path::new("results");
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, self.to_csv())?;
        fs::write(dir.join(format!("{name}.json")), self.to_json())?;
        Ok(path)
    }

    /// Renders as a JSON object `{title, header, rows}`.
    pub fn to_json(&self) -> String {
        serde_json::json!({
            "title": self.title,
            "header": self.header,
            "rows": self.rows,
        })
        .to_string()
    }
}

/// Formats a throughput in Mreads/s with 3 decimals.
pub fn mreads(v: f64) -> String {
    format!("{:.3}", v / 1e6)
}

/// Formats a ratio like `1.23x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a `[0, 1]` share like `12.3%`.
pub fn percent(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Fig X", &["name", "value"]);
        t.row(["short".into(), "1".into()]);
        t.row(["a-much-longer-name".into(), "23".into()]);
        let text = t.render();
        assert!(text.contains("Fig X"));
        assert!(text.contains("a-much-longer-name"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(["only-one".into()]);
    }

    #[test]
    fn json_round_trips_rows() {
        let mut t = Table::new("j", &["a", "b"]);
        t.row(["1".into(), "x,y".into()]);
        let v: serde_json::Value = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(v["title"], "j");
        assert_eq!(v["rows"][0][1], "x,y");
    }

    #[test]
    fn helpers_format() {
        assert_eq!(mreads(3_456_000.0), "3.456");
        assert_eq!(ratio(5.4699), "5.47x");
    }
}
