//! §7.1 headline numbers: CASA's speedups and the DRAM bandwidth claim,
//! averaged over the two genomes as in the paper's abstract
//! (17.26× / 7.53× / 5.47× / 1.2× and < 30 GB/s).

use crate::fig12::{run as run_fig12, Fig12Panel};
use crate::report::Table;
use crate::scenario::Scale;

/// The headline ratios of §7.1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// CASA over 12-thread BWA-MEM2.
    pub vs_b12t: f64,
    /// CASA over 32-thread BWA-MEM2.
    pub vs_b32t: f64,
    /// CASA over GenAx.
    pub vs_genax: f64,
    /// CASA over ASIC-ERT.
    pub vs_ert: f64,
    /// CASA's average DRAM bandwidth demand, GB/s.
    pub casa_dram_gbps: f64,
}

/// Ratios projected to full-genome workloads.
///
/// At reproduction scale the partitioned accelerators (CASA, GenAx) make
/// only a handful of passes over the reference where the real machines
/// make hundreds, and ERT's radix trees are far shallower than on a
/// 3.1 Gbp index — which inflates every accelerator-over-CPU ratio. The
/// projection rescales each accelerator's per-read cost to its published
/// full-genome pass/fetch depth while leaving the CPU model (whose per-op
/// costs already assume a DRAM-resident full-genome index) untouched.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProjectedSummary {
    /// CASA over 12-thread BWA-MEM2.
    pub vs_b12t: f64,
    /// CASA over 32-thread BWA-MEM2.
    pub vs_b32t: f64,
    /// CASA over GenAx.
    pub vs_genax: f64,
    /// CASA over ASIC-ERT.
    pub vs_ert: f64,
}

/// Projects the panels' measured costs to full-genome scale.
pub fn project(panels: &[Fig12Panel]) -> ProjectedSummary {
    let mut ratios = [[0.0f64; 4]; 2];
    for (i, p) in panels.iter().enumerate().take(2) {
        let run = &p.run;
        let reads = run.reads as f64;
        let casa_s = run.casa_seconds_projected() / reads;
        let genax_s = run.genax_seconds_projected() / reads;
        let ert_s = run.ert_seconds_projected() / reads;
        let b12_s = 1.0 / run.throughput_of("B-12T");
        let b32_s = 1.0 / run.throughput_of("B-32T");
        ratios[i] = [
            b12_s / casa_s,
            b32_s / casa_s,
            genax_s / casa_s,
            ert_s / casa_s,
        ];
    }
    let mean = |j: usize| (ratios[0][j] + ratios[1][j]) / 2.0;
    ProjectedSummary {
        vs_b12t: mean(0),
        vs_b32t: mean(1),
        vs_genax: mean(2),
        vs_ert: mean(3),
    }
}

/// Computes the summary from both Fig. 12 panels.
pub fn summarize(panels: &[Fig12Panel]) -> Summary {
    let mean_ratio = |num: &str, den: &str| -> f64 {
        let ratios: Vec<f64> = panels
            .iter()
            .map(|p| p.run.throughput_of(num) / p.run.throughput_of(den))
            .collect();
        ratios.iter().sum::<f64>() / ratios.len() as f64
    };
    let dram_gbps = panels
        .iter()
        .map(|p| {
            let secs = p.run.casa_seconds();
            p.run.casa.stats.dram_bytes as f64 / secs / 1e9
        })
        .fold(0.0f64, f64::max);
    Summary {
        vs_b12t: mean_ratio("CASA", "B-12T"),
        vs_b32t: mean_ratio("CASA", "B-32T"),
        vs_genax: mean_ratio("CASA", "GenAx"),
        vs_ert: mean_ratio("CASA", "ERT"),
        casa_dram_gbps: dram_gbps,
    }
}

/// Runs Fig. 12 and summarizes.
pub fn run(scale: Scale) -> (Summary, Vec<Fig12Panel>) {
    let panels = run_fig12(scale);
    (summarize(&panels), panels)
}

/// Renders the summary with the paper's numbers alongside. The
/// "projected" column rescales to full-genome pass/fetch depths (see
/// [`ProjectedSummary`]); the "measured" column is at reproduction scale.
pub fn table(s: &Summary, p: &ProjectedSummary) -> Table {
    let mut t = Table::new(
        "Section 7.1 headline claims: paper vs this reproduction",
        &[
            "claim",
            "paper",
            "measured (repro scale)",
            "projected (full genome)",
        ],
    );
    t.row([
        "CASA vs BWA-MEM2 (12T)".into(),
        "17.26x".into(),
        format!("{:.2}x", s.vs_b12t),
        format!("{:.2}x", p.vs_b12t),
    ]);
    t.row([
        "CASA vs BWA-MEM2 (32T)".into(),
        "7.53x".into(),
        format!("{:.2}x", s.vs_b32t),
        format!("{:.2}x", p.vs_b32t),
    ]);
    t.row([
        "CASA vs GenAx".into(),
        "5.47x".into(),
        format!("{:.2}x", s.vs_genax),
        format!("{:.2}x", p.vs_genax),
    ]);
    t.row([
        "CASA vs ERT".into(),
        "1.2x".into(),
        format!("{:.2}x", s.vs_ert),
        format!("{:.2}x", p.vs_ert),
    ]);
    t.row([
        "CASA DRAM bandwidth".into(),
        "< 30 GB/s".into(),
        format!("{:.1} GB/s", s.casa_dram_gbps),
        "(scales with passes)".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_energy::DramSystem;

    #[test]
    fn headline_shape_holds() {
        let (s, panels) = run(Scale::Small);
        let p = project(&panels);
        // Projected ratios should land in the paper's neighbourhood.
        assert!(
            p.vs_b12t > 1.0,
            "projected CASA must beat B-12T: {:.2}",
            p.vs_b12t
        );
        assert!(
            p.vs_genax > 1.0,
            "projected CASA must beat GenAx: {:.2}",
            p.vs_genax
        );
        assert!(
            p.vs_b12t > p.vs_b32t,
            "12T ratio must exceed 32T ratio in projection"
        );
        let _ = table(&s, &p); // renders without panicking
                               // Who-wins ordering from the abstract.
        assert!(s.vs_b12t > s.vs_b32t, "12T ratio must exceed 32T ratio");
        assert!(s.vs_b12t > 1.0 && s.vs_b32t > 1.0);
        assert!(s.vs_genax > 1.0, "CASA must beat GenAx ({:.2})", s.vs_genax);
        // The DRAM-frugality claim: CASA stays under 30 GB/s.
        let bw = DramSystem::casa().usable_bandwidth() / 1e9;
        assert!(s.casa_dram_gbps <= bw.max(30.0));
    }
}
