//! Figure 13: (a) power consumption (W, on-chip vs DRAM+PHY) and
//! (b) energy efficiency (reads/mJ) of CASA, ERT and GenAx.

use casa_core::energy_model::{self, CasaHardwareModel};
use casa_energy::circuits::SRAM_256X256;
use casa_energy::{DramSystem, EnergyLedger, PowerReport};

use crate::report::Table;
use crate::scenario::{Genome, Scale, Scenario};
use crate::systems::SystemsRun;

/// Constant on-chip power of the ASIC-ERT seeding machines + reuse cache
/// (watts). ERT's on-chip side is small; its DRAM dominates.
const ERT_ONCHIP_W: f64 = 2.4;
/// GenAx controller/lane logic power (watts), alongside its SRAM tables.
const GENAX_CTRL_W: f64 = 1.6;
/// GenAx on-chip seed & position table capacity (paper: 68 MB SRAM).
const GENAX_SRAM_BYTES: u64 = 68 << 20;

/// One accelerator's Fig. 13 sample.
#[derive(Clone, Debug)]
pub struct Fig13Row {
    /// System label.
    pub system: &'static str,
    /// On-chip power in watts.
    pub onchip_w: f64,
    /// DRAM + PHY power in watts.
    pub dram_phy_w: f64,
    /// Energy efficiency in reads/mJ.
    pub reads_per_mj: f64,
}

/// Builds the three power reports from an executed systems run.
pub fn rows(run: &SystemsRun) -> Vec<Fig13Row> {
    // CASA: full component model.
    let casa_rep = energy_model::power_report(
        &run.casa,
        &CasaHardwareModel::default(),
        &DramSystem::casa(),
        run.casa_partitions,
    );

    // ERT: constant on-chip power, DRAM power from its fetch traffic.
    let ert_secs = run.ert_seconds();
    let ert_dram = DramSystem::ert();
    let mut ert_ledger = EnergyLedger::new();
    ert_ledger.record_energy("seeding_machines", 0, ERT_ONCHIP_W * ert_secs * 1e12);
    let ert_rep = PowerReport::from_run(
        "ERT",
        &ert_ledger,
        &ert_dram,
        run.ert.dram_bytes(),
        ert_secs,
        run.reads,
    );

    // GenAx: dynamic SRAM energy from counted fetches/intersections +
    // table leakage + controller power; read-streaming DRAM.
    let genax_secs = run.genax_seconds();
    let genax_dram = DramSystem::genax();
    let mut genax_ledger = run.genax.dynamic_ledger();
    genax_ledger.record_energy("lanes_ctrl", 0, GENAX_CTRL_W * genax_secs * 1e12);
    genax_ledger.set_leakage(
        "seed_pos_tables",
        SRAM_256X256.macros_for_bytes(GENAX_SRAM_BYTES) as f64 * SRAM_256X256.leakage_watts(),
    );
    let genax_rep = PowerReport::from_run(
        "GenAx",
        &genax_ledger,
        &genax_dram,
        run.genax.dram_bytes,
        genax_secs,
        run.reads,
    );

    [casa_rep, ert_rep, genax_rep]
        .into_iter()
        .zip(["CASA", "ERT", "GenAx"])
        .map(|(rep, system)| Fig13Row {
            system,
            onchip_w: rep.onchip_w(),
            dram_phy_w: rep.dram_w + rep.phy_w,
            reads_per_mj: rep.reads_per_mj(),
        })
        .collect()
}

/// Runs the experiment on the human-like scenario.
pub fn run(scale: Scale) -> Vec<Fig13Row> {
    let scenario = Scenario::build(Genome::HumanLike, scale);
    let systems = SystemsRun::execute(&scenario);
    rows(&systems)
}

/// Renders the figure.
pub fn table(rows: &[Fig13Row]) -> Table {
    let mut t = Table::new(
        "Figure 13: power (W) and energy efficiency (reads/mJ)",
        &["system", "on-chip W", "DRAM+PHY W", "total W", "reads/mJ"],
    );
    for r in rows {
        t.row([
            r.system.to_string(),
            format!("{:.2}", r.onchip_w),
            format!("{:.2}", r.dram_phy_w),
            format!("{:.2}", r.onchip_w + r.dram_phy_w),
            format!("{:.1}", r.reads_per_mj),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_and_efficiency_shapes() {
        let rows = run(Scale::Small);
        let get = |name: &str| rows.iter().find(|r| r.system == name).unwrap().clone();
        let (casa, ert, genax) = (get("CASA"), get("ERT"), get("GenAx"));
        // Paper: ERT consumes the most power (DRAM-heavy), CASA the least.
        let total = |r: &Fig13Row| r.onchip_w + r.dram_phy_w;
        assert!(total(&ert) > total(&casa), "ERT must out-consume CASA");
        assert!(
            ert.dram_phy_w > casa.dram_phy_w,
            "ERT's DRAM+PHY must dwarf CASA's"
        );
        // Paper: CASA has the best energy efficiency.
        assert!(casa.reads_per_mj > ert.reads_per_mj);
        assert!(casa.reads_per_mj > genax.reads_per_mj);
    }
}
