//! Regenerates Figure 16. Usage: `fig16 [small|medium|large]`.
use casa_experiments::{fig16, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let rows = fig16::run(scale);
    let table = fig16::table(&rows);
    print!("{}", table.render());
    if let Ok(path) = table.save_csv("fig16") {
        println!("(csv written to {})", path.display());
    }
}
