//! Event-level pipeline utilization report (Fig. 9 / §4.1).
//! Usage: `pipeline_report [small|medium|large]`.
use casa_experiments::{pipeline_report, scale_from_args};

fn main() {
    let rows = pipeline_report::run(scale_from_args());
    let table = pipeline_report::table(&rows);
    print!("{}", table.render());
    if let Ok(path) = table.save_csv("pipeline_report") {
        println!("(csv written to {})", path.display());
    }
}
