//! Regenerates Table 1. Usage: `table1 [small|medium|large]`.
use casa_experiments::{scale_from_args, tables};

fn main() {
    let t = tables::table1(scale_from_args());
    print!("{}", t.render());
    if let Ok(path) = t.save_csv("table1") {
        println!("(csv written to {})", path.display());
    }
}
