//! Runs every experiment at the given scale, printing each table and
//! saving CSVs/JSON under `results/`. Usage: `all [small|medium|large]`.
use casa_experiments::*;

fn main() {
    let scale = scale_from_args();
    println!("running all CASA experiments at {scale:?} scale\n");

    print!("{}", fig05::table(&fig05::run(scale)).render());
    let _ = fig05::table(&fig05::run(scale)).save_csv("fig05");
    println!();

    let panels = fig12::run(scale);
    let t = fig12::table(&panels);
    print!("{}", t.render());
    let _ = t.save_csv("fig12");
    println!();

    let t = fig13::table(&fig13::rows(&panels[0].run));
    print!("{}", t.render());
    let _ = t.save_csv("fig13");
    println!();

    let scenario = scenario::Scenario::build(scenario::Genome::HumanLike, scale);
    let t = fig14::table(&fig14::build(&scenario, &panels[0].run));
    print!("{}", t.render());
    let _ = t.save_csv("fig14");
    println!();

    let t = fig15::table(&fig15::run(scale));
    print!("{}", t.render());
    let _ = t.save_csv("fig15");
    println!();

    let t = fig16::table(&fig16::run(scale));
    print!("{}", t.render());
    let _ = t.save_csv("fig16");
    println!();

    for (name, table) in [
        ("table1", tables::table1(scale)),
        ("table2", tables::table2()),
        ("table3", tables::table3()),
        ("table4", tables::table4(scale)),
    ] {
        print!("{}", table.render());
        let _ = table.save_csv(name);
        println!();
    }

    let s = summary::summarize(&panels);
    let p = summary::project(&panels);
    let t = summary::table(&s, &p);
    print!("{}", t.render());
    let _ = t.save_csv("summary");
    println!();

    let t = claims::table(&claims::run(scale));
    print!("{}", t.render());
    let _ = t.save_csv("claims");
    println!();

    for (i, table) in ablation::tables(&ablation::run(scale))
        .into_iter()
        .enumerate()
    {
        print!("{}", table.render());
        let _ = table.save_csv(&format!("ablation_{}", (b'a' + i as u8) as char));
        println!();
    }

    let t = longread::table(&longread::run(scale));
    print!("{}", t.render());
    let _ = t.save_csv("longread");
    println!();

    let t = pipeline_report::table(&pipeline_report::run(scale));
    print!("{}", t.render());
    let _ = t.save_csv("pipeline_report");
    println!();

    let t = fault_sweep::table(&fault_sweep::run(scale));
    print!("{}", t.render());
    let _ = t.save_csv("fault_sweep");
}
