//! Regenerates Figure 14. Usage: `fig14 [small|medium|large]`.
use casa_experiments::{fig14, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let result = fig14::run(scale);
    let table = fig14::table(&result);
    print!("{}", table.render());
    if let Ok(path) = table.save_csv("fig14") {
        println!("(csv written to {})", path.display());
    }
}
