//! Regenerates Figure 15. Usage: `fig15 [small|medium|large]`.
use casa_experiments::{fig15, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let rows = fig15::run(scale);
    let table = fig15::table(&rows);
    print!("{}", table.render());
    if let Ok(path) = table.save_csv("fig15") {
        println!("(csv written to {})", path.display());
    }
}
