//! CAM kernel harness: scalar reference vs the word-kernel backends,
//! per-query and query-blocked. Usage: `cam_kernel [small|medium|large]`.
use casa_experiments::{cam_kernel, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let report = cam_kernel::run(scale);
    let table = cam_kernel::table(&report);
    print!("{}", table.render());
    let best = report.best_batched();
    println!(
        "headline: {}/{} {:.1}x over per-query {} at {} entries; \
         oracle->u64 {:.1}x; session best {:.2}x",
        best.workload,
        best.kernel,
        report.headline_speedup(),
        cam_kernel::BASELINE,
        report.entries,
        report.micro_speedup(),
        report.session_speedup(),
    );
    if let Ok(path) = table.save_csv("cam_kernel") {
        println!("(csv written to {})", path.display());
    }
    let bench_path = "BENCH_kernels.json";
    match std::fs::write(bench_path, cam_kernel::bench_json(&report, scale)) {
        Ok(()) => println!("(bench record written to {bench_path})"),
        Err(e) => eprintln!("cam_kernel: could not write {bench_path}: {e}"),
    }
}
