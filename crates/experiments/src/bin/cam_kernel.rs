//! CAM kernel harness: scalar reference vs bit-parallel match lines.
//! Usage: `cam_kernel [small|medium|large]`.
use casa_experiments::{cam_kernel, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let report = cam_kernel::run(scale);
    let table = cam_kernel::table(&report);
    print!("{}", table.render());
    println!(
        "micro speedup: {:.1}x over {} entries; session speedup: {:.2}x",
        report.micro_speedup(),
        report.entries,
        report.session_speedup(),
    );
    if let Ok(path) = table.save_csv("cam_kernel") {
        println!("(csv written to {})", path.display());
    }
}
