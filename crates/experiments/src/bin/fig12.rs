//! Regenerates Figure 12. Usage: `fig12 [small|medium|large]`.
use casa_experiments::{fig12, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let panels = fig12::run(scale);
    let table = fig12::table(&panels);
    print!("{}", table.render());
    if let Ok(path) = table.save_csv("fig12") {
        println!("(csv written to {})", path.display());
    }
}
