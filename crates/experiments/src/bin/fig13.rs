//! Regenerates Figure 13. Usage: `fig13 [small|medium|large]`.
use casa_experiments::{fig13, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let rows = fig13::run(scale);
    let table = fig13::table(&rows);
    print!("{}", table.render());
    if let Ok(path) = table.save_csv("fig13") {
        println!("(csv written to {})", path.display());
    }
}
