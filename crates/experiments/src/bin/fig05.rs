//! Regenerates Figure 5. Usage: `fig05 [small|medium|large]`.
use casa_experiments::{fig05, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let rows = fig05::run(scale);
    let table = fig05::table(&rows);
    print!("{}", table.render());
    if let Ok(path) = table.save_csv("fig05") {
        println!("(csv written to {})", path.display());
    }
}
