//! Seeding backend head-to-head: CAM vs FM-index vs ERT through one
//! session API. Usage: `backend_compare [small|medium|large]`.
use casa_experiments::{backend_compare, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let report = backend_compare::run(scale);
    let table = backend_compare::table(&report);
    print!("{}", table.render());
    println!(
        "headline: cam over fm {}, cam over ert {} (worst genome)",
        casa_experiments::report::ratio(report.headline_speedup(casa_core::BackendKind::Fm)),
        casa_experiments::report::ratio(report.headline_speedup(casa_core::BackendKind::Ert)),
    );
    if let Ok(path) = table.save_csv("backend_compare") {
        println!("(csv written to {})", path.display());
    }
    let bench_path = "BENCH_backends.json";
    match std::fs::write(bench_path, backend_compare::bench_json(&report, scale)) {
        Ok(()) => println!("(bench record written to {bench_path})"),
        Err(e) => eprintln!("backend_compare: could not write {bench_path}: {e}"),
    }
}
