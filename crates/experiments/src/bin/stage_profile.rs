//! Stage-level pipeline profile: seed path vs the batched-filter /
//! zero-copy path, per-stage. Usage: `stage_profile [small|medium|large]
//! [--test]` (`--test` is the CI smoke mode: fewer samples, identical
//! equality gates, identical artifacts).
use casa_experiments::scenario::Scale;
use casa_experiments::stage_profile;

fn main() {
    let mut scale = Scale::Medium;
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--test" {
            quick = true;
        } else {
            match Scale::parse(&arg) {
                Some(s) => scale = s,
                None => eprintln!("unknown argument {arg:?}; try small|medium|large or --test"),
            }
        }
    }
    let report = stage_profile::run_with(scale, quick);
    let table = stage_profile::table(&report);
    print!("{}", table.render());
    println!(
        "headline: session/1 {:.3} ms -> {:.3} ms ({:.2}x); vs PR 5 baseline {:.2} ms: {:.2}x{}",
        report.before_ms(),
        report.after_ms(),
        report.speedup(),
        stage_profile::BASELINE_PR5_SESSION1_MS,
        report.speedup_vs_pr5(),
        if report.session1_workload {
            ""
        } else {
            " (non-session/1 workload; PR 5 ratio not comparable)"
        },
    );
    if let Ok(path) = table.save_csv("stage_profile") {
        println!("(csv written to {})", path.display());
    }
    let bench_path = "BENCH_pipeline.json";
    match std::fs::write(bench_path, stage_profile::bench_json(&report, scale)) {
        Ok(()) => println!("(bench record written to {bench_path})"),
        Err(e) => eprintln!("stage_profile: could not write {bench_path}: {e}"),
    }
}
