//! Diagnostic dump of system timings (development aid).
use casa_energy::DramSystem;
use casa_experiments::scenario::{Genome, Scale, Scenario};
use casa_experiments::systems::SystemsRun;

fn main() {
    let scenario = Scenario::build(Genome::HumanLike, Scale::Small);
    let run = SystemsRun::execute(&scenario);
    for t in run.throughputs() {
        println!("{:<8} {:>14.0} reads/s", t.system, t.reads_per_s);
    }
    let s = &run.casa.stats;
    println!("casa seconds        : {:.6}", run.casa_seconds());
    println!("  filter_ops        : {}", s.filter_ops);
    println!("  computing_cycles  : {}", s.computing_cycles);
    println!("  lanes             : {}", run.casa.config.lanes);
    println!("  dram_bytes        : {}", s.dram_bytes);
    println!(
        "  dram seconds      : {:.6}",
        DramSystem::casa().transfer_seconds(s.dram_bytes)
    );
    println!(
        "  read_passes {} exact {} pivots {} table_f {} crkm_f {} align_f {} rmems {}",
        s.read_passes,
        s.exact_match_reads,
        s.pivots_total,
        s.pivots_filtered_table,
        s.pivots_filtered_crkm,
        s.pivots_filtered_align,
        s.rmem_searches
    );
    println!(
        "  cam searches {} rows_enabled {}",
        s.cam.searches, s.cam.rows_enabled
    );
    println!(
        "  filter lookups {} tag_rows {}",
        s.filter.lookups, s.filter.tag_rows_enabled
    );
    println!("genax seconds       : {:.6}", run.genax_seconds());
    println!(
        "  fetches {} intersections {} positions {} lane_cycles {}",
        run.genax.index_fetches,
        run.genax.intersections,
        run.genax.positions_compared,
        run.genax.lane_cycles(&run.genax_config)
    );
    println!(
        "ert seconds         : {:.6}  fetches {}",
        run.ert_seconds(),
        run.ert.dram_fetches
    );
}
