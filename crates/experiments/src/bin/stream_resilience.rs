//! Streaming kill/resume sweep: cancels a run mid-stream under every
//! fault plan, resumes from the checkpoint, and checks bit-identity and
//! the read-residency bound. Exits nonzero on any divergence.
//! Usage: `stream_resilience [small|medium|large]`.
use std::process::ExitCode;

use casa_experiments::{scale_from_args, stream_resilience};

fn main() -> ExitCode {
    let rows = stream_resilience::run(scale_from_args());
    let table = stream_resilience::table(&rows);
    print!("{}", table.render());
    if let Ok(path) = table.save_csv("stream_resilience") {
        println!("(csv written to {})", path.display());
    }
    let clean = rows
        .iter()
        .all(|r| r.output_identical && r.peak_inflight_reads <= r.inflight_bound);
    if clean {
        ExitCode::SUCCESS
    } else {
        eprintln!("stream_resilience: divergence or residency-bound violation detected");
        ExitCode::FAILURE
    }
}
