//! Synthetic-genome k-mer/repeat statistics (validates the §4.1 premise).
//! Usage: `genomestats [small|medium|large]`.
use casa_experiments::scenario::Genome;
use casa_experiments::{genomestats, scale_from_args};

fn main() {
    let scale = scale_from_args();
    for genome in [Genome::HumanLike, Genome::MouseLike] {
        let (rows, summary) = genomestats::run(genome, scale);
        let table = genomestats::table(genome, &rows, &summary);
        print!("{}", table.render());
        println!();
    }
}
