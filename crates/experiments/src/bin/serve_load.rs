//! Spawns the real `casa-serve` daemon, fires a concurrent client burst
//! (including an early-disconnecting client and an oversized request),
//! checks typed shedding + bit-identical accepted responses + sane
//! `/metrics`, then SIGTERMs it and asserts a graceful exit-0 drain.
//! Usage: `serve_load [--test]` (`--test` is the CI smoke mode: smaller
//! burst, identical gates and artifacts). Exits nonzero on any
//! violation.
use std::process::ExitCode;

use casa_experiments::serve_load;

fn main() -> ExitCode {
    let quick = std::env::args().skip(1).any(|a| a == "--test");
    let report = match serve_load::run(quick) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("serve_load: {e}");
            return ExitCode::FAILURE;
        }
    };
    let table = serve_load::table(&report);
    print!("{}", table.render());
    if let Ok(path) = table.save_csv("serve_load") {
        println!("(csv written to {})", path.display());
    }
    let bench_path = "BENCH_serve.json";
    match std::fs::write(bench_path, serve_load::bench_json(&report)) {
        Ok(()) => println!("(bench record written to {bench_path})"),
        Err(e) => eprintln!("serve_load: could not write {bench_path}: {e}"),
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        eprintln!("serve_load: acceptance gate failed: {report:?}");
        ExitCode::FAILURE
    }
}
