//! Regenerates Table 3 (constants).
use casa_experiments::tables;

fn main() {
    print!("{}", tables::table3().render());
}
