//! Long-read seeding sweep (paper §9 outlook).
//! Usage: `longread [small|medium|large]`.
use casa_experiments::{longread, scale_from_args};

fn main() {
    let rows = longread::run(scale_from_args());
    let table = longread::table(&rows);
    print!("{}", table.render());
    if let Ok(path) = table.save_csv("longread") {
        println!("(csv written to {})", path.display());
    }
}
