//! Regenerates Table 4. Usage: `table4 [small|medium|large]`.
use casa_experiments::{scale_from_args, tables};

fn main() {
    let t = tables::table4(scale_from_args());
    print!("{}", t.render());
    if let Ok(path) = t.save_csv("table4") {
        println!("(csv written to {})", path.display());
    }
}
