//! Prints the §7.1 headline claims, paper vs measured.
//! Usage: `summary [small|medium|large]`.
use casa_experiments::{scale_from_args, summary};

fn main() {
    let (s, panels) = summary::run(scale_from_args());
    let p = summary::project(&panels);
    let table = summary::table(&s, &p);
    print!("{}", table.render());
    if let Ok(path) = table.save_csv("summary") {
        println!("(csv written to {})", path.display());
    }
}
