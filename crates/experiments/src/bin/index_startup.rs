//! Cold-start-to-first-seed: rebuild vs mmap'd index image. Usage:
//! `index_startup [small|medium|large] [--test]` (`--test` is the CI
//! smoke mode: fewer samples, identical bit-identity gate, identical
//! artifacts).
use casa_experiments::index_startup;
use casa_experiments::scenario::Scale;

fn main() {
    let mut scale = Scale::Medium;
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--test" {
            quick = true;
        } else {
            match Scale::parse(&arg) {
                Some(s) => scale = s,
                None => eprintln!("unknown argument {arg:?}; try small|medium|large or --test"),
            }
        }
    }
    let report = index_startup::run_with(scale, quick);
    let table = index_startup::table(&report);
    print!("{}", table.render());
    println!(
        "headline: cold start to first seed {:.1} ms (rebuild) -> {:.3} ms (mmap): {:.1}x; \
         one-time image build {:.1} ms for {} bytes",
        report.rebuild_ms(),
        report.mmap_ms(),
        report.speedup(),
        report.image_build_ms(),
        report.image_bytes,
    );
    if let Ok(path) = table.save_csv("index_startup") {
        println!("(csv written to {})", path.display());
    }
    let bench_path = "BENCH_startup.json";
    match std::fs::write(bench_path, index_startup::bench_json(&report, scale)) {
        Ok(()) => println!("(bench record written to {bench_path})"),
        Err(e) => eprintln!("index_startup: could not write {bench_path}: {e}"),
    }
}
