//! SeedEx provisioning sweep (paper §5: 5 machines).
//! Usage: `seedex_balance [small|medium|large]`.
use casa_experiments::{scale_from_args, seedex_balance};

fn main() {
    let rows = seedex_balance::run(scale_from_args());
    let table = seedex_balance::table(&rows);
    print!("{}", table.render());
    if let Ok(path) = table.save_csv("seedex_balance") {
        println!("(csv written to {})", path.display());
    }
}
