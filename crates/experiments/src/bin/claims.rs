//! Prints the §7.1/§7.2 side-claims, paper vs measured.
//! Usage: `claims [small|medium|large]`.
use casa_experiments::{claims, scale_from_args};

fn main() {
    let c = claims::run(scale_from_args());
    let table = claims::table(&c);
    print!("{}", table.render());
    if let Ok(path) = table.save_csv("claims") {
        println!("(csv written to {})", path.display());
    }
}
