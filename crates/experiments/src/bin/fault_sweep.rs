//! Fault-injection sweep: retries, quarantines, golden fallbacks, and
//! output equality under seeded faults.
//! Usage: `fault_sweep [small|medium|large]`.
use casa_experiments::{fault_sweep, scale_from_args};

fn main() {
    let rows = fault_sweep::run(scale_from_args());
    let table = fault_sweep::table(&rows);
    print!("{}", table.render());
    if let Ok(path) = table.save_csv("fault_sweep") {
        println!("(csv written to {})", path.display());
    }
}
