//! Regenerates Table 2 (constants).
use casa_experiments::tables;

fn main() {
    print!("{}", tables::table2().render());
}
