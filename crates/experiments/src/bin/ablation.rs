//! Design-choice ablations (m, CAM groups, exact-vs-Bloom filter).
//! Usage: `ablation [small|medium|large]`.
use casa_experiments::{ablation, scale_from_args};

fn main() {
    let a = ablation::run(scale_from_args());
    for (i, table) in ablation::tables(&a).into_iter().enumerate() {
        print!("{}", table.render());
        let _ = table.save_csv(&format!("ablation_{}", (b'a' + i as u8) as char));
        println!();
    }
}
