//! SeedEx provisioning balance (paper §5): CASA attaches **5** SeedEx
//! machines "to catch up with the seeding throughput". This experiment
//! sweeps the machine count and reports where extension stops being the
//! end-to-end bottleneck — validating the published choice.

use casa_align::pipeline::{pipeline, SystemKind};
use casa_align::seedex::{extend_batch, SeedExConfig};

use crate::report::Table;
use crate::scenario::{Genome, Scale, Scenario};
use crate::systems::SystemsRun;

/// One machine-count sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BalanceRow {
    /// SeedEx machines attached.
    pub machines: u32,
    /// Extension seconds for the batch.
    pub extension_s: f64,
    /// Projected full-genome seeding seconds for the batch.
    pub seeding_s: f64,
    /// End-to-end pipeline seconds (CASA shape: seeding ∥ extension).
    pub total_s: f64,
    /// Whether extension is the binding stage.
    pub extension_bound: bool,
}

/// Runs the sweep on the human-like scenario.
pub fn run(scale: Scale) -> Vec<BalanceRow> {
    let scenario = Scenario::build(Genome::HumanLike, scale);
    let systems = SystemsRun::execute(&scenario);
    let seeding_s = systems.casa_seconds_projected();
    [1u32, 2, 3, 5, 8, 12]
        .into_iter()
        .map(|machines| {
            let cfg = SeedExConfig {
                machines,
                ..SeedExConfig::default()
            };
            let (_, work) = extend_batch(
                &scenario.reference,
                &scenario.reads,
                &systems.casa.smems,
                &cfg,
            );
            let extension_s = work.seconds(&cfg);
            let p = pipeline(
                SystemKind::CasaSeedEx,
                systems.reads,
                seeding_s,
                extension_s,
            );
            BalanceRow {
                machines,
                extension_s,
                seeding_s,
                total_s: p.total(),
                extension_bound: extension_s > seeding_s,
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn table(rows: &[BalanceRow]) -> Table {
    let mut t = Table::new(
        "SeedEx provisioning sweep (paper picks 5 machines, §5)",
        &[
            "machines",
            "extension (ms)",
            "seeding (ms)",
            "end-to-end (ms)",
            "bottleneck",
        ],
    );
    for r in rows {
        t.row([
            r.machines.to_string(),
            format!("{:.3}", r.extension_s * 1e3),
            format!("{:.3}", r.seeding_s * 1e3),
            format!("{:.3}", r.total_s * 1e3),
            if r.extension_bound {
                "extension"
            } else {
                "seeding"
            }
            .into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_machines_speed_extension_until_seeding_binds() {
        let rows = run(Scale::Small);
        assert_eq!(rows.len(), 6);
        for pair in rows.windows(2) {
            assert!(pair[1].extension_s < pair[0].extension_s);
            assert!(pair[1].total_s <= pair[0].total_s + 1e-12);
        }
        // With enough machines extension must no longer bind (the paper's
        // "catch up" goal).
        assert!(!rows.last().unwrap().extension_bound);
        // And the end-to-end curve flattens once seeding dominates.
        let last_two: Vec<f64> = rows.iter().rev().take(2).map(|r| r.total_s).collect();
        assert!((last_two[0] - last_two[1]).abs() / last_two[0] < 0.25);
    }
}
