//! Fault-injection sweep: exercises the session scheduler's
//! retry/quarantine/golden-fallback machinery across fault classes and
//! rates, and verifies that recovery keeps the SMEM output bit-identical
//! to the fault-free run (crash faults always; silent faults under the
//! full cross-check). Also measures the wall-clock overhead of running
//! with recovery armed.

use std::time::{Duration, Instant};

use casa_core::{FaultPlan, SeedingSession};

use crate::report::Table;
use crate::scenario::{Genome, Scale, Scenario};

/// Worker threads used by every sweep point (fixed so overheads are
/// comparable across rows and machines).
const WORKERS: usize = 4;

/// One fault-plan sample.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRow {
    /// Human-readable plan description (the `--fault-spec` syntax).
    pub spec: String,
    /// Hardware fault sites injected at construction (CAM + filter).
    pub fault_sites: u64,
    /// Tile attempts retried.
    pub tile_retries: u64,
    /// Tile attempts abandoned by the watchdog deadline (counted apart
    /// from panic-driven retries).
    pub deadline_stalls: u64,
    /// Partitions quarantined to the golden model.
    pub partitions_quarantined: u64,
    /// Read passes seeded by the golden fallback.
    pub fallback_reads: u64,
    /// Cross-checked read passes that caught silent corruption.
    pub crosscheck_mismatches: u64,
    /// Whether the recovered output matched the fault-free run bit for
    /// bit.
    pub output_identical: bool,
    /// Wall-clock seconds for the faulty batch.
    pub seconds: f64,
    /// Wall-clock overhead vs the fault-free session (1.0 = none).
    pub overhead: f64,
}

/// The swept fault plans, in `--fault-spec` syntax. The first entry is
/// the fault-free baseline the others are compared against.
pub fn specs() -> Vec<&'static str> {
    vec![
        "seed=42",
        "seed=42,panic=0.10,retries=4",
        "seed=42,panic=0.25,stall=0.10,retries=6",
        "seed=42,cam-flip=2e-4,check=1.0,retries=2",
        "seed=42,cam-stuck=0.05,partition=0,check=1.0,retries=2",
        "seed=42,panic=0.15,cam-flip=2e-4,filter-flip=1e-4,check=1.0,retries=4",
        "seed=42,stall=0.30,stall-ms=40,retries=6",
    ]
}

/// The watchdog deadline armed for plans whose injected stalls are long
/// enough to trip it (shorter stalls run un-supervised so the sweep also
/// covers the no-deadline path).
pub fn deadline_for(plan: &FaultPlan) -> Option<Duration> {
    (plan.tile_stall_ms >= 10.0).then(|| Duration::from_millis(5))
}

/// Runs the sweep on the human-like scenario.
///
/// # Panics
///
/// Panics if a built-in spec fails to parse or a session rejects the
/// scenario configuration — programming errors, not data-dependent ones.
pub fn run(scale: Scale) -> Vec<FaultRow> {
    let scenario = Scenario::build(Genome::HumanLike, scale);
    let config = scenario.casa_config();

    let clean =
        SeedingSession::with_fault_plan(&scenario.reference, config, WORKERS, FaultPlan::default())
            .expect("scenario config is valid");
    // Warm-up pass, then the timed baseline.
    let baseline = clean.seed_reads(&scenario.reads);
    let t0 = Instant::now();
    let again = clean.seed_reads(&scenario.reads);
    let clean_s = t0.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(baseline.smems, again.smems);

    specs()
        .into_iter()
        .map(|spec| {
            let plan = FaultPlan::parse(spec).expect("built-in spec parses");
            let deadline = deadline_for(&plan);
            let session =
                SeedingSession::with_fault_plan(&scenario.reference, config, WORKERS, plan)
                    .expect("scenario config is valid")
                    .with_tile_deadline(deadline);
            let t0 = Instant::now();
            let run = session.seed_reads(&scenario.reads);
            let seconds = t0.elapsed().as_secs_f64();
            FaultRow {
                spec: spec.to_string(),
                fault_sites: session.fault_sites().total() as u64,
                tile_retries: run.stats.tile_retries,
                deadline_stalls: run.stats.deadline_stalls,
                partitions_quarantined: run.stats.partitions_quarantined,
                fallback_reads: run.stats.fallback_reads,
                crosscheck_mismatches: run.stats.crosscheck_mismatches,
                output_identical: run.smems == baseline.smems,
                seconds,
                overhead: seconds / clean_s,
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn table(rows: &[FaultRow]) -> Table {
    let mut t = Table::new(
        "Fault-injection sweep (recovered output vs fault-free run)",
        &[
            "fault spec",
            "sites",
            "retries",
            "deadline stalls",
            "quarantined",
            "fallback reads",
            "check misses",
            "output",
            "time (ms)",
            "overhead",
        ],
    );
    for r in rows {
        t.row([
            r.spec.clone(),
            r.fault_sites.to_string(),
            r.tile_retries.to_string(),
            r.deadline_stalls.to_string(),
            r.partitions_quarantined.to_string(),
            r.fallback_reads.to_string(),
            r.crosscheck_mismatches.to_string(),
            if r.output_identical {
                "bit-identical"
            } else {
                "DIVERGED"
            }
            .into(),
            format!("{:.1}", r.seconds * 1e3),
            format!("{:.2}x", r.overhead),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_recovers_bit_identically_at_small_scale() {
        let rows = run(Scale::Small);
        assert_eq!(rows.len(), specs().len());
        for r in &rows {
            assert!(r.output_identical, "{} diverged", r.spec);
        }
        // The fault-free row does nothing; the crash rows retry; the
        // stuck-line row quarantines and falls back.
        assert_eq!(rows[0].tile_retries, 0);
        assert_eq!(rows[0].fault_sites, 0);
        assert_eq!(rows[0].deadline_stalls, 0);
        assert!(rows[1].tile_retries > 0);
        // Hardware fault sites (and the quarantine/fallback they provoke)
        // exist only on the CAM backend; a CASA_BACKEND=fm/ert pin keeps
        // every row bit-identical but injects scheduler faults only.
        if matches!(
            casa_core::BackendKind::from_env(),
            Ok(None) | Ok(Some(casa_core::BackendKind::Cam))
        ) {
            assert!(rows[4].fault_sites > 0);
            assert!(rows[4].fallback_reads > 0);
            assert_eq!(rows[4].partitions_quarantined, 1);
        }
        // The long-stall row runs under the watchdog: its abandoned
        // attempts are deadline stalls, not panic retries.
        let stall = rows.last().unwrap();
        assert!(stall.deadline_stalls > 0, "watchdog never fired");
        assert_eq!(stall.tile_retries, 0);
    }
}
