//! Design-choice ablations for the knobs the paper fixes by construction:
//!
//! * the mini-index prefix size **m = 10** (splits the 19-mer "roughly
//!   half by half", §4.1) — we sweep m and measure the footprint split
//!   and the tag-CAM rows powered per lookup;
//! * **20 CAM groups** (§3) — we sweep the group count and measure the
//!   computing-CAM rows enabled per read (the energy proxy) against the
//!   search count;
//! * the **enumerated filter vs a Bloom filter** (GenCache's choice,
//!   §4.1: "the proposed pre-seeding filter table avoids k-mer false
//!   positives or misses, unlike the bloom filter in GenCache") — we
//!   measure the false-positive pivots a Bloom filter of equal-ish budget
//!   would admit to SMEM computation.

use casa_core::{CasaConfig, PartitionEngine, SeedingStats};
use casa_filter::{BloomFilter, FilterConfig, PreSeedingFilter};
use casa_genome::PackedSeq;

use crate::report::Table;
use crate::scenario::{Genome, Scale, Scenario, READ_LEN};

/// One row of the m sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MSweepRow {
    /// Mini-index prefix size.
    pub m: usize,
    /// Filter footprint in MB (for a 4 Mbase partition, the paper's
    /// sizing).
    pub footprint_mb: f64,
    /// Average tag rows powered per k-mer lookup.
    pub tag_rows_per_lookup: f64,
}

/// One row of the group sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroupSweepRow {
    /// Number of CAM groups.
    pub groups: usize,
    /// Computing-CAM rows enabled per read (energy proxy).
    pub cam_rows_per_read: f64,
    /// CAM searches per read (cycle proxy).
    pub searches_per_read: f64,
}

/// Bloom-vs-exact filter comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FilterKindRow {
    /// Bits per reference k-mer granted to the Bloom filter.
    pub bloom_bits_per_kmer: usize,
    /// Pivots per read the exact filter admits (true hits only).
    pub exact_pivots_per_read: f64,
    /// Pivots per read the Bloom filter admits (hits + false positives).
    pub bloom_pivots_per_read: f64,
    /// The false-positive fraction among Bloom-admitted pivots.
    pub false_positive_fraction: f64,
}

/// All three ablations.
#[derive(Clone, Debug, PartialEq)]
pub struct Ablations {
    /// Mini-index prefix sweep.
    pub m_sweep: Vec<MSweepRow>,
    /// CAM group-count sweep.
    pub group_sweep: Vec<GroupSweepRow>,
    /// Exact vs Bloom filter.
    pub filter_kinds: Vec<FilterKindRow>,
}

/// Runs all ablations on one human-like partition.
pub fn run(scale: Scale) -> Ablations {
    let scenario = Scenario::build(Genome::HumanLike, scale);
    let part_len = scale
        .partition_len()
        .min(150_000)
        .min(scenario.reference.len());
    let part = scenario.reference.subseq(0, part_len);
    let read_cap = match scale {
        Scale::Small => 50,
        Scale::Medium => 200,
        Scale::Large => 500,
    };
    // Group sweep includes a 1-group (no gating) engine run; debug builds
    // need a smaller batch to stay fast (release uses the full cap).
    let read_cap = if cfg!(debug_assertions) {
        read_cap / 2
    } else {
        read_cap
    };
    let reads: Vec<PackedSeq> = scenario.reads.iter().take(read_cap).cloned().collect();

    // --- m sweep -----------------------------------------------------
    let m_sweep = [8usize, 9, 10, 11, 12]
        .into_iter()
        .map(|m| {
            let cfg = FilterConfig::new(19, m, 40, 20);
            let mut filter = PreSeedingFilter::build(&part, cfg);
            for read in &reads {
                for pivot in 0..=read.len() - cfg.k {
                    let _ = filter.lookup(read, pivot);
                }
            }
            let st = filter.stats();
            // Footprint at the paper's 4 Mbase partition sizing.
            let paper_sized = PreSeedingFilterFootprint {
                m,
                partition: 4 << 20,
            };
            MSweepRow {
                m,
                footprint_mb: paper_sized.bytes() as f64 / (1u64 << 20) as f64,
                tag_rows_per_lookup: st.tag_rows_enabled as f64 / st.lookups.max(1) as f64,
            }
        })
        .collect();

    // --- group sweep ---------------------------------------------------
    let group_sweep = [1usize, 10, 20, 32]
        .into_iter()
        .map(|groups| {
            let mut config = CasaConfig::paper(part.len(), READ_LEN);
            config.filter = FilterConfig::new(19, 10, 40, groups);
            config.partitioning = casa_genome::PartitionScheme::new(part.len(), READ_LEN - 1);
            config.exact_match_preprocessing = false;
            let mut engine = PartitionEngine::new(&part, config).expect("valid config");
            let mut stats = SeedingStats::default();
            for read in &reads {
                engine.seed_read(read, &mut stats);
            }
            GroupSweepRow {
                groups,
                cam_rows_per_read: stats.cam.rows_enabled as f64 / reads.len() as f64,
                searches_per_read: stats.cam.searches as f64 / reads.len() as f64,
            }
        })
        .collect();

    // --- exact vs Bloom -------------------------------------------------
    let k = 19usize;
    let cfg = FilterConfig::new(k, 10, 40, 20);
    let mut exact = PreSeedingFilter::build(&part, cfg);
    let filter_kinds = [4usize, 8, 16]
        .into_iter()
        .map(|bits| {
            let kmers = part.len() - k + 1;
            let mut bloom = BloomFilter::with_capacity(kmers, bits, 3);
            for (_, code) in part.kmers(k) {
                bloom.insert(code);
            }
            let mut exact_hits = 0u64;
            let mut bloom_hits = 0u64;
            let mut false_pos = 0u64;
            for read in &reads {
                for pivot in 0..=read.len() - k {
                    let code = read.kmer_code(pivot, k).expect("bounds");
                    let truth = !exact.lookup_code(code).is_empty();
                    let claimed = bloom.contains(code);
                    exact_hits += u64::from(truth);
                    bloom_hits += u64::from(claimed);
                    false_pos += u64::from(claimed && !truth);
                }
            }
            FilterKindRow {
                bloom_bits_per_kmer: bits,
                exact_pivots_per_read: exact_hits as f64 / reads.len() as f64,
                bloom_pivots_per_read: bloom_hits as f64 / reads.len() as f64,
                false_positive_fraction: false_pos as f64 / bloom_hits.max(1) as f64,
            }
        })
        .collect();

    Ablations {
        m_sweep,
        group_sweep,
        filter_kinds,
    }
}

/// Footprint model matching [`PreSeedingFilter::footprint_bytes`], usable
/// without building the tables.
struct PreSeedingFilterFootprint {
    m: usize,
    partition: u64,
}

impl PreSeedingFilterFootprint {
    fn bytes(&self) -> u64 {
        let mini = (1u64 << (2 * self.m)) * 48 / 8;
        let tag = self.partition * (2 * (19 - self.m) as u64) / 8;
        let data = self.partition * 60 / 8;
        mini + tag + data
    }
}

/// Renders the three ablation tables concatenated.
pub fn tables(a: &Ablations) -> Vec<Table> {
    let mut m_table = Table::new(
        "Ablation A: mini-index prefix size m (paper picks m = 10)",
        &["m", "footprint @4Mb part (MB)", "tag rows/lookup"],
    );
    for r in &a.m_sweep {
        m_table.row([
            r.m.to_string(),
            format!("{:.1}", r.footprint_mb),
            format!("{:.1}", r.tag_rows_per_lookup),
        ]);
    }
    let mut g_table = Table::new(
        "Ablation B: CAM group count (paper picks 20)",
        &["groups", "CAM rows/read", "searches/read"],
    );
    for r in &a.group_sweep {
        g_table.row([
            r.groups.to_string(),
            format!("{:.0}", r.cam_rows_per_read),
            format!("{:.1}", r.searches_per_read),
        ]);
    }
    let mut f_table = Table::new(
        "Ablation C: enumerated filter vs Bloom filter (GenCache's choice)",
        &[
            "bloom bits/kmer",
            "exact pivots/read",
            "bloom pivots/read",
            "false-positive share",
        ],
    );
    for r in &a.filter_kinds {
        f_table.row([
            r.bloom_bits_per_kmer.to_string(),
            format!("{:.2}", r.exact_pivots_per_read),
            format!("{:.2}", r.bloom_pivots_per_read),
            format!("{:.1}%", r.false_positive_fraction * 100.0),
        ]);
    }
    vec![m_table, g_table, f_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_shapes() {
        let a = run(Scale::Small);

        // m sweep: the mini index grows 4x per +1 m while the tag shrinks
        // linearly, so the footprint curve is U-shaped-ish with the paper's
        // m=10 near the bottom; tag rows per lookup drop as m grows.
        for pair in a.m_sweep.windows(2) {
            assert!(
                pair[1].tag_rows_per_lookup <= pair[0].tag_rows_per_lookup + 1e-9,
                "larger m must narrow tag buckets"
            );
        }
        let m10 = a.m_sweep.iter().find(|r| r.m == 10).unwrap();
        assert!((m10.footprint_mb - 45.0).abs() < 1.0, "paper's 45MB point");

        // group sweep: more groups -> fewer rows enabled, same-ish searches.
        for pair in a.group_sweep.windows(2) {
            assert!(
                pair[1].cam_rows_per_read <= pair[0].cam_rows_per_read * 1.05,
                "more groups must not enable more rows: {} -> {}",
                pair[0].cam_rows_per_read,
                pair[1].cam_rows_per_read
            );
        }

        // bloom: admits at least the true pivots, plus false positives
        // that shrink with the bit budget.
        for r in &a.filter_kinds {
            assert!(r.bloom_pivots_per_read + 1e-9 >= r.exact_pivots_per_read);
        }
        let fp: Vec<f64> = a
            .filter_kinds
            .iter()
            .map(|r| r.false_positive_fraction)
            .collect();
        assert!(fp[0] > fp[2], "more bits must cut false positives: {fp:?}");
    }
}
