//! Runs every modelled system once over a scenario and bundles the
//! results for the figure runners (Figs. 12, 13, 14, 16 and the summary
//! all reuse these runs).

use casa_baselines::{
    BwaMem2Model, BwaRun, ErtAccelerator, ErtConfig, ErtRun, GenaxAccelerator, GenaxConfig,
    GenaxRun, I7_6800K, XEON_E5_2699,
};
use casa_core::{CasaRun, SeedingSession};
use casa_energy::DramSystem;
use casa_index::Smem;

use crate::scenario::{Scale, Scenario, READ_LEN};

/// Partition passes CASA makes over GRCh38 (paper §4.1: 768 parts).
pub const CASA_FULL_GENOME_PASSES: f64 = 768.0;
/// Partition passes GenAx makes over GRCh38 (paper §2.2: 512 times).
pub const GENAX_FULL_GENOME_PASSES: f64 = 512.0;
/// ASIC-ERT's DRAM fetches per read on the full GRCh38 index, derived
/// from the paper's 68 GB/s average bandwidth at ~2.9 Mreads/s seeding
/// (÷ 64 B per fetch ≈ 366).
pub const ERT_FULL_GENOME_FETCHES_PER_READ: f64 = 366.0;

/// One system's throughput sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Throughput {
    /// System label as used in Fig. 12.
    pub system: &'static str,
    /// Seeding throughput, reads per second.
    pub reads_per_s: f64,
}

/// All five systems' results over one scenario.
#[derive(Debug)]
pub struct SystemsRun {
    /// CASA's run (stats + SMEMs).
    pub casa: CasaRun,
    /// CASA partition count (passes per batch).
    pub casa_partitions: usize,
    /// ASIC-ERT cost run.
    pub ert: ErtRun,
    /// ERT configuration used.
    pub ert_config: ErtConfig,
    /// GenAx SMEMs (asserted equal to golden in tests).
    pub genax_smems: Vec<Vec<Smem>>,
    /// GenAx cost run.
    pub genax: GenaxRun,
    /// GenAx configuration used.
    pub genax_config: GenaxConfig,
    /// GenAx partition count.
    pub genax_partitions: usize,
    /// BWA-MEM2 software run (SMEMs are the golden reference).
    pub bwa: BwaRun,
    /// Number of reads in the batch.
    pub reads: u64,
}

/// GenAx seed-table k for a scale (12 as published; 10 at bench scale to
/// keep the 4^k table build out of the inner loop).
pub fn genax_k(scale: Scale) -> usize {
    match scale {
        Scale::Small => 10,
        _ => 12,
    }
}

impl SystemsRun {
    /// Executes CASA, ERT, GenAx and BWA-MEM2 over the scenario.
    ///
    /// # Panics
    ///
    /// Panics if CASA's or GenAx's SMEM sets disagree with BWA-MEM2's —
    /// the paper's central equivalence claim, enforced on every run.
    pub fn execute(scenario: &Scenario) -> SystemsRun {
        let reference = &scenario.reference;
        let reads = &scenario.reads;

        let ert_config = ErtConfig::default();
        let genax_config = GenaxConfig {
            k: genax_k(scenario.scale),
            ..GenaxConfig::paper(scenario.scale.partition_len(), READ_LEN)
        };

        // The four system simulations are independent; run them on
        // separate threads (they dominate experiment wall-clock time).
        // Scoped join handles carry each system's result out directly.
        let (casa_out, ert, genax_out, bwa) = std::thread::scope(|scope| {
            let casa = scope.spawn(|| {
                let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
                let session = SeedingSession::new(reference, scenario.casa_config(), workers)
                    .expect("scenario config is valid");
                let run = session.seed_reads(reads);
                (run, session.partition_count())
            });
            let ert = scope.spawn(|| {
                let ert_acc = ErtAccelerator::new(reference, ert_config);
                ert_acc.process_reads(reads)
            });
            let genax = scope.spawn(|| {
                let genax_acc = GenaxAccelerator::new(reference, genax_config);
                let out = genax_acc.seed_reads(reads);
                (out, genax_acc.partition_count())
            });
            let bwa = scope.spawn(|| {
                let bwa_model = BwaMem2Model::new(reference, 19);
                bwa_model.seed_reads(reads)
            });
            (
                casa.join().expect("casa simulation thread panicked"),
                ert.join().expect("ert simulation thread panicked"),
                genax.join().expect("genax simulation thread panicked"),
                bwa.join().expect("bwa simulation thread panicked"),
            )
        });
        let (casa, casa_partitions) = casa_out;
        let ((genax_smems, genax), genax_partitions) = genax_out;

        // The paper's equivalence claim, enforced at run time: identical
        // SMEMs across CASA, GenAx, and BWA-MEM2.
        assert_eq!(casa.smems, bwa.smems, "CASA diverged from BWA-MEM2");
        assert_eq!(genax_smems, bwa.smems, "GenAx diverged from BWA-MEM2");

        SystemsRun {
            casa,
            casa_partitions,
            ert,
            ert_config,
            genax_smems,
            genax,
            genax_config,
            genax_partitions,
            bwa,
            reads: reads.len() as u64,
        }
    }

    /// CASA seeding seconds.
    pub fn casa_seconds(&self) -> f64 {
        self.casa.seconds(&DramSystem::casa())
    }

    /// ERT seeding seconds.
    pub fn ert_seconds(&self) -> f64 {
        self.ert.seconds(&self.ert_config, &DramSystem::ert())
    }

    /// GenAx seeding seconds.
    pub fn genax_seconds(&self) -> f64 {
        self.genax.seconds(&self.genax_config)
    }

    /// CASA seeding seconds projected to the full GRCh38 pass count
    /// (768 partitions; see `summary` for the rationale).
    pub fn casa_seconds_projected(&self) -> f64 {
        self.casa_seconds() * (CASA_FULL_GENOME_PASSES / self.casa_partitions as f64)
    }

    /// GenAx seeding seconds projected to its 512 full-genome passes.
    pub fn genax_seconds_projected(&self) -> f64 {
        self.genax_seconds() * (GENAX_FULL_GENOME_PASSES / self.genax_partitions as f64)
    }

    /// ERT seeding seconds projected to its full-genome fetch depth
    /// (366 fetches/read on the 64 GB index; the 4 MB reuse cache then
    /// covers a vanishing k-mer fraction, halving the walks' effective
    /// memory-level parallelism).
    pub fn ert_seconds_projected(&self) -> f64 {
        let dram = DramSystem::ert();
        let per_read = (ERT_FULL_GENOME_FETCHES_PER_READ * 64.0 / dram.usable_bandwidth()).max(
            ERT_FULL_GENOME_FETCHES_PER_READ * self.ert_config.dram_latency_s
                / (self.ert_config.overlap_factor / 2.0)
                / f64::from(self.ert_config.machines),
        );
        per_read * self.reads as f64
    }

    /// The five Fig. 12 bars.
    pub fn throughputs(&self) -> Vec<Throughput> {
        vec![
            Throughput {
                system: "B-12T",
                reads_per_s: self.bwa.throughput(&I7_6800K, 12),
            },
            Throughput {
                system: "B-32T",
                reads_per_s: self.bwa.throughput(&XEON_E5_2699, 32),
            },
            Throughput {
                system: "CASA",
                reads_per_s: self
                    .casa
                    .throughput_reads_per_s(self.casa_partitions, &DramSystem::casa()),
            },
            Throughput {
                system: "ERT",
                reads_per_s: self.ert.throughput(&self.ert_config, &DramSystem::ert()),
            },
            Throughput {
                system: "GenAx",
                reads_per_s: self
                    .genax
                    .throughput(&self.genax_config, self.genax_partitions),
            },
        ]
    }

    /// Throughput of `system` (must be one of the Fig. 12 labels).
    ///
    /// # Panics
    ///
    /// Panics on an unknown label.
    pub fn throughput_of(&self, system: &str) -> f64 {
        self.throughputs()
            .into_iter()
            .find(|t| t.system == system)
            .unwrap_or_else(|| panic!("unknown system {system}"))
            .reads_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Genome;

    #[test]
    fn systems_run_small_scale() {
        let scenario = Scenario::build(Genome::HumanLike, Scale::Small);
        let run = SystemsRun::execute(&scenario);
        assert_eq!(run.reads, Scale::Small.read_count() as u64);
        let tputs = run.throughputs();
        assert_eq!(tputs.len(), 5);
        for t in &tputs {
            assert!(
                t.reads_per_s > 0.0,
                "{} throughput must be positive",
                t.system
            );
        }
        // Shape: CASA beats GenAx and both CPU baselines.
        assert!(run.throughput_of("CASA") > run.throughput_of("GenAx"));
        assert!(run.throughput_of("CASA") > run.throughput_of("B-12T"));
        assert!(run.throughput_of("B-32T") > run.throughput_of("B-12T"));
    }
}
