//! Pipeline utilization (paper Fig. 9 / §4.1): feeds *measured* per-read
//! work into the event-level pipeline simulator of
//! [`casa_core::pipeline_sim`] and reports the bottleneck stage, FIFO
//! behaviour, and the gap between the event-level and aggregate timing
//! models.
//!
//! The paper asserts "the pre-seeding phase is typically faster than the
//! SMEM computing phase" — i.e. the 512-entry FIFO should mostly be
//! non-empty and the computing CAMs the bottleneck. This experiment checks
//! that on real workloads and shows how the balance shifts with the
//! exact-match fast path on or off.

use casa_core::pipeline_sim::{simulate, PipelineSimResult, ReadWork};
use casa_core::{CasaConfig, PartitionEngine, SeedingStats};
use casa_energy::circuits::CLOCK_HZ;
use casa_genome::PackedSeq;

use crate::report::Table;
use crate::scenario::{Genome, Scale, Scenario, READ_LEN};

/// One variant's pipeline simulation outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineRow {
    /// Variant label.
    pub variant: &'static str,
    /// Event-level total cycles.
    pub event_cycles: u64,
    /// Aggregate-model cycles (max of stage totals).
    pub aggregate_cycles: u64,
    /// Bottleneck stage name.
    pub bottleneck: &'static str,
    /// Peak FIFO occupancy.
    pub fifo_peak: usize,
    /// Event-level throughput in Mreads/s.
    pub mreads_per_s: f64,
}

/// Collects per-read work by running the engine read by read.
fn measure_work(
    part: &PackedSeq,
    reads: &[PackedSeq],
    config: CasaConfig,
) -> (Vec<ReadWork>, SeedingStats) {
    let mut engine = PartitionEngine::new(part, config).expect("valid config");
    let mut total = SeedingStats::default();
    let mut work = Vec::with_capacity(reads.len());
    for read in reads {
        let mut stats = SeedingStats::default();
        engine.seed_read(read, &mut stats);
        work.push(ReadWork {
            filter_ops: stats.filter_ops,
            computing_cycles: stats.computing_cycles,
        });
        total.merge(&stats);
    }
    (work, total)
}

/// Runs the pipeline simulation for the fast-path-on and fast-path-off
/// variants.
pub fn run(scale: Scale) -> Vec<PipelineRow> {
    let scenario = Scenario::build(Genome::HumanLike, scale);
    let part_len = scale
        .partition_len()
        .min(150_000)
        .min(scenario.reference.len());
    let part = scenario.reference.subseq(0, part_len);
    let read_cap = match scale {
        Scale::Small => 120,
        Scale::Medium => 600,
        Scale::Large => 2_000,
    };
    let reads: Vec<PackedSeq> = scenario.reads.iter().take(read_cap).cloned().collect();

    [("exact-match on", true), ("exact-match off", false)]
        .into_iter()
        .map(|(variant, exact)| {
            let mut config = CasaConfig::paper(part.len(), READ_LEN);
            config.partitioning = casa_genome::PartitionScheme::new(part.len(), READ_LEN - 1);
            config.exact_match_preprocessing = exact;
            let (work, total) = measure_work(&part, &reads, config);
            let sim: PipelineSimResult = simulate(&config, &work);
            let aggregate_pre = total.filter_ops.div_ceil(config.filter_banks as u64);
            let aggregate_comp = total.computing_cycles.div_ceil(config.lanes as u64);
            let aggregate = aggregate_pre.max(aggregate_comp);
            PipelineRow {
                variant,
                event_cycles: sim.total_cycles,
                aggregate_cycles: aggregate,
                bottleneck: match sim.bottleneck() {
                    casa_core::pipeline_sim::Bottleneck::PreSeeding => "pre-seeding",
                    casa_core::pipeline_sim::Bottleneck::Computing => "computing",
                },
                fifo_peak: sim.fifo_peak,
                mreads_per_s: reads.len() as f64 / (sim.total_cycles as f64 / CLOCK_HZ) / 1e6,
            }
        })
        .collect()
}

/// Renders the report.
pub fn table(rows: &[PipelineRow]) -> Table {
    let mut t = Table::new(
        "Pipeline utilization (event-level Fig. 9 simulation, one partition)",
        &[
            "variant",
            "event cycles",
            "aggregate cycles",
            "bottleneck",
            "FIFO peak",
            "Mreads/s",
        ],
    );
    for r in rows {
        t.row([
            r.variant.to_string(),
            r.event_cycles.to_string(),
            r.aggregate_cycles.to_string(),
            r.bottleneck.to_string(),
            r.fifo_peak.to_string(),
            format!("{:.1}", r.mreads_per_s),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_model_tracks_aggregate_model() {
        let rows = run(Scale::Small);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // The event-level simulation can only be slower than the
            // lower-bound aggregate, and should stay within a small factor
            // (per-read serialization effects).
            assert!(r.event_cycles >= r.aggregate_cycles, "{}", r.variant);
            assert!(
                (r.event_cycles as f64) < r.aggregate_cycles as f64 * 10.0 + 10_000.0,
                "{}: event {} vs aggregate {}",
                r.variant,
                r.event_cycles,
                r.aggregate_cycles
            );
            assert!(r.mreads_per_s > 0.0);
        }
    }

    #[test]
    fn fast_path_reduces_total_cycles() {
        let rows = run(Scale::Small);
        let on = rows.iter().find(|r| r.variant == "exact-match on").unwrap();
        let off = rows
            .iter()
            .find(|r| r.variant == "exact-match off")
            .unwrap();
        assert!(
            on.event_cycles <= off.event_cycles,
            "fast path must not slow the pipeline: {} vs {}",
            on.event_cycles,
            off.event_cycles
        );
    }
}
