//! Shared experiment scenarios: synthetic genomes + read batches standing
//! in for the paper's GRCh38 / ERR194147 and GRCm39 / DWGSIM workloads
//! (see DESIGN.md §1 for the substitution rationale).

use casa_core::CasaConfig;
use casa_genome::synth::{generate_reference, ReferenceProfile};
use casa_genome::{PackedSeq, ReadSimConfig, ReadSimulator};
use serde::{Deserialize, Serialize};

/// Workload scale, trading fidelity for runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Criterion-bench scale: seconds per experiment.
    Small,
    /// Default binary scale: tens of seconds per experiment.
    Medium,
    /// Overnight scale.
    Large,
}

impl Scale {
    /// Parses `small` / `medium` / `large` (used by the experiment
    /// binaries' single CLI argument).
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    /// Reference length in bases.
    pub fn reference_len(&self) -> usize {
        match self {
            Scale::Small => 200_000,
            Scale::Medium => 1_500_000,
            Scale::Large => 8_000_000,
        }
    }

    /// Reads per batch.
    pub fn read_count(&self) -> usize {
        match self {
            Scale::Small => 150,
            Scale::Medium => 1_200,
            Scale::Large => 8_000,
        }
    }

    /// Reference partition length for the accelerators (a quarter of the
    /// reference, so every accelerator pays realistic multi-pass costs).
    pub fn partition_len(&self) -> usize {
        self.reference_len() / 4
    }
}

/// Which genome profile a scenario models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Genome {
    /// GRCh38 stand-in.
    HumanLike,
    /// GRCm39 stand-in.
    MouseLike,
}

impl Genome {
    /// Display name used in figure output.
    pub fn name(&self) -> &'static str {
        match self {
            Genome::HumanLike => "GRCh38-like (synthetic)",
            Genome::MouseLike => "GRCm39-like (synthetic)",
        }
    }

    /// The generator profile.
    pub fn profile(&self) -> ReferenceProfile {
        match self {
            Genome::HumanLike => ReferenceProfile::human_like(),
            Genome::MouseLike => ReferenceProfile::mouse_like(),
        }
    }
}

/// A ready-to-run workload: reference + simulated 101 bp reads.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Which genome it models.
    pub genome: Genome,
    /// The scale it was built at.
    pub scale: Scale,
    /// The synthetic reference.
    pub reference: PackedSeq,
    /// The read batch (forward orientation as the sequencer emits them).
    pub reads: Vec<PackedSeq>,
}

/// The paper's read length.
pub const READ_LEN: usize = 101;

impl Scenario {
    /// Builds the standard workload for `genome` at `scale`
    /// (deterministic).
    pub fn build(genome: Genome, scale: Scale) -> Scenario {
        let reference =
            generate_reference(&genome.profile(), scale.reference_len(), seed_of(genome));
        let sim = ReadSimulator::new(ReadSimConfig::default(), seed_of(genome) ^ 0xBEEF);
        let reads = sim
            .simulate(&reference, scale.read_count())
            .into_iter()
            .map(|r| r.seq)
            .collect();
        Scenario {
            genome,
            scale,
            reference,
            reads,
        }
    }

    /// Builds an inexact-only workload (every read carries ≥ 1 edit),
    /// for the Fig. 16 comparison.
    pub fn build_inexact(genome: Genome, scale: Scale) -> Scenario {
        let reference =
            generate_reference(&genome.profile(), scale.reference_len(), seed_of(genome));
        let sim = ReadSimulator::new(ReadSimConfig::inexact_only(), seed_of(genome) ^ 0xFEED);
        let reads = sim
            .simulate_inexact(&reference, scale.read_count())
            .into_iter()
            .map(|r| r.seq)
            .collect();
        Scenario {
            genome,
            scale,
            reference,
            reads,
        }
    }

    /// The CASA configuration used for this scenario (paper geometry,
    /// partitions sized by the scale).
    pub fn casa_config(&self) -> CasaConfig {
        CasaConfig::paper(self.scale.partition_len(), READ_LEN)
    }
}

fn seed_of(genome: Genome) -> u64 {
    match genome {
        Genome::HumanLike => 0x6061,
        Genome::MouseLike => 0x4D4D,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_deterministic() {
        let a = Scenario::build(Genome::HumanLike, Scale::Small);
        let b = Scenario::build(Genome::HumanLike, Scale::Small);
        assert_eq!(a.reference, b.reference);
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.reads.len(), Scale::Small.read_count());
        assert!(a.reads.iter().all(|r| r.len() == READ_LEN));
    }

    #[test]
    fn genomes_differ() {
        let h = Scenario::build(Genome::HumanLike, Scale::Small);
        let m = Scenario::build(Genome::MouseLike, Scale::Small);
        assert_ne!(h.reference, m.reference);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("huge"), None);
    }
}
