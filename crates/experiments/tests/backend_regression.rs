//! Backend regression gate: the Fig. 12 (exact-read) and Fig. 16
//! (inexact-read) seeding workloads must produce byte-identical
//! serialized SMEM output across **every** seeding backend — CAM,
//! FM-index, and ERT — through the same session path the `--backend`
//! CLI flag selects. This pins the experiment JSON/CSV artifacts across
//! the backend-dispatch rewrite: identical `CasaRun` SMEMs imply
//! identical figure tables, so a backend bug cannot silently change
//! published figures. (Stats are backend-specific by design — the
//! software models have no CAM activity to count — so only the SMEM
//! payload is pinned.)

use casa_core::{BackendKind, FaultPlan, SeedingSession};
use casa_experiments::scenario::{Genome, Scale, Scenario};

/// Serializes the figure-feeding SMEM payload of one backend's run.
fn smem_bytes(backend: BackendKind, scenario: &Scenario) -> Vec<u8> {
    let session = SeedingSession::with_backend(
        &scenario.reference,
        scenario.casa_config(),
        2,
        FaultPlan::default(),
        backend,
    )
    .expect("scenario config is valid");
    let run = session.seed_reads(&scenario.reads);
    format!("{:?}", run.smems).into_bytes()
}

fn assert_backend_parity(scenario: &Scenario) {
    let cam = smem_bytes(BackendKind::Cam, scenario);
    assert!(!cam.is_empty());
    for backend in [BackendKind::Fm, BackendKind::Ert] {
        assert_eq!(
            smem_bytes(backend, scenario),
            cam,
            "serialized SMEM output changed under the {backend} backend"
        );
    }
}

#[test]
fn fig12_exact_workload_is_byte_identical_across_backends() {
    let scenario = Scenario::build(Genome::HumanLike, Scale::Small);
    assert_backend_parity(&scenario);
}

#[test]
fn fig16_inexact_workload_is_byte_identical_across_backends() {
    let scenario = Scenario::build_inexact(Genome::HumanLike, Scale::Small);
    assert_backend_parity(&scenario);
}

#[test]
fn mouse_genome_workload_is_byte_identical_across_backends() {
    let scenario = Scenario::build(Genome::MouseLike, Scale::Small);
    assert_backend_parity(&scenario);
}
