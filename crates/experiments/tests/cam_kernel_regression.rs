//! Kernel regression gate: the Fig. 12 (exact-read) and Fig. 16
//! (inexact-read) seeding workloads must produce byte-identical
//! serialized outputs across **every** CAM kernel configuration — the
//! scalar reference model, the process default, and each supported word
//! backend (scalar `u64`, `u64x4`, AVX2). This pins the experiment
//! JSON/CSV artifacts across the kernel-dispatch rewrite: identical
//! `CasaRun` SMEMs and statistics imply identical figure tables, so a
//! dispatch bug cannot silently change published figures.

use casa_core::{KernelBackend, SeedingSession};
use casa_experiments::scenario::{Genome, Scale, Scenario};

/// Serializes the parts of a run that feed the figure tables.
fn run_bytes(session: &SeedingSession, scenario: &Scenario) -> Vec<u8> {
    let run = session.seed_reads(&scenario.reads);
    format!("{:?}\n{:?}", run.smems, run.stats).into_bytes()
}

fn assert_kernel_parity(scenario: &Scenario) {
    let session = SeedingSession::new(&scenario.reference, scenario.casa_config(), 2)
        .expect("scenario config is valid");
    // Process default (CASA_KERNEL or CPU detection) first.
    let default = run_bytes(&session, scenario);
    session.set_scalar_search(true);
    let scalar = run_bytes(&session, scenario);
    assert_eq!(
        default, scalar,
        "serialized seeding output changed between the default word kernel \
         and the scalar reference"
    );
    session.set_scalar_search(false);
    for backend in KernelBackend::supported() {
        session.set_kernel_backend(backend);
        let bytes = run_bytes(&session, scenario);
        assert_eq!(
            bytes, scalar,
            "serialized seeding output changed under the {backend} backend"
        );
    }
}

#[test]
fn fig12_exact_workload_is_byte_identical_across_kernels() {
    let scenario = Scenario::build(Genome::HumanLike, Scale::Small);
    assert_kernel_parity(&scenario);
}

#[test]
fn fig16_inexact_workload_is_byte_identical_across_kernels() {
    let scenario = Scenario::build_inexact(Genome::HumanLike, Scale::Small);
    assert_kernel_parity(&scenario);
}

#[test]
fn mouse_genome_workload_is_byte_identical_across_kernels() {
    let scenario = Scenario::build(Genome::MouseLike, Scale::Small);
    assert_kernel_parity(&scenario);
}
