//! The 2-bit nucleotide alphabet.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A single DNA nucleotide, encoded in 2 bits exactly as the CASA hardware
/// stores it (`A=00`, `C=01`, `G=10`, `T=11`).
///
/// The ordering (`A < C < G < T`) matches the lexicographic order used by the
/// suffix-array and FM-index substrates, so the same codes can be compared
/// directly.
///
/// ```
/// use casa_genome::Base;
/// assert_eq!(Base::A.complement(), Base::T);
/// assert_eq!(Base::from_code(2), Base::G);
/// assert!(Base::C < Base::G);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Base {
    /// Adenine (code `0b00`).
    A = 0,
    /// Cytosine (code `0b01`).
    C = 1,
    /// Guanine (code `0b10`).
    G = 2,
    /// Thymine (code `0b11`).
    T = 3,
}

/// Error returned when a byte cannot be interpreted as a nucleotide.
///
/// Produced by [`Base::try_from`] for characters outside `ACGTacgt`. `N`
/// bases are deliberately rejected: the CASA evaluation (paper §6) replaces
/// all `N` bases with a standard nucleotide before processing, and our FASTA
/// reader offers the same policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseBaseError {
    byte: u8,
}

impl ParseBaseError {
    /// The offending input byte.
    pub fn byte(&self) -> u8 {
        self.byte
    }
}

impl fmt::Display for ParseBaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid nucleotide byte 0x{:02x} ({:?})",
            self.byte, self.byte as char
        )
    }
}

impl std::error::Error for ParseBaseError {}

impl Base {
    /// All four bases in code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Decodes a 2-bit code.
    ///
    /// Only the low two bits are inspected, mirroring how the hardware
    /// decodes a 2-bit lane regardless of surrounding bus bits.
    ///
    /// ```
    /// use casa_genome::Base;
    /// assert_eq!(Base::from_code(0b111), Base::T); // low bits 11
    /// ```
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code & 0b11 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// The 2-bit code of this base.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Watson–Crick complement (`A↔T`, `C↔G`).
    ///
    /// With this encoding the complement is simply the bitwise NOT of the
    /// 2-bit code, which is also how a hardware implementation would compute
    /// reverse strands.
    #[inline]
    pub fn complement(self) -> Base {
        Base::from_code(!self.code())
    }

    /// ASCII uppercase letter for this base.
    #[inline]
    pub fn to_char(self) -> char {
        match self {
            Base::A => 'A',
            Base::C => 'C',
            Base::G => 'G',
            Base::T => 'T',
        }
    }

    /// Whether this base is G or C (used by the GC-content statistics of the
    /// synthetic reference generator).
    #[inline]
    pub fn is_gc(self) -> bool {
        matches!(self, Base::G | Base::C)
    }
}

impl TryFrom<u8> for Base {
    type Error = ParseBaseError;

    /// Parses an ASCII nucleotide letter (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBaseError`] for any byte outside `ACGTacgt`, including
    /// `N`.
    fn try_from(byte: u8) -> Result<Base, ParseBaseError> {
        match byte {
            b'A' | b'a' => Ok(Base::A),
            b'C' | b'c' => Ok(Base::C),
            b'G' | b'g' => Ok(Base::G),
            b'T' | b't' => Ok(Base::T),
            _ => Err(ParseBaseError { byte }),
        }
    }
}

impl TryFrom<char> for Base {
    type Error = ParseBaseError;

    /// Parses a nucleotide character (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBaseError`] for any character outside `ACGTacgt`.
    fn try_from(c: char) -> Result<Base, ParseBaseError> {
        if c.is_ascii() {
            Base::try_from(c as u8)
        } else {
            Err(ParseBaseError { byte: b'?' })
        }
    }
}

impl From<Base> for char {
    fn from(b: Base) -> char {
        b.to_char()
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Base::A => "A",
            Base::C => "C",
            Base::G => "G",
            Base::T => "T",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
        }
    }

    #[test]
    fn from_code_masks_high_bits() {
        assert_eq!(Base::from_code(0b100), Base::A);
        assert_eq!(Base::from_code(0b101), Base::C);
        assert_eq!(Base::from_code(0xFE), Base::G);
        assert_eq!(Base::from_code(0xFF), Base::T);
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
    }

    #[test]
    fn parse_accepts_both_cases() {
        assert_eq!(Base::try_from(b'a').unwrap(), Base::A);
        assert_eq!(Base::try_from(b'G').unwrap(), Base::G);
        assert_eq!(Base::try_from('t').unwrap(), Base::T);
    }

    #[test]
    fn parse_rejects_n_and_garbage() {
        assert!(Base::try_from(b'N').is_err());
        assert!(Base::try_from(b'?').is_err());
        let err = Base::try_from(b'N').unwrap_err();
        assert_eq!(err.byte(), b'N');
        assert!(err.to_string().contains("0x4e"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Base::A < Base::C && Base::C < Base::G && Base::G < Base::T);
    }

    #[test]
    fn display_matches_char() {
        for b in Base::ALL {
            assert_eq!(b.to_string(), b.to_char().to_string());
            assert_eq!(char::from(b), b.to_char());
        }
    }
}
