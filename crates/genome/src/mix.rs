//! Deterministic hash mixing for seeded fault injection and sampling.
//!
//! The fault-injection subsystem (`casa_core::faults`) needs a source of
//! "randomness" that is a pure function of a seed and a *site* (a
//! partition index, a CAM entry, a tile number, …), so that the same seed
//! always selects the same fault sites regardless of thread scheduling,
//! batch order, or retry count. A stateful RNG cannot provide that — the
//! draw order would depend on scheduling — so faults are decided by
//! hashing the site coordinates instead.
//!
//! The mixer is SplitMix64 (Steele et al., "Fast splittable pseudorandom
//! number generators"), folded over the site coordinates. It passes BigCrush
//! as a generator, which is far more than the fault model needs.

/// One round of SplitMix64: a bijective 64-bit finalizer with good
/// avalanche behaviour.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a seed together with a site's coordinates into 64 uniform bits.
///
/// The result is a pure function of its inputs: the same `(seed, site)`
/// pair always yields the same hash, which is what makes hash-derived
/// fault sites reproducible across worker counts and retries.
///
/// ```
/// use casa_genome::mix::site_hash;
/// assert_eq!(site_hash(42, &[1, 2]), site_hash(42, &[1, 2]));
/// assert_ne!(site_hash(42, &[1, 2]), site_hash(42, &[2, 1]));
/// assert_ne!(site_hash(42, &[1, 2]), site_hash(43, &[1, 2]));
/// ```
pub fn site_hash(seed: u64, site: &[u64]) -> u64 {
    let mut h = splitmix64(seed);
    for &coord in site {
        h = splitmix64(h ^ coord);
    }
    h
}

/// Turns a hash into a Bernoulli draw with probability `p`.
///
/// Uses the top 53 bits as a uniform f64 in `[0, 1)`, so `p = 0.0` never
/// fires and `p = 1.0` always fires.
pub fn coin(hash: u64, p: f64) -> bool {
    ((hash >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_hash_is_deterministic_and_site_sensitive() {
        let a = site_hash(7, &[0, 1, 2]);
        assert_eq!(a, site_hash(7, &[0, 1, 2]));
        assert_ne!(a, site_hash(7, &[0, 1, 3]));
        assert_ne!(a, site_hash(8, &[0, 1, 2]));
        // Prefix sites must not collide with extended sites.
        assert_ne!(site_hash(7, &[0]), site_hash(7, &[0, 0]));
    }

    #[test]
    fn coin_respects_extremes_and_rate() {
        let hits = (0..10_000)
            .filter(|&i| coin(site_hash(3, &[i]), 0.1))
            .count();
        // 10% ± generous slack for 10k draws.
        assert!((700..1300).contains(&hits), "hits {hits}");
        assert!(!coin(site_hash(3, &[0]), 0.0));
        assert!(coin(site_hash(3, &[0]), 1.0));
    }
}
