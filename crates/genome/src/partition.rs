//! Reference partitioning.
//!
//! CASA's on-chip memories hold only a slice of the genome at a time: the
//! paper streams GRCh38 through the accelerator in 768 parts (ten 1 MB
//! computing CAMs ≈ 40 Mbases on chip per pass, §5). Reads are replayed
//! against every partition and the per-partition SMEMs are merged. To avoid
//! losing matches that straddle a cut point, adjacent partitions overlap by
//! at least `read_len − 1` bases; the merge step deduplicates hits found in
//! the overlap.

use serde::{Deserialize, Serialize};

use crate::PackedSeq;

/// How to split a reference into accelerator-sized parts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionScheme {
    /// Number of bases per partition (excluding overlap). The paper's
    /// hardware holds 4 Mbases per 1 MB CAM.
    pub part_len: usize,
    /// Bases of overlap carried from the previous partition. Should be at
    /// least `read_len - 1` so any read-sized window is fully contained in
    /// some partition.
    pub overlap: usize,
}

impl PartitionScheme {
    /// Creates a scheme.
    ///
    /// # Panics
    ///
    /// Panics if `part_len == 0` or `overlap >= part_len`.
    pub fn new(part_len: usize, overlap: usize) -> PartitionScheme {
        assert!(part_len > 0, "part_len must be positive");
        assert!(
            overlap < part_len,
            "overlap ({overlap}) must be smaller than part_len ({part_len})"
        );
        PartitionScheme { part_len, overlap }
    }

    /// Splits `reference` into overlapping partitions.
    ///
    /// Every partition except possibly the last spans
    /// `part_len + overlap` bases; partition `i` starts at
    /// `i * part_len` and additionally carries the next `overlap` bases.
    ///
    /// ```
    /// use casa_genome::{PackedSeq, PartitionScheme};
    /// let r = PackedSeq::from_ascii(b"ACGTACGTACGT")?;
    /// let parts = PartitionScheme::new(4, 2).split(&r);
    /// assert_eq!(parts.len(), 3);
    /// assert_eq!(parts[0].seq.to_string(), "ACGTAC");
    /// assert_eq!(parts[1].start, 4);
    /// assert_eq!(parts[2].seq.to_string(), "ACGT");
    /// # Ok::<(), casa_genome::ParseBaseError>(())
    /// ```
    pub fn split(&self, reference: &PackedSeq) -> Vec<Partition> {
        let mut parts = Vec::new();
        let mut start = 0;
        let mut index = 0;
        while start < reference.len() {
            let span = (self.part_len + self.overlap).min(reference.len() - start);
            parts.push(Partition {
                index,
                start,
                seq: reference.subseq(start, span),
            });
            index += 1;
            start += self.part_len;
        }
        parts
    }

    /// Number of partitions produced for a reference of `ref_len` bases.
    pub fn part_count(&self, ref_len: usize) -> usize {
        ref_len.div_ceil(self.part_len)
    }
}

/// One reference partition, carrying its global coordinates.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Zero-based partition index.
    pub index: usize,
    /// Global reference coordinate of the partition's first base.
    pub start: usize,
    /// The partition's bases (including the forward overlap).
    pub seq: PackedSeq,
}

impl Partition {
    /// Converts a partition-local coordinate into a global reference
    /// coordinate.
    pub fn to_global(&self, local: usize) -> usize {
        self.start + local
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn covers_whole_reference() {
        let r = seq(&"ACGT".repeat(100)); // 400 bases
        let scheme = PartitionScheme::new(64, 16);
        let parts = scheme.split(&r);
        assert_eq!(parts.len(), scheme.part_count(r.len()));
        // Union of [start, start+part_len) intervals covers [0, len).
        let mut covered = 0;
        for p in &parts {
            assert_eq!(p.start, covered);
            covered += 64.min(r.len() - p.start);
        }
        assert_eq!(covered, r.len());
    }

    #[test]
    fn overlap_duplicates_boundary_bases() {
        let r = seq("AAAACCCCGGGGTTTT");
        let parts = PartitionScheme::new(4, 3).split(&r);
        assert_eq!(parts[0].seq.to_string(), "AAAACCC");
        assert_eq!(parts[1].seq.to_string(), "CCCCGGG");
        // Any window of length overlap+1 is fully inside some partition.
        let w = 4;
        for start in 0..=r.len() - w {
            assert!(
                parts
                    .iter()
                    .any(|p| start >= p.start && start + w <= p.start + p.seq.len()),
                "window at {start} not covered"
            );
        }
    }

    #[test]
    fn to_global_offsets() {
        let r = seq(&"ACGT".repeat(8));
        let parts = PartitionScheme::new(10, 2).split(&r);
        assert_eq!(parts[1].to_global(0), 10);
        assert_eq!(parts[2].to_global(3), 23);
    }

    #[test]
    #[should_panic(expected = "must be smaller")]
    fn rejects_overlap_ge_part_len() {
        PartitionScheme::new(8, 8);
    }

    #[test]
    fn single_partition_when_reference_small() {
        let r = seq("ACGTAC");
        let parts = PartitionScheme::new(100, 10).split(&r);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].seq, r);
    }
}
