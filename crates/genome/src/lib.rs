//! Genome substrate for the CASA reproduction.
//!
//! This crate provides everything the seeding stack needs to manipulate DNA
//! sequences without any external bioinformatics dependency:
//!
//! * [`Base`] — the 2-bit nucleotide alphabet (`A`, `C`, `G`, `T`);
//! * [`PackedSeq`] — a 2-bit-packed DNA sequence with k-mer extraction,
//!   reverse complement and slicing, mirroring how hardware accelerators
//!   store references (the CASA paper stores 4 bases per byte in CAM/SRAM);
//! * [`fasta`] / [`fastq`] — minimal, strict readers and writers, with
//!   constant-memory streaming variants ([`fasta::FastaStream`],
//!   [`fastq::FastqStream`]) feeding the bounded-memory streaming runtime
//!   in `casa_core::stream`;
//! * [`synth`] — synthetic reference generation with human-like and
//!   mouse-like repeat/GC profiles (our substitute for GRCh38/GRCm39, see
//!   `DESIGN.md` §1);
//! * [`reads`] — a DWGSIM-style short-read simulator (our substitute for the
//!   ERR194147 Illumina dataset);
//! * [`partition`] — splitting a reference into the fixed-size parts that
//!   CASA streams through its on-chip memories;
//! * [`mix`] — deterministic site hashing shared by the seeded
//!   fault-injection layer (`casa_core::faults`).
//!
//! # Example
//!
//! ```
//! use casa_genome::synth::{ReferenceProfile, generate_reference};
//! use casa_genome::reads::{ReadSimulator, ReadSimConfig};
//!
//! let reference = generate_reference(&ReferenceProfile::human_like(), 10_000, 7);
//! let sim = ReadSimulator::new(ReadSimConfig::default(), 42);
//! let reads = sim.simulate(&reference, 100);
//! assert_eq!(reads.len(), 100);
//! assert!(reads.iter().all(|r| r.seq.len() == 101));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod base;
mod packed;

pub mod fasta;
pub mod fastq;
pub mod mix;
pub mod partition;
pub mod reads;
pub mod sam;
pub mod shared;
pub mod synth;

pub use base::{Base, ParseBaseError};
pub use packed::{KmerIter, PackedSeq};
pub use partition::{Partition, PartitionScheme};
pub use reads::{ReadPair, ReadSimConfig, ReadSimulator, ShortRead};
pub use shared::{SharedSlice, SliceStore, SliceView};
