//! Synthetic reference generation.
//!
//! The paper evaluates on GRCh38 (human) and GRCm39 (mouse). Those
//! assemblies are multi-gigabase downloads we cannot ship, so this module
//! generates references with the *statistical properties the CASA pipeline
//! is sensitive to*:
//!
//! * **k-mer occurrence statistics** — the pre-seeding filter's hit rate
//!   (Fig. 5) depends on how k-mer multiplicity decays with k, which in real
//!   genomes is driven by repeat content. We reproduce it by building the
//!   reference as a mixture of novel sequence and diverged copies of earlier
//!   material (interspersed + tandem repeats).
//! * **GC content** — affects k-mer distribution skew; set per profile.
//!
//! Profiles approximate published genome statistics: human ≈ 41 % GC, ≈ 50 %
//! repeat-derived; mouse ≈ 42 % GC, ≈ 45 % repeat-derived.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Base, PackedSeq};

/// Statistical profile of a synthetic reference genome.
#[derive(Clone, Debug, PartialEq)]
pub struct ReferenceProfile {
    /// Target GC fraction of novel (non-repeat) sequence.
    pub gc_content: f64,
    /// Fraction of the genome emitted by copying earlier material.
    pub repeat_fraction: f64,
    /// Minimum length of one repeat copy event, in bases.
    pub repeat_len_min: usize,
    /// Maximum length of one repeat copy event, in bases.
    pub repeat_len_max: usize,
    /// Per-base substitution probability applied when copying a repeat
    /// (repeat family divergence).
    pub repeat_divergence: f64,
    /// Fraction of repeat events that are tandem (copy the immediately
    /// preceding bases) rather than interspersed (copy from a random
    /// earlier position).
    pub tandem_fraction: f64,
}

impl ReferenceProfile {
    /// Human-genome-like profile (GRCh38 stand-in).
    pub fn human_like() -> ReferenceProfile {
        ReferenceProfile {
            gc_content: 0.41,
            repeat_fraction: 0.50,
            repeat_len_min: 150,
            repeat_len_max: 6_000,
            repeat_divergence: 0.08,
            tandem_fraction: 0.15,
        }
    }

    /// Mouse-genome-like profile (GRCm39 stand-in): slightly higher GC,
    /// somewhat lower repeat content and younger (less diverged) repeats.
    pub fn mouse_like() -> ReferenceProfile {
        ReferenceProfile {
            gc_content: 0.42,
            repeat_fraction: 0.44,
            repeat_len_min: 120,
            repeat_len_max: 5_000,
            repeat_divergence: 0.05,
            tandem_fraction: 0.20,
        }
    }

    /// A repeat-free uniform-random profile, useful as a worst case for
    /// filters (every k-mer nearly unique).
    pub fn uniform() -> ReferenceProfile {
        ReferenceProfile {
            gc_content: 0.5,
            repeat_fraction: 0.0,
            repeat_len_min: 1,
            repeat_len_max: 1,
            repeat_divergence: 0.0,
            tandem_fraction: 0.0,
        }
    }
}

impl Default for ReferenceProfile {
    /// Defaults to [`ReferenceProfile::human_like`].
    fn default() -> ReferenceProfile {
        ReferenceProfile::human_like()
    }
}

/// Generates a synthetic reference of exactly `len` bases.
///
/// Deterministic for a given `(profile, len, seed)` triple, so experiments
/// are reproducible.
///
/// # Panics
///
/// Panics if the profile has `repeat_len_min > repeat_len_max`, or a
/// `repeat_fraction`/`gc_content`/`repeat_divergence`/`tandem_fraction`
/// outside `[0, 1]`.
///
/// ```
/// use casa_genome::synth::{generate_reference, ReferenceProfile};
/// let r = generate_reference(&ReferenceProfile::human_like(), 50_000, 1);
/// assert_eq!(r.len(), 50_000);
/// // GC lands near the profile target.
/// assert!((r.gc_content() - 0.41).abs() < 0.05);
/// ```
pub fn generate_reference(profile: &ReferenceProfile, len: usize, seed: u64) -> PackedSeq {
    validate(profile);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCA5A_0001);
    let mut seq = PackedSeq::with_capacity(len);

    // Seed material so the first repeat events have something to copy.
    let bootstrap = (profile.repeat_len_max.min(len)).max(64).min(len);
    for _ in 0..bootstrap {
        seq.push(random_base(&mut rng, profile.gc_content));
    }

    while seq.len() < len {
        let remaining = len - seq.len();
        if profile.repeat_fraction > 0.0 && rng.gen_bool(profile.repeat_fraction) {
            let span = rng
                .gen_range(profile.repeat_len_min..=profile.repeat_len_max)
                .min(remaining);
            let src = if rng.gen_bool(profile.tandem_fraction) {
                seq.len().saturating_sub(span)
            } else {
                rng.gen_range(0..seq.len().saturating_sub(span).max(1))
            };
            for i in 0..span {
                let mut b = seq.base(src + i);
                if profile.repeat_divergence > 0.0 && rng.gen_bool(profile.repeat_divergence) {
                    b = mutate(&mut rng, b);
                }
                seq.push(b);
            }
        } else {
            let span = rng.gen_range(64..=512).min(remaining);
            for _ in 0..span {
                seq.push(random_base(&mut rng, profile.gc_content));
            }
        }
    }
    debug_assert_eq!(seq.len(), len);
    seq
}

fn validate(profile: &ReferenceProfile) {
    assert!(
        profile.repeat_len_min <= profile.repeat_len_max,
        "repeat_len_min must be <= repeat_len_max"
    );
    for (name, v) in [
        ("gc_content", profile.gc_content),
        ("repeat_fraction", profile.repeat_fraction),
        ("repeat_divergence", profile.repeat_divergence),
        ("tandem_fraction", profile.tandem_fraction),
    ] {
        assert!(
            (0.0..=1.0).contains(&v),
            "{name} must be within [0, 1], got {v}"
        );
    }
}

fn random_base(rng: &mut StdRng, gc: f64) -> Base {
    if rng.gen_bool(gc) {
        if rng.gen_bool(0.5) {
            Base::G
        } else {
            Base::C
        }
    } else if rng.gen_bool(0.5) {
        Base::A
    } else {
        Base::T
    }
}

/// Returns a base different from `b`, uniformly among the other three.
pub(crate) fn mutate(rng: &mut StdRng, b: Base) -> Base {
    let shift = rng.gen_range(1u8..=3);
    Base::from_code(b.code().wrapping_add(shift))
}

/// A single-nucleotide variant planted into a donor genome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Snp {
    /// Reference coordinate of the variant.
    pub pos: usize,
    /// The reference allele.
    pub reference: Base,
    /// The donor (alternate) allele.
    pub alt: Base,
}

/// Plants `count` SNPs into a copy of `reference` at distinct positions
/// (min 2 bp apart), returning the donor sequence and the truth set sorted
/// by position. This is the substrate for resequencing/variant-calling
/// workloads: reads are simulated from the *donor* and aligned back to the
/// *reference*.
///
/// # Panics
///
/// Panics if `count * 4 > reference.len()` (too dense to keep variants
/// separated).
pub fn plant_snps(reference: &PackedSeq, count: usize, seed: u64) -> (PackedSeq, Vec<Snp>) {
    assert!(
        count * 4 <= reference.len().max(1),
        "too many SNPs ({count}) for a {} bp reference",
        reference.len()
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCA5A_0005);
    let mut positions = std::collections::BTreeSet::new();
    while positions.len() < count {
        let p = rng.gen_range(0..reference.len());
        // Keep planted sites separated so each read sees isolated SNPs.
        if positions
            .range(p.saturating_sub(2)..=p + 2)
            .next()
            .is_none()
        {
            positions.insert(p);
        }
    }
    let mut snps = Vec::with_capacity(count);
    let mut donor = PackedSeq::with_capacity(reference.len());
    let mut iter = positions.iter().peekable();
    for i in 0..reference.len() {
        let b = reference.base(i);
        if iter.peek() == Some(&&i) {
            iter.next();
            let alt = mutate(&mut rng, b);
            snps.push(Snp {
                pos: i,
                reference: b,
                alt,
            });
            donor.push(alt);
        } else {
            donor.push(b);
        }
    }
    (donor, snps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_length_and_determinism() {
        let p = ReferenceProfile::human_like();
        let a = generate_reference(&p, 12_345, 9);
        let b = generate_reference(&p, 12_345, 9);
        assert_eq!(a.len(), 12_345);
        assert_eq!(a, b);
        let c = generate_reference(&p, 12_345, 10);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn gc_content_tracks_profile() {
        for gc in [0.3, 0.5, 0.7] {
            let p = ReferenceProfile {
                gc_content: gc,
                ..ReferenceProfile::uniform()
            };
            let r = generate_reference(&p, 100_000, 3);
            assert!(
                (r.gc_content() - gc).abs() < 0.02,
                "gc {} vs target {gc}",
                r.gc_content()
            );
        }
    }

    #[test]
    fn repeats_increase_kmer_multiplicity() {
        // A repeat-rich genome must contain far more duplicated 19-mers than
        // a uniform one of the same size: that is the statistic driving the
        // paper's Fig. 5.
        let len = 200_000;
        let dup = |seq: &PackedSeq| {
            let mut codes: Vec<u64> = seq.kmers(19).map(|(_, c)| c).collect();
            codes.sort_unstable();
            let distinct = {
                let mut d = codes.clone();
                d.dedup();
                d.len()
            };
            codes.len() - distinct
        };
        let rep = generate_reference(&ReferenceProfile::human_like(), len, 5);
        let uni = generate_reference(&ReferenceProfile::uniform(), len, 5);
        let (rep_dup, uni_dup) = (dup(&rep), dup(&uni));
        assert!(
            rep_dup > uni_dup.max(1) * 50,
            "repeat genome dup {rep_dup} should dwarf uniform dup {uni_dup}"
        );
    }

    #[test]
    fn mutate_never_returns_same_base() {
        let mut rng = StdRng::seed_from_u64(11);
        for b in Base::ALL {
            for _ in 0..100 {
                assert_ne!(mutate(&mut rng, b), b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn rejects_bad_fraction() {
        let p = ReferenceProfile {
            repeat_fraction: 1.5,
            ..ReferenceProfile::human_like()
        };
        generate_reference(&p, 100, 0);
    }

    #[test]
    fn plant_snps_produces_exact_truth_set() {
        let reference = generate_reference(&ReferenceProfile::human_like(), 10_000, 44);
        let (donor, snps) = plant_snps(&reference, 100, 9);
        assert_eq!(donor.len(), reference.len());
        assert_eq!(snps.len(), 100);
        // Every listed SNP differs as recorded; everything else matches.
        let mut site = std::collections::HashMap::new();
        for s in &snps {
            assert_eq!(reference.base(s.pos), s.reference);
            assert_eq!(donor.base(s.pos), s.alt);
            assert_ne!(s.reference, s.alt);
            site.insert(s.pos, s);
        }
        for i in 0..reference.len() {
            if !site.contains_key(&i) {
                assert_eq!(reference.base(i), donor.base(i), "pos {i}");
            }
        }
        // Determinism.
        let (donor2, snps2) = plant_snps(&reference, 100, 9);
        assert_eq!(donor, donor2);
        assert_eq!(snps, snps2);
    }

    #[test]
    #[should_panic(expected = "too many SNPs")]
    fn plant_snps_rejects_overdense() {
        let reference = generate_reference(&ReferenceProfile::uniform(), 100, 1);
        plant_snps(&reference, 50, 0);
    }

    #[test]
    fn tiny_genomes_work() {
        let r = generate_reference(&ReferenceProfile::human_like(), 10, 0);
        assert_eq!(r.len(), 10);
        let r0 = generate_reference(&ReferenceProfile::uniform(), 0, 0);
        assert!(r0.is_empty());
    }
}
