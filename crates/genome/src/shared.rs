//! Borrowed-or-owned slice storage for zero-copy index loading.
//!
//! The index structures (`casa_cam::Bcam` planes, `casa_filter` tables,
//! `casa_index::SuffixArray` ranks) historically owned their arrays as
//! `Vec<T>`. Loading a prebuilt index image maps those arrays straight
//! from disk instead, so the structures need to hold *either* an owned
//! vector *or* a view into memory kept alive by someone else (an
//! `Arc<Mmap>` in practice). [`SliceStore`] is that either: it derefs to
//! `&[T]` so every read site is unchanged, and [`SliceStore::to_mut`]
//! converts shared storage to owned on first mutation (copy-on-write),
//! which keeps fault injection and plane rebuilds working on mapped
//! images without ever writing through the map.
//!
//! The indirection is deliberately lifetime-erased: [`SharedSlice`] holds
//! an `Arc<dyn SliceView<T>>`, so this crate needs no knowledge of mmap
//! (and stays `forbid(unsafe_code)`); the loader implements [`SliceView`]
//! for its map-backed section views.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A source of an immutable `[T]` whose backing memory outlives the view.
///
/// Implementors pair a slice with whatever owns its memory — the
/// canonical implementation holds an `Arc` of a memory map plus a byte
/// range, and `view` reinterprets that range. The trait is object-safe so
/// [`SharedSlice`] can erase the owner's type.
pub trait SliceView<T>: Send + Sync {
    /// The viewed elements. Must return the same slice on every call.
    fn view(&self) -> &[T];
}

/// A cheaply clonable, lifetime-erased shared view of a `[T]`.
pub struct SharedSlice<T> {
    inner: Arc<dyn SliceView<T>>,
}

impl<T> SharedSlice<T> {
    /// Wraps an erased view.
    pub fn new(view: Arc<dyn SliceView<T>>) -> Self {
        SharedSlice { inner: view }
    }

    /// The viewed elements.
    pub fn as_slice(&self) -> &[T] {
        self.inner.view()
    }
}

impl<T> Clone for SharedSlice<T> {
    fn clone(&self) -> Self {
        SharedSlice {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for SharedSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedSlice")
            .field("len", &self.as_slice().len())
            .finish()
    }
}

// A Vec behind an Arc is itself a valid view; convenient for tests and
// for builders that want shared semantics without a memory map.
impl<T: Send + Sync> SliceView<T> for Vec<T> {
    fn view(&self) -> &[T] {
        self
    }
}

/// Owned (`Vec<T>`) or shared (map-backed) storage for an index array.
///
/// Dereferences to `&[T]`, so indexing, slicing and iteration at read
/// sites look exactly like they did when the field was a `Vec<T>`.
pub enum SliceStore<T> {
    /// Heap-owned storage, mutable in place.
    Owned(Vec<T>),
    /// Storage borrowed from a shared backing (e.g. a mapped image).
    Shared(SharedSlice<T>),
}

impl<T> SliceStore<T> {
    /// The stored elements.
    pub fn as_slice(&self) -> &[T] {
        match self {
            SliceStore::Owned(v) => v,
            SliceStore::Shared(s) => s.as_slice(),
        }
    }

    /// Whether the storage is backed by shared (zero-copy) memory.
    pub fn is_shared(&self) -> bool {
        matches!(self, SliceStore::Shared(_))
    }
}

impl<T: Clone> SliceStore<T> {
    /// Mutable access, converting shared storage to owned first
    /// (copy-on-write). The copy happens at most once per store.
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let SliceStore::Shared(s) = self {
            *self = SliceStore::Owned(s.as_slice().to_vec());
        }
        match self {
            SliceStore::Owned(v) => v,
            SliceStore::Shared(_) => unreachable!("shared store was just converted to owned"),
        }
    }
}

impl<T> Deref for SliceStore<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> From<Vec<T>> for SliceStore<T> {
    fn from(v: Vec<T>) -> Self {
        SliceStore::Owned(v)
    }
}

impl<T> From<SharedSlice<T>> for SliceStore<T> {
    fn from(s: SharedSlice<T>) -> Self {
        SliceStore::Shared(s)
    }
}

impl<T: Clone> Clone for SliceStore<T> {
    fn clone(&self) -> Self {
        match self {
            // Cloning shared storage clones the Arc, not the data — a
            // cloned engine keeps reading the same mapped pages.
            SliceStore::Shared(s) => SliceStore::Shared(s.clone()),
            SliceStore::Owned(v) => SliceStore::Owned(v.clone()),
        }
    }
}

// Debug prints the contents (not the storage mode) so derived Debug on
// structs holding a store is unchanged from the `Vec` days.
impl<T: fmt::Debug> fmt::Debug for SliceStore<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl<T: PartialEq> PartialEq for SliceStore<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq> Eq for SliceStore<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_store_reads_and_mutates_in_place() {
        let mut store: SliceStore<u32> = vec![1, 2, 3].into();
        assert!(!store.is_shared());
        assert_eq!(store[1], 2);
        assert_eq!(&store[1..], &[2, 3]);
        store.to_mut()[0] = 9;
        assert_eq!(store.as_slice(), &[9, 2, 3]);
    }

    #[test]
    fn shared_store_copies_on_write_only() {
        let backing: Arc<dyn SliceView<u64>> = Arc::new(vec![10u64, 20, 30]);
        let shared = SharedSlice::new(Arc::clone(&backing));
        let mut store: SliceStore<u64> = shared.clone().into();
        assert!(store.is_shared());
        assert_eq!(store.len(), 3);
        assert_eq!(store[2], 30);

        // Clone is cheap and still shared.
        let clone = store.clone();
        assert!(clone.is_shared());

        // First mutation detaches; the backing is untouched.
        store.to_mut()[0] = 99;
        assert!(!store.is_shared());
        assert_eq!(store.as_slice(), &[99, 20, 30]);
        assert_eq!(backing.view(), &[10, 20, 30]);
        assert_eq!(clone.as_slice(), &[10, 20, 30]);
    }

    #[test]
    fn equality_ignores_storage_mode() {
        let shared: SliceStore<u32> =
            SharedSlice::new(Arc::new(vec![1u32, 2]) as Arc<dyn SliceView<u32>>).into();
        let owned: SliceStore<u32> = vec![1, 2].into();
        assert_eq!(shared, owned);
    }
}
