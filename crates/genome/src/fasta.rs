//! Minimal FASTA reading and writing.
//!
//! The CASA evaluation (paper §6) replaces every `N` base in the reference
//! with a standard nucleotide before building indexes; [`NPolicy`] exposes
//! that choice explicitly.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::{Base, PackedSeq};

/// A named FASTA record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header text after `>` (up to the first whitespace is the id).
    pub name: String,
    /// The sequence, 2-bit packed.
    pub seq: PackedSeq,
}

/// What to do with bases outside `ACGT` (chiefly `N`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NPolicy {
    /// Fail with [`FastaError::InvalidBase`]. The strict default.
    #[default]
    Reject,
    /// Replace with the given base, mirroring the paper's preprocessing
    /// ("we replaced all the N bases ... with one of the standard
    /// nucleotides").
    Replace(Base),
    /// Drop the base entirely.
    Skip,
}

/// Error produced while reading FASTA data.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A sequence byte outside `ACGTacgt` with [`NPolicy::Reject`].
    InvalidBase {
        /// 0-based index of the offending record in the stream.
        record: usize,
        /// 1-based line number.
        line: usize,
        /// Offending byte.
        byte: u8,
    },
    /// File does not begin with a `>` header.
    MissingHeader,
    /// A record header with no sequence lines (EOF or the next header
    /// immediately after `>name`), i.e. a truncated record.
    TruncatedRecord {
        /// 0-based index of the offending record in the stream.
        record: usize,
        /// 1-based line number of the record's header.
        line: usize,
    },
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "io error reading fasta: {e}"),
            FastaError::InvalidBase { record, line, byte } => {
                write!(
                    f,
                    "invalid base {:?} in record {record} on line {line}",
                    *byte as char
                )
            }
            FastaError::MissingHeader => f.write_str("fasta input does not start with '>'"),
            FastaError::TruncatedRecord { record, line } => {
                write!(
                    f,
                    "truncated fasta record {record} (header on line {line} has no sequence)"
                )
            }
        }
    }
}

impl std::error::Error for FastaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FastaError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> FastaError {
        FastaError::Io(e)
    }
}

/// Reads all records from a FASTA stream.
///
/// A mutable reference to a reader can be passed as well (`&mut r`).
///
/// # Errors
///
/// Returns [`FastaError`] on IO failure, a missing leading header, or (with
/// [`NPolicy::Reject`]) any base outside `ACGTacgt`.
///
/// ```
/// use casa_genome::fasta::{read_fasta, NPolicy};
/// let input = b">chr1 test\nACGT\nacgt\n>chr2\nTTTT\n" as &[u8];
/// let records = read_fasta(input, NPolicy::Reject)?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].name, "chr1 test");
/// assert_eq!(records[0].seq.to_string(), "ACGTACGT");
/// # Ok::<(), casa_genome::fasta::FastaError>(())
/// ```
pub fn read_fasta<R: BufRead>(reader: R, policy: NPolicy) -> Result<Vec<FastaRecord>, FastaError> {
    let mut records = Vec::new();
    let mut current: Option<FastaRecord> = None;
    let mut header_line = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(rec) = current.take() {
                if rec.seq.is_empty() {
                    return Err(FastaError::TruncatedRecord {
                        record: records.len(),
                        line: header_line,
                    });
                }
                records.push(rec);
            }
            header_line = idx + 1;
            current = Some(FastaRecord {
                name: header.trim().to_string(),
                seq: PackedSeq::new(),
            });
        } else {
            let rec = current.as_mut().ok_or(FastaError::MissingHeader)?;
            for &byte in line.as_bytes() {
                match Base::try_from(byte) {
                    Ok(b) => rec.seq.push(b),
                    Err(_) => match policy {
                        NPolicy::Reject => {
                            return Err(FastaError::InvalidBase {
                                record: records.len(),
                                line: idx + 1,
                                byte,
                            })
                        }
                        NPolicy::Replace(b) => rec.seq.push(b),
                        NPolicy::Skip => {}
                    },
                }
            }
        }
    }
    if let Some(rec) = current.take() {
        if rec.seq.is_empty() {
            return Err(FastaError::TruncatedRecord {
                record: records.len(),
                line: header_line,
            });
        }
        records.push(rec);
    }
    Ok(records)
}

/// Writes records in FASTA format with 70-column wrapping.
///
/// # Errors
///
/// Propagates IO errors from `writer`.
pub fn write_fasta<W: Write>(mut writer: W, records: &[FastaRecord]) -> io::Result<()> {
    for rec in records {
        writeln!(writer, ">{}", rec.name)?;
        let text = rec.seq.to_string();
        for chunk in text.as_bytes().chunks(70) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multiple_records() {
        let input = b">a\nACGT\n>b desc here\nTT\nGG\n" as &[u8];
        let recs = read_fasta(input, NPolicy::Reject).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "a");
        assert_eq!(recs[0].seq.to_string(), "ACGT");
        assert_eq!(recs[1].name, "b desc here");
        assert_eq!(recs[1].seq.to_string(), "TTGG");
    }

    #[test]
    fn rejects_n_by_default() {
        let input = b">a\nACNGT\n" as &[u8];
        let err = read_fasta(input, NPolicy::Reject).unwrap_err();
        match err {
            FastaError::InvalidBase { record, line, byte } => {
                assert_eq!(record, 0);
                assert_eq!(line, 2);
                assert_eq!(byte, b'N');
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn invalid_base_reports_record_index() {
        let input = b">a\nACGT\n>b\nTTNTT\n" as &[u8];
        match read_fasta(input, NPolicy::Reject) {
            Err(FastaError::InvalidBase { record, line, byte }) => {
                assert_eq!(record, 1);
                assert_eq!(line, 4);
                assert_eq!(byte, b'N');
            }
            other => panic!("expected invalid base in record 1, got {other:?}"),
        }
    }

    #[test]
    fn truncated_trailing_record_is_error() {
        let input = b">a\nACGT\n>b\n" as &[u8];
        match read_fasta(input, NPolicy::Reject) {
            Err(FastaError::TruncatedRecord { record, line }) => {
                assert_eq!(record, 1);
                assert_eq!(line, 3);
            }
            other => panic!("expected truncated record 1, got {other:?}"),
        }
    }

    #[test]
    fn empty_record_mid_file_is_error() {
        let input = b">a\n>b\nACGT\n" as &[u8];
        match read_fasta(input, NPolicy::Reject) {
            Err(FastaError::TruncatedRecord { record, line }) => {
                assert_eq!(record, 0);
                assert_eq!(line, 1);
            }
            other => panic!("expected truncated record 0, got {other:?}"),
        }
    }

    #[test]
    fn replace_policy_substitutes() {
        let input = b">a\nACNGT\n" as &[u8];
        let recs = read_fasta(input, NPolicy::Replace(Base::A)).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACAGT");
    }

    #[test]
    fn skip_policy_drops() {
        let input = b">a\nACNGT\n" as &[u8];
        let recs = read_fasta(input, NPolicy::Skip).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACGT");
    }

    #[test]
    fn missing_header_is_error() {
        let input = b"ACGT\n" as &[u8];
        assert!(matches!(
            read_fasta(input, NPolicy::Reject),
            Err(FastaError::MissingHeader)
        ));
    }

    #[test]
    fn round_trips_through_writer() {
        let recs = vec![
            FastaRecord {
                name: "chrA".into(),
                seq: PackedSeq::from_ascii(&b"ACGT".repeat(40)).unwrap(),
            },
            FastaRecord {
                name: "chrB".into(),
                seq: PackedSeq::from_ascii(b"TTTT").unwrap(),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &recs).unwrap();
        let back = read_fasta(buf.as_slice(), NPolicy::Reject).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn blank_lines_are_ignored() {
        let input = b"\n>a\n\nAC\n\nGT\n\n" as &[u8];
        let recs = read_fasta(input, NPolicy::Reject).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACGT");
    }
}
