//! Minimal FASTA reading and writing.
//!
//! The CASA evaluation (paper §6) replaces every `N` base in the reference
//! with a standard nucleotide before building indexes; [`NPolicy`] exposes
//! that choice explicitly. [`FastaStream`] yields one record at a time in
//! constant memory (beyond the record itself); [`read_fasta`] collects a
//! whole stream.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

use crate::{Base, PackedSeq};

/// A named FASTA record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header text after `>` (up to the first whitespace is the id).
    pub name: String,
    /// The sequence, 2-bit packed.
    pub seq: PackedSeq,
}

/// What to do with bases outside `ACGT` (chiefly `N`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NPolicy {
    /// Fail with [`FastaError::InvalidBase`]. The strict default.
    #[default]
    Reject,
    /// Replace with the given base, mirroring the paper's preprocessing
    /// ("we replaced all the N bases ... with one of the standard
    /// nucleotides").
    Replace(Base),
    /// Drop the base entirely.
    Skip,
}

/// Error produced while reading FASTA data.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A sequence byte outside `ACGTacgt` with [`NPolicy::Reject`].
    InvalidBase {
        /// 0-based index of the offending record in the stream.
        record: usize,
        /// 1-based line number.
        line: usize,
        /// Offending byte.
        byte: u8,
    },
    /// File does not begin with a `>` header.
    MissingHeader,
    /// A record header with no sequence lines (EOF or the next header
    /// immediately after `>name`), i.e. a truncated record.
    TruncatedRecord {
        /// 0-based index of the offending record in the stream.
        record: usize,
        /// 1-based line number of the record's header.
        line: usize,
    },
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "io error reading fasta: {e}"),
            FastaError::InvalidBase { record, line, byte } => {
                write!(
                    f,
                    "invalid base {:?} in record {record} on line {line}",
                    *byte as char
                )
            }
            FastaError::MissingHeader => f.write_str("fasta input does not start with '>'"),
            FastaError::TruncatedRecord { record, line } => {
                write!(
                    f,
                    "truncated fasta record {record} (header on line {line} has no sequence)"
                )
            }
        }
    }
}

impl std::error::Error for FastaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FastaError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> FastaError {
        FastaError::Io(e)
    }
}

/// Reads all records from a FASTA stream.
///
/// A mutable reference to a reader can be passed as well (`&mut r`).
///
/// # Errors
///
/// Returns [`FastaError`] on IO failure, a missing leading header, or (with
/// [`NPolicy::Reject`]) any base outside `ACGTacgt`.
///
/// ```
/// use casa_genome::fasta::{read_fasta, NPolicy};
/// let input = b">chr1 test\nACGT\nacgt\n>chr2\nTTTT\n" as &[u8];
/// let records = read_fasta(input, NPolicy::Reject)?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].name, "chr1 test");
/// assert_eq!(records[0].seq.to_string(), "ACGTACGT");
/// # Ok::<(), casa_genome::fasta::FastaError>(())
/// ```
pub fn read_fasta<R: BufRead>(reader: R, policy: NPolicy) -> Result<Vec<FastaRecord>, FastaError> {
    FastaStream::new(reader, policy).collect()
}

/// Reads all records from the FASTA file at `path`, streaming the parse.
///
/// # Errors
///
/// As [`read_fasta`], plus [`FastaError::Io`] if the file cannot be opened.
pub fn read_fasta_from_path<P: AsRef<Path>>(
    path: P,
    policy: NPolicy,
) -> Result<Vec<FastaRecord>, FastaError> {
    FastaStream::from_path(path, policy)?.collect()
}

/// A record being accumulated by [`FastaStream`].
struct PendingRecord {
    name: String,
    seq: PackedSeq,
    /// 1-based line number of the record's `>` header.
    header_line: usize,
}

impl PendingRecord {
    /// Completes the record, or reports it truncated (no sequence lines).
    fn finish(self, record: usize) -> Result<FastaRecord, FastaError> {
        if self.seq.is_empty() {
            return Err(FastaError::TruncatedRecord {
                record,
                line: self.header_line,
            });
        }
        Ok(FastaRecord {
            name: self.name,
            seq: self.seq,
        })
    }
}

/// A streaming FASTA reader: yields one [`FastaRecord`] at a time, holding
/// only the record under construction in memory. Fused after the first
/// error.
///
/// ```
/// use casa_genome::fasta::{FastaStream, NPolicy};
/// let input = b">chr1\nACGT\n>chr2\nTT\nGG\n" as &[u8];
/// let mut stream = FastaStream::new(input, NPolicy::Reject);
/// assert_eq!(stream.next().unwrap()?.name, "chr1");
/// assert_eq!(stream.next().unwrap()?.seq.to_string(), "TTGG");
/// assert!(stream.next().is_none());
/// # Ok::<(), casa_genome::fasta::FastaError>(())
/// ```
pub struct FastaStream<R: BufRead> {
    lines: std::iter::Enumerate<io::Lines<R>>,
    policy: NPolicy,
    current: Option<PendingRecord>,
    /// Completed records yielded so far (the next record's 0-based index).
    record: usize,
    done: bool,
}

impl FastaStream<BufReader<File>> {
    /// Opens `path` and streams its records.
    ///
    /// # Errors
    ///
    /// [`FastaError::Io`] if the file cannot be opened.
    pub fn from_path<P: AsRef<Path>>(
        path: P,
        policy: NPolicy,
    ) -> Result<FastaStream<BufReader<File>>, FastaError> {
        Ok(FastaStream::new(BufReader::new(File::open(path)?), policy))
    }
}

impl<R: BufRead> FastaStream<R> {
    /// Wraps `reader` in a streaming record iterator.
    pub fn new(reader: R, policy: NPolicy) -> FastaStream<R> {
        FastaStream {
            lines: reader.lines().enumerate(),
            policy,
            current: None,
            record: 0,
            done: false,
        }
    }

    /// 0-based index of the next record the stream will yield — equals the
    /// number of records yielded so far.
    pub fn record_index(&self) -> usize {
        self.record
    }

    /// Advances past lines until a record completes (next header or EOF).
    fn read_record(&mut self) -> Option<Result<FastaRecord, FastaError>> {
        loop {
            let Some((idx, line)) = self.lines.next() else {
                // EOF: flush the record under construction, if any.
                let pending = self.current.take()?;
                return Some(pending.finish(self.record));
            };
            let line = match line {
                Ok(l) => l,
                Err(e) => return Some(Err(e.into())),
            };
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('>') {
                let finished = self.current.take();
                self.current = Some(PendingRecord {
                    name: header.trim().to_string(),
                    seq: PackedSeq::new(),
                    header_line: idx + 1,
                });
                if let Some(pending) = finished {
                    return Some(pending.finish(self.record));
                }
            } else {
                let Some(pending) = self.current.as_mut() else {
                    return Some(Err(FastaError::MissingHeader));
                };
                for &byte in line.as_bytes() {
                    match Base::try_from(byte) {
                        Ok(b) => pending.seq.push(b),
                        Err(_) => match self.policy {
                            NPolicy::Reject => {
                                return Some(Err(FastaError::InvalidBase {
                                    record: self.record,
                                    line: idx + 1,
                                    byte,
                                }))
                            }
                            NPolicy::Replace(b) => pending.seq.push(b),
                            NPolicy::Skip => {}
                        },
                    }
                }
            }
        }
    }
}

impl<R: BufRead> Iterator for FastaStream<R> {
    type Item = Result<FastaRecord, FastaError>;

    fn next(&mut self) -> Option<Result<FastaRecord, FastaError>> {
        if self.done {
            return None;
        }
        let item = self.read_record();
        match &item {
            Some(Ok(_)) => self.record += 1,
            None | Some(Err(_)) => self.done = true,
        }
        item
    }
}

/// Writes records in FASTA format with 70-column wrapping.
///
/// # Errors
///
/// Propagates IO errors from `writer`.
pub fn write_fasta<W: Write>(mut writer: W, records: &[FastaRecord]) -> io::Result<()> {
    for rec in records {
        writeln!(writer, ">{}", rec.name)?;
        let text = rec.seq.to_string();
        for chunk in text.as_bytes().chunks(70) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multiple_records() {
        let input = b">a\nACGT\n>b desc here\nTT\nGG\n" as &[u8];
        let recs = read_fasta(input, NPolicy::Reject).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "a");
        assert_eq!(recs[0].seq.to_string(), "ACGT");
        assert_eq!(recs[1].name, "b desc here");
        assert_eq!(recs[1].seq.to_string(), "TTGG");
    }

    #[test]
    fn rejects_n_by_default() {
        let input = b">a\nACNGT\n" as &[u8];
        let err = read_fasta(input, NPolicy::Reject).unwrap_err();
        match err {
            FastaError::InvalidBase { record, line, byte } => {
                assert_eq!(record, 0);
                assert_eq!(line, 2);
                assert_eq!(byte, b'N');
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn invalid_base_reports_record_index() {
        let input = b">a\nACGT\n>b\nTTNTT\n" as &[u8];
        match read_fasta(input, NPolicy::Reject) {
            Err(FastaError::InvalidBase { record, line, byte }) => {
                assert_eq!(record, 1);
                assert_eq!(line, 4);
                assert_eq!(byte, b'N');
            }
            other => panic!("expected invalid base in record 1, got {other:?}"),
        }
    }

    #[test]
    fn truncated_trailing_record_is_error() {
        let input = b">a\nACGT\n>b\n" as &[u8];
        match read_fasta(input, NPolicy::Reject) {
            Err(FastaError::TruncatedRecord { record, line }) => {
                assert_eq!(record, 1);
                assert_eq!(line, 3);
            }
            other => panic!("expected truncated record 1, got {other:?}"),
        }
    }

    #[test]
    fn empty_record_mid_file_is_error() {
        let input = b">a\n>b\nACGT\n" as &[u8];
        match read_fasta(input, NPolicy::Reject) {
            Err(FastaError::TruncatedRecord { record, line }) => {
                assert_eq!(record, 0);
                assert_eq!(line, 1);
            }
            other => panic!("expected truncated record 0, got {other:?}"),
        }
    }

    #[test]
    fn replace_policy_substitutes() {
        let input = b">a\nACNGT\n" as &[u8];
        let recs = read_fasta(input, NPolicy::Replace(Base::A)).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACAGT");
    }

    #[test]
    fn skip_policy_drops() {
        let input = b">a\nACNGT\n" as &[u8];
        let recs = read_fasta(input, NPolicy::Skip).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACGT");
    }

    #[test]
    fn missing_header_is_error() {
        let input = b"ACGT\n" as &[u8];
        assert!(matches!(
            read_fasta(input, NPolicy::Reject),
            Err(FastaError::MissingHeader)
        ));
    }

    #[test]
    fn round_trips_through_writer() {
        let recs = vec![
            FastaRecord {
                name: "chrA".into(),
                seq: PackedSeq::from_ascii(&b"ACGT".repeat(40)).unwrap(),
            },
            FastaRecord {
                name: "chrB".into(),
                seq: PackedSeq::from_ascii(b"TTTT").unwrap(),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &recs).unwrap();
        let back = read_fasta(buf.as_slice(), NPolicy::Reject).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn blank_lines_are_ignored() {
        let input = b"\n>a\n\nAC\n\nGT\n\n" as &[u8];
        let recs = read_fasta(input, NPolicy::Reject).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACGT");
    }

    #[test]
    fn stream_yields_records_incrementally_and_tracks_index() {
        let input = b">a\nACGT\n>b\nTT\nGG\n" as &[u8];
        let mut stream = FastaStream::new(input, NPolicy::Reject);
        assert_eq!(stream.record_index(), 0);
        assert_eq!(stream.next().unwrap().unwrap().name, "a");
        assert_eq!(stream.record_index(), 1);
        assert_eq!(stream.next().unwrap().unwrap().seq.to_string(), "TTGG");
        assert_eq!(stream.record_index(), 2);
        assert!(stream.next().is_none());
        assert!(stream.next().is_none());
    }

    #[test]
    fn stream_fuses_after_first_error() {
        let input = b">a\nACNT\n>b\nGGGG\n" as &[u8];
        let mut stream = FastaStream::new(input, NPolicy::Reject);
        assert!(matches!(
            stream.next(),
            Some(Err(FastaError::InvalidBase { record: 0, .. }))
        ));
        assert!(stream.next().is_none());
    }

    #[test]
    fn stream_matches_batch_reader() {
        let input = b"\n>a\nAC\nNGT\n>b desc\nTTTT\n" as &[u8];
        let batch = read_fasta(input, NPolicy::Skip).unwrap();
        let streamed: Vec<FastaRecord> = FastaStream::new(input, NPolicy::Skip)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn from_path_reads_and_reports_missing_file() {
        let dir = std::env::temp_dir().join(format!("casa_fasta_path_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ref.fa");
        std::fs::write(&path, ">chr1\nACGT\n").unwrap();
        let recs = read_fasta_from_path(&path, NPolicy::Reject).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "chr1");
        assert!(matches!(
            read_fasta_from_path(dir.join("absent.fa"), NPolicy::Reject),
            Err(FastaError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
