//! DWGSIM-style short-read simulation.
//!
//! The paper uses 787 M real 101 bp Illumina reads for GRCh38 and 10 M
//! DWGSIM-simulated reads for GRCm39. We simulate both workloads. The error
//! model mirrors DWGSIM's defaults for Illumina data: a per-base sequencing
//! error probability that ramps up toward the 3' end, a donor-genome SNP
//! rate and a small indel rate. With the default configuration roughly 80 %
//! of reads contain no edit at all, matching the exact-match fraction the
//! paper measures on ERR194147 ("1M reads ... that contain about 80 % exact
//! matches on GRCh38").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::synth::mutate;
use crate::{Base, PackedSeq};

/// A simulated single-ended short read plus its ground truth.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShortRead {
    /// Read name, unique within a simulated batch.
    pub name: String,
    /// The read sequence as the sequencer would emit it (already
    /// reverse-complemented for reverse-strand reads).
    pub seq: PackedSeq,
    /// Reference coordinate of the first sampled base (forward-strand
    /// coordinates).
    pub origin: usize,
    /// Whether the read was sampled from the reverse strand.
    pub reverse: bool,
    /// Total number of edits (SNPs + sequencing errors + indels) applied.
    pub edits: usize,
}

impl ShortRead {
    /// Whether the read should match the reference exactly at its origin.
    pub fn is_exact(&self) -> bool {
        self.edits == 0
    }
}

/// Configuration for [`ReadSimulator`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReadSimConfig {
    /// Read length in bases (the paper's datasets are 101 bp).
    pub read_len: usize,
    /// Baseline per-base substitution error probability at the 5' end.
    pub base_error_rate: f64,
    /// Additional error probability linearly reached at the 3' end
    /// (Illumina-like quality ramp).
    pub error_ramp: f64,
    /// Per-base donor SNP probability.
    pub mutation_rate: f64,
    /// Per-base probability of starting a 1–3 bp indel.
    pub indel_rate: f64,
    /// Fraction of reads sampled from the reverse strand.
    pub rc_fraction: f64,
}

impl Default for ReadSimConfig {
    /// 101 bp reads with ~80 % exact-match fraction.
    fn default() -> ReadSimConfig {
        ReadSimConfig {
            read_len: 101,
            base_error_rate: 0.0008,
            error_ramp: 0.0012,
            mutation_rate: 0.0008,
            indel_rate: 0.00008,
            rc_fraction: 0.5,
        }
    }
}

impl ReadSimConfig {
    /// A configuration producing only error-free reads (used to isolate the
    /// exact-match pre-processing path, paper §4.3).
    pub fn error_free() -> ReadSimConfig {
        ReadSimConfig {
            base_error_rate: 0.0,
            error_ramp: 0.0,
            mutation_rate: 0.0,
            indel_rate: 0.0,
            ..ReadSimConfig::default()
        }
    }

    /// A configuration where every read carries at least one edit (used for
    /// the inexact-matching comparison, paper Fig. 16). Achieved by raising
    /// the SNP rate; the simulator additionally rejects exact reads.
    pub fn inexact_only() -> ReadSimConfig {
        ReadSimConfig {
            mutation_rate: 0.02,
            ..ReadSimConfig::default()
        }
    }
}

/// A simulated read pair (Illumina forward–reverse orientation).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadPair {
    /// First mate (5' end of the fragment).
    pub r1: ShortRead,
    /// Second mate (sequenced from the other strand).
    pub r2: ShortRead,
    /// Outer fragment length the pair was drawn from.
    pub insert: usize,
}

/// Deterministic short-read simulator.
#[derive(Clone, Debug)]
pub struct ReadSimulator {
    config: ReadSimConfig,
    seed: u64,
}

impl ReadSimulator {
    /// Creates a simulator with the given configuration and RNG seed.
    pub fn new(config: ReadSimConfig, seed: u64) -> ReadSimulator {
        ReadSimulator { config, seed }
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &ReadSimConfig {
        &self.config
    }

    /// Simulates `n` reads from `reference`.
    ///
    /// Deterministic for a given `(config, seed, reference, n)`.
    ///
    /// # Panics
    ///
    /// Panics if the reference is shorter than `read_len + 8` (the slack
    /// needed to absorb deletions).
    pub fn simulate(&self, reference: &PackedSeq, n: usize) -> Vec<ShortRead> {
        let slack = 8;
        assert!(
            reference.len() >= self.config.read_len + slack,
            "reference ({} bp) shorter than read length {} + slack",
            reference.len(),
            self.config.read_len
        );
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xCA5A_0002);
        (0..n)
            .map(|i| self.simulate_one(reference, &mut rng, i))
            .collect()
    }

    /// Simulates `n` paired-end reads with fragment lengths drawn
    /// uniformly from `insert_min..=insert_max` (Illumina FR orientation:
    /// mate 1 forward from the fragment start, mate 2 reverse-complement
    /// from the fragment end).
    ///
    /// # Panics
    ///
    /// Panics if `insert_min < 2 * read_len`, `insert_min > insert_max`,
    /// or the reference is shorter than `insert_max + 8`.
    pub fn simulate_pairs(
        &self,
        reference: &PackedSeq,
        n: usize,
        insert_min: usize,
        insert_max: usize,
    ) -> Vec<ReadPair> {
        let cfg = &self.config;
        assert!(
            insert_min >= 2 * cfg.read_len,
            "insert_min ({insert_min}) must cover both mates ({})",
            2 * cfg.read_len
        );
        assert!(insert_min <= insert_max, "insert range inverted");
        assert!(
            reference.len() >= insert_max + 8,
            "reference too short for insert_max {insert_max}"
        );
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xCA5A_0004);
        (0..n)
            .map(|i| {
                let insert = rng.gen_range(insert_min..=insert_max);
                let start = rng.gen_range(0..=reference.len() - insert - 8);
                let mut r1 = self.read_at(reference, &mut rng, start, false);
                let mut r2 = self.read_at(reference, &mut rng, start + insert - cfg.read_len, true);
                r1.name = format!("pair_{i}/1");
                r2.name = format!("pair_{i}/2");
                ReadPair { r1, r2, insert }
            })
            .collect()
    }

    /// Simulates reads until `n` of them are inexact (≥ 1 edit), discarding
    /// exact reads. Used by the Fig. 16 experiment.
    pub fn simulate_inexact(&self, reference: &PackedSeq, n: usize) -> Vec<ShortRead> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xCA5A_0003);
        let mut out = Vec::with_capacity(n);
        let mut i = 0;
        while out.len() < n {
            let read = self.simulate_one(reference, &mut rng, i);
            i += 1;
            if !read.is_exact() {
                out.push(read);
            }
        }
        out
    }

    fn simulate_one(&self, reference: &PackedSeq, rng: &mut StdRng, index: usize) -> ShortRead {
        let cfg = &self.config;
        let slack = 8;
        let origin = rng.gen_range(0..=reference.len() - cfg.read_len - slack);
        let reverse = rng.gen_bool(cfg.rc_fraction);
        let mut read = self.read_at(reference, rng, origin, reverse);
        read.name = format!("sim_{index}");
        read
    }

    /// Samples one read at a fixed origin/strand with the configured error
    /// model.
    fn read_at(
        &self,
        reference: &PackedSeq,
        rng: &mut StdRng,
        origin: usize,
        reverse: bool,
    ) -> ShortRead {
        let cfg = &self.config;

        // Apply donor SNPs / indels / sequencing errors while walking the
        // reference from `origin` until read_len bases are produced.
        let mut seq = PackedSeq::with_capacity(cfg.read_len);
        let mut edits = 0usize;
        let mut ref_pos = origin;
        while seq.len() < cfg.read_len {
            let frac = seq.len() as f64 / cfg.read_len as f64;
            let err_p = cfg.base_error_rate + cfg.error_ramp * frac;
            if cfg.indel_rate > 0.0 && rng.gen_bool(cfg.indel_rate) {
                let indel_len = rng.gen_range(1..=3usize);
                edits += indel_len;
                if rng.gen_bool(0.5) {
                    // Insertion: emit random bases, reference cursor holds.
                    for _ in 0..indel_len.min(cfg.read_len - seq.len()) {
                        seq.push(Base::from_code(rng.gen_range(0..4u8)));
                    }
                } else {
                    // Deletion: skip reference bases.
                    ref_pos += indel_len;
                }
                continue;
            }
            let mut b = reference.base(ref_pos);
            ref_pos += 1;
            if cfg.mutation_rate > 0.0 && rng.gen_bool(cfg.mutation_rate) {
                b = mutate(rng, b);
                edits += 1;
            }
            if err_p > 0.0 && rng.gen_bool(err_p.min(1.0)) {
                b = mutate(rng, b);
                edits += 1;
            }
            seq.push(b);
        }

        let seq = if reverse {
            seq.reverse_complement()
        } else {
            seq
        };
        ShortRead {
            name: String::new(),
            seq,
            origin,
            reverse,
            edits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_reference, ReferenceProfile};

    fn reference() -> PackedSeq {
        generate_reference(&ReferenceProfile::human_like(), 20_000, 77)
    }

    #[test]
    fn produces_requested_reads_deterministically() {
        let r = reference();
        let sim = ReadSimulator::new(ReadSimConfig::default(), 1);
        let a = sim.simulate(&r, 50);
        let b = sim.simulate(&r, 50);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(a.iter().all(|x| x.seq.len() == 101));
    }

    #[test]
    fn exact_reads_match_reference_at_origin() {
        let r = reference();
        let sim = ReadSimulator::new(ReadSimConfig::error_free(), 2);
        for read in sim.simulate(&r, 100) {
            assert!(read.is_exact());
            let fwd = if read.reverse {
                read.seq.reverse_complement()
            } else {
                read.seq.clone()
            };
            assert!(
                r.matches(read.origin, &fwd, 0, fwd.len()),
                "exact read must match reference at its origin"
            );
        }
    }

    #[test]
    fn default_profile_gives_near_80_percent_exact() {
        let r = reference();
        let sim = ReadSimulator::new(ReadSimConfig::default(), 3);
        let reads = sim.simulate(&r, 4_000);
        let exact = reads.iter().filter(|r| r.is_exact()).count() as f64 / reads.len() as f64;
        assert!(
            (0.70..=0.90).contains(&exact),
            "exact fraction {exact} should be near the paper's ~0.8"
        );
    }

    #[test]
    fn inexact_only_reads_all_have_edits() {
        let r = reference();
        let sim = ReadSimulator::new(ReadSimConfig::inexact_only(), 4);
        let reads = sim.simulate_inexact(&r, 200);
        assert_eq!(reads.len(), 200);
        assert!(reads.iter().all(|x| !x.is_exact()));
    }

    #[test]
    fn strand_fractions_are_respected() {
        let r = reference();
        let fwd_only = ReadSimConfig {
            rc_fraction: 0.0,
            ..ReadSimConfig::default()
        };
        let reads = ReadSimulator::new(fwd_only, 5).simulate(&r, 100);
        assert!(reads.iter().all(|x| !x.reverse));
        let mixed = ReadSimulator::new(ReadSimConfig::default(), 5).simulate(&r, 2_000);
        let rc = mixed.iter().filter(|x| x.reverse).count();
        assert!((800..=1200).contains(&rc), "rc count {rc} should be ~half");
    }

    #[test]
    fn paired_end_reads_have_fr_orientation() {
        let r = reference();
        let sim = ReadSimulator::new(ReadSimConfig::error_free(), 10);
        let pairs = sim.simulate_pairs(&r, 50, 300, 500);
        assert_eq!(pairs.len(), 50);
        for p in &pairs {
            assert!(!p.r1.reverse && p.r2.reverse);
            assert!((300..=500).contains(&p.insert));
            // Outer coordinates span the insert.
            assert_eq!(p.r2.origin - p.r1.origin + 101, p.insert);
            // Error-free mates match the reference at their origins.
            assert!(r.matches(p.r1.origin, &p.r1.seq, 0, 101));
            let r2_fwd = p.r2.seq.reverse_complement();
            assert!(r.matches(p.r2.origin, &r2_fwd, 0, 101));
            assert!(p.r1.name.ends_with("/1") && p.r2.name.ends_with("/2"));
        }
    }

    #[test]
    #[should_panic(expected = "must cover both mates")]
    fn rejects_tiny_insert() {
        let r = reference();
        ReadSimulator::new(ReadSimConfig::default(), 0).simulate_pairs(&r, 1, 150, 200);
    }

    #[test]
    #[should_panic(expected = "shorter than read length")]
    fn rejects_tiny_reference() {
        let tiny = generate_reference(&ReferenceProfile::uniform(), 50, 0);
        ReadSimulator::new(ReadSimConfig::default(), 0).simulate(&tiny, 1);
    }
}
