//! Minimal FASTQ reading and writing.
//!
//! Used by the experiment harness to persist simulated read sets in the same
//! format as the Illumina data the paper consumes (ERR194147, 101 bp
//! single-ended reads). [`FastqStream`] reads records one at a time in
//! constant memory — the ingestion path of the streaming runtime
//! (`casa_core::stream`) — while [`read_fastq`] collects a whole stream
//! for small inputs.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

use crate::fasta::NPolicy;
use crate::{Base, PackedSeq};

/// A FASTQ record: name, sequence and per-base Phred+33 qualities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FastqRecord {
    /// Read name (text after `@`).
    pub name: String,
    /// The read sequence.
    pub seq: PackedSeq,
    /// Phred+33 quality string, one byte per base.
    pub qual: Vec<u8>,
}

/// Error produced while reading FASTQ data.
#[derive(Debug)]
pub enum FastqError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Record is structurally malformed (missing `@`/`+` lines, truncated
    /// record, or quality length mismatch).
    Malformed {
        /// 0-based index of the offending record in the stream.
        record: usize,
        /// 1-based line number of the problem.
        line: usize,
        /// Human-readable description.
        what: &'static str,
    },
    /// A sequence byte outside `ACGTacgt` with [`NPolicy::Reject`].
    InvalidBase {
        /// 0-based index of the offending record in the stream.
        record: usize,
        /// 1-based line number.
        line: usize,
        /// Offending byte.
        byte: u8,
    },
}

impl fmt::Display for FastqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastqError::Io(e) => write!(f, "io error reading fastq: {e}"),
            FastqError::Malformed { record, line, what } => {
                write!(f, "malformed fastq record {record} on line {line}: {what}")
            }
            FastqError::InvalidBase { record, line, byte } => {
                write!(
                    f,
                    "invalid base {:?} in record {record} on line {line}",
                    *byte as char
                )
            }
        }
    }
}

impl std::error::Error for FastqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FastqError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FastqError {
    fn from(e: io::Error) -> FastqError {
        FastqError::Io(e)
    }
}

/// A streaming FASTQ reader: yields one [`FastqRecord`] at a time, holding
/// only the current record in memory. The iterator is fused after the
/// first error (a malformed stream has no trustworthy resynchronization
/// point).
///
/// ```
/// use casa_genome::fastq::FastqStream;
/// use casa_genome::fasta::NPolicy;
/// let input = b"@r1\nACGT\n+\nIIII\n@r2\nTT\n+\nJJ\n" as &[u8];
/// let mut stream = FastqStream::new(input, NPolicy::Reject);
/// assert_eq!(stream.next().unwrap()?.name, "r1");
/// assert_eq!(stream.record_index(), 1);
/// assert_eq!(stream.next().unwrap()?.seq.to_string(), "TT");
/// assert!(stream.next().is_none());
/// # Ok::<(), casa_genome::fastq::FastqError>(())
/// ```
pub struct FastqStream<R: BufRead> {
    lines: std::iter::Enumerate<io::Lines<R>>,
    policy: NPolicy,
    record: usize,
    done: bool,
}

impl FastqStream<BufReader<File>> {
    /// Opens `path` and streams its records.
    ///
    /// # Errors
    ///
    /// [`FastqError::Io`] if the file cannot be opened.
    pub fn from_path<P: AsRef<Path>>(
        path: P,
        policy: NPolicy,
    ) -> Result<FastqStream<BufReader<File>>, FastqError> {
        Ok(FastqStream::new(BufReader::new(File::open(path)?), policy))
    }
}

impl<R: BufRead> FastqStream<R> {
    /// Wraps `reader` in a streaming record iterator.
    pub fn new(reader: R, policy: NPolicy) -> FastqStream<R> {
        FastqStream {
            lines: reader.lines().enumerate(),
            policy,
            record: 0,
            done: false,
        }
    }

    /// 0-based index of the next record the stream will yield — equals the
    /// number of records yielded so far.
    pub fn record_index(&self) -> usize {
        self.record
    }

    /// Reads the next record, or `None` at a clean end of stream.
    fn read_record(&mut self) -> Option<Result<FastqRecord, FastqError>> {
        loop {
            let (idx, header) = self.lines.next()?;
            let header = match header {
                Ok(h) => h,
                Err(e) => return Some(Err(e.into())),
            };
            if header.trim().is_empty() {
                continue;
            }
            return Some(self.parse_record(idx, &header));
        }
    }

    /// Parses one record whose header line (`idx`, 0-based) has been read.
    fn parse_record(&mut self, idx: usize, header: &str) -> Result<FastqRecord, FastqError> {
        let record = self.record;
        let name = header
            .strip_prefix('@')
            .ok_or(FastqError::Malformed {
                record,
                line: idx + 1,
                what: "expected '@' header",
            })?
            .trim()
            .to_string();
        let (seq_idx, seq_line) = self.lines.next().ok_or(FastqError::Malformed {
            record,
            line: idx + 2,
            what: "truncated record",
        })?;
        let seq_line = seq_line?;
        let (plus_idx, plus_line) = self.lines.next().ok_or(FastqError::Malformed {
            record,
            line: seq_idx + 2,
            what: "truncated record",
        })?;
        let plus_line = plus_line?;
        if !plus_line.starts_with('+') {
            return Err(FastqError::Malformed {
                record,
                line: plus_idx + 1,
                what: "expected '+' separator",
            });
        }
        let (qual_idx, qual_line) = self.lines.next().ok_or(FastqError::Malformed {
            record,
            line: plus_idx + 2,
            what: "truncated record",
        })?;
        let qual_line = qual_line?;
        if qual_line.len() != seq_line.len() {
            return Err(FastqError::Malformed {
                record,
                line: qual_idx + 1,
                what: "quality length differs from sequence length",
            });
        }
        let mut seq = PackedSeq::with_capacity(seq_line.len());
        let mut qual = Vec::with_capacity(qual_line.len());
        for (&byte, &q) in seq_line.as_bytes().iter().zip(qual_line.as_bytes()) {
            match Base::try_from(byte) {
                Ok(b) => {
                    seq.push(b);
                    qual.push(q);
                }
                Err(_) => match self.policy {
                    NPolicy::Reject => {
                        return Err(FastqError::InvalidBase {
                            record,
                            line: seq_idx + 1,
                            byte,
                        })
                    }
                    NPolicy::Replace(b) => {
                        seq.push(b);
                        qual.push(q);
                    }
                    NPolicy::Skip => {}
                },
            }
        }
        self.record += 1;
        Ok(FastqRecord { name, seq, qual })
    }
}

impl<R: BufRead> Iterator for FastqStream<R> {
    type Item = Result<FastqRecord, FastqError>;

    fn next(&mut self) -> Option<Result<FastqRecord, FastqError>> {
        if self.done {
            return None;
        }
        let item = self.read_record();
        if matches!(item, None | Some(Err(_))) {
            self.done = true;
        }
        item
    }
}

/// Reads all records from a FASTQ stream.
///
/// Bases skipped by [`NPolicy::Skip`] drop their quality value too, so
/// sequence and quality lengths stay consistent.
///
/// # Errors
///
/// Returns [`FastqError`] on IO failure, structural problems, or (with
/// [`NPolicy::Reject`]) any base outside `ACGTacgt`.
///
/// ```
/// use casa_genome::fastq::read_fastq;
/// use casa_genome::fasta::NPolicy;
/// let input = b"@r1\nACGT\n+\nIIII\n" as &[u8];
/// let records = read_fastq(input, NPolicy::Reject)?;
/// assert_eq!(records[0].seq.to_string(), "ACGT");
/// assert_eq!(records[0].qual, b"IIII");
/// # Ok::<(), casa_genome::fastq::FastqError>(())
/// ```
pub fn read_fastq<R: BufRead>(reader: R, policy: NPolicy) -> Result<Vec<FastqRecord>, FastqError> {
    FastqStream::new(reader, policy).collect()
}

/// Reads all records from the FASTQ file at `path`, streaming the parse so
/// only the packed records (never the raw text) are resident.
///
/// # Errors
///
/// As [`read_fastq`], plus [`FastqError::Io`] if the file cannot be opened.
pub fn read_fastq_from_path<P: AsRef<Path>>(
    path: P,
    policy: NPolicy,
) -> Result<Vec<FastqRecord>, FastqError> {
    FastqStream::from_path(path, policy)?.collect()
}

/// Writes records in four-line FASTQ format.
///
/// # Errors
///
/// Propagates IO errors from `writer`.
///
/// # Panics
///
/// Panics if any record's quality length differs from its sequence length;
/// such a record is unrepresentable in FASTQ.
pub fn write_fastq<W: Write>(mut writer: W, records: &[FastqRecord]) -> io::Result<()> {
    for rec in records {
        assert_eq!(
            rec.qual.len(),
            rec.seq.len(),
            "record {:?} has mismatched quality length",
            rec.name
        );
        writeln!(writer, "@{}", rec.name)?;
        writeln!(writer, "{}", rec.seq)?;
        writeln!(writer, "+")?;
        writer.write_all(&rec.qual)?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_two_records() {
        let input = b"@r1\nACGT\n+\nIIII\n@r2 extra\nTT\n+r2\nJJ\n" as &[u8];
        let recs = read_fastq(input, NPolicy::Reject).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "r1");
        assert_eq!(recs[1].name, "r2 extra");
        assert_eq!(recs[1].seq.to_string(), "TT");
        assert_eq!(recs[1].qual, b"JJ");
    }

    #[test]
    fn detects_quality_length_mismatch() {
        let input = b"@r\nACGT\n+\nIII\n" as &[u8];
        assert!(matches!(
            read_fastq(input, NPolicy::Reject),
            Err(FastqError::Malformed { .. })
        ));
    }

    #[test]
    fn detects_missing_plus() {
        let input = b"@r\nACGT\nIIII\nIIII\n" as &[u8];
        assert!(matches!(
            read_fastq(input, NPolicy::Reject),
            Err(FastqError::Malformed {
                what: "expected '+' separator",
                ..
            })
        ));
    }

    #[test]
    fn skip_policy_drops_quality_too() {
        let input = b"@r\nACNGT\n+\nABCDE\n" as &[u8];
        let recs = read_fastq(input, NPolicy::Skip).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACGT");
        assert_eq!(recs[0].qual, b"ABDE");
    }

    #[test]
    fn round_trips_through_writer() {
        let recs = vec![FastqRecord {
            name: "sim_read_1".into(),
            seq: PackedSeq::from_ascii(b"GATTACA").unwrap(),
            qual: b"IIIHHGG".to_vec(),
        }];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &recs).unwrap();
        let back = read_fastq(buf.as_slice(), NPolicy::Reject).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn truncated_record_is_error() {
        let input = b"@r\nACGT\n" as &[u8];
        assert!(matches!(
            read_fastq(input, NPolicy::Reject),
            Err(FastqError::Malformed {
                record: 0,
                what: "truncated record",
                ..
            })
        ));
    }

    #[test]
    fn truncated_trailing_record_reports_its_index() {
        // First record is fine; second hits EOF after the '+' separator.
        let input = b"@r1\nACGT\n+\nIIII\n@r2\nTTTT\n+\n" as &[u8];
        match read_fastq(input, NPolicy::Reject) {
            Err(FastqError::Malformed { record, line, what }) => {
                assert_eq!(record, 1);
                assert_eq!(line, 8);
                assert_eq!(what, "truncated record");
            }
            other => panic!("expected malformed record 1, got {other:?}"),
        }
    }

    #[test]
    fn quality_mismatch_reports_record_index() {
        let input = b"@r1\nAC\n+\nII\n@r2\nACGT\n+\nIII\n" as &[u8];
        match read_fastq(input, NPolicy::Reject) {
            Err(FastqError::Malformed { record, line, .. }) => {
                assert_eq!(record, 1);
                assert_eq!(line, 8);
            }
            other => panic!("expected malformed record 1, got {other:?}"),
        }
    }

    #[test]
    fn invalid_base_reports_record_index() {
        let input = b"@r1\nAC\n+\nII\n@r2\nAXGT\n+\nIIII\n" as &[u8];
        match read_fastq(input, NPolicy::Reject) {
            Err(FastqError::InvalidBase { record, line, byte }) => {
                assert_eq!(record, 1);
                assert_eq!(line, 6);
                assert_eq!(byte, b'X');
            }
            other => panic!("expected invalid base in record 1, got {other:?}"),
        }
    }

    #[test]
    fn stream_yields_records_incrementally_and_tracks_index() {
        let input = b"@r1\nACGT\n+\nIIII\n\n@r2\nTT\n+\nJJ\n" as &[u8];
        let mut stream = FastqStream::new(input, NPolicy::Reject);
        assert_eq!(stream.record_index(), 0);
        let r1 = stream.next().unwrap().unwrap();
        assert_eq!(r1.name, "r1");
        assert_eq!(stream.record_index(), 1);
        let r2 = stream.next().unwrap().unwrap();
        assert_eq!(r2.name, "r2");
        assert_eq!(stream.record_index(), 2);
        assert!(stream.next().is_none());
        assert!(stream.next().is_none());
    }

    #[test]
    fn stream_fuses_after_first_error() {
        // A bad record followed by a perfectly good one: the stream stops.
        let input = b"@r1\nACGT\n+\nIII\n@r2\nTT\n+\nJJ\n" as &[u8];
        let mut stream = FastqStream::new(input, NPolicy::Reject);
        assert!(matches!(
            stream.next(),
            Some(Err(FastqError::Malformed { record: 0, .. }))
        ));
        assert!(stream.next().is_none());
    }

    #[test]
    fn stream_matches_batch_reader() {
        let input = b"@a\nACGT\n+\nIIII\n@b\nGGNCC\n+\nJJJJJ\n" as &[u8];
        let batch = read_fastq(input, NPolicy::Skip).unwrap();
        let streamed: Vec<FastqRecord> = FastqStream::new(input, NPolicy::Skip)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn from_path_reads_and_reports_missing_file() {
        let dir = std::env::temp_dir().join(format!("casa_fastq_path_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reads.fq");
        std::fs::write(&path, "@r1\nACGT\n+\nIIII\n").unwrap();
        let recs = read_fastq_from_path(&path, NPolicy::Reject).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "r1");
        assert!(matches!(
            read_fastq_from_path(dir.join("absent.fq"), NPolicy::Reject),
            Err(FastqError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
